"""Table III benchmarks: one per block (see DESIGN.md T3-1 .. T3-6).

Each benchmark runs the full HSLB pipeline for its block, prints/persists
the reproduction table next to the paper's numbers, and asserts the block's
qualitative shape (who wins, by roughly what factor).
"""

import pytest

from repro.experiments.table3 import run_table3_block


def _run_and_check(benchmark, save_report, key, checks):
    result = benchmark.pedantic(
        lambda: run_table3_block(key), rounds=1, iterations=1
    )
    save_report(f"table3_{key}", result.render())
    checks(result)
    return result


def test_table3_1deg_128(benchmark, save_report):
    def checks(r):
        # Totals in the paper's neighbourhood; HSLB >= competitive.
        assert r.hslb.predicted_total == pytest.approx(410.6, rel=0.12)
        assert r.hslb.actual_total == pytest.approx(425.2, rel=0.12)
        assert r.hslb.actual_total <= r.manual_total * 1.05
        assert r.hslb.allocation["atm"] + r.hslb.allocation["ocn"] <= 128

    _run_and_check(benchmark, save_report, "1deg-128", checks)


def test_table3_1deg_2048(benchmark, save_report):
    def checks(r):
        assert r.hslb.predicted_total == pytest.approx(84.5, rel=0.12)
        assert r.hslb.actual_total == pytest.approx(86.5, rel=0.12)
        # The balanced layout uses most of the machine.
        assert r.hslb.allocation["atm"] + r.hslb.allocation["ocn"] > 1024

    _run_and_check(benchmark, save_report, "1deg-2048", checks)


def test_table3_eighth_8192_constrained(benchmark, save_report):
    def checks(r):
        assert r.hslb.allocation["ocn"] in (480, 512, 2356, 3136, 4564, 6124)
        assert r.hslb.predicted_total == pytest.approx(3390.4, rel=0.12)
        assert r.hslb.actual_total == pytest.approx(3488.8, rel=0.12)
        # Paper: ~8-10% better than the manual baseline here.
        assert r.hslb.actual_total < r.manual_total

    _run_and_check(benchmark, save_report, "eighth-8192", checks)


def test_table3_eighth_32768_constrained(benchmark, save_report):
    def checks(r):
        assert r.hslb.allocation["ocn"] == 19460  # forced by the list
        assert r.hslb.predicted_total == pytest.approx(1592.6, rel=0.12)
        assert r.hslb.actual_total == pytest.approx(1612.3, rel=0.12)

    _run_and_check(benchmark, save_report, "eighth-32768", checks)


def test_table3_eighth_8192_unconstrained(benchmark, save_report):
    def checks(r):
        # Paper: "at 8192 nodes, the optimization is relatively unchanged".
        assert r.hslb.predicted_total == pytest.approx(3217.8, rel=0.15)

    _run_and_check(benchmark, save_report, "eighth-8192-freeocn", checks)


def test_table3_eighth_32768_unconstrained(benchmark, save_report):
    def checks(r):
        # The headline: big win once the ocean list is dropped.
        assert r.hslb.predicted_total < 1450.0   # paper predicted 1129
        assert r.hslb.actual_total < 1450.0      # paper actual 1256
        assert r.hslb.allocation["ocn"] not in (
            480, 512, 2356, 3136, 4564, 6124, 19460
        )

    _run_and_check(benchmark, save_report, "eighth-32768-freeocn", checks)
