"""Extension benchmarks E1/E2: the follow-on work the paper names."""

from repro.experiments.extensions import run_ice_decomposition, run_tasking_tuning


def test_e1_ice_decomposition_ml(benchmark, save_report):
    result = benchmark.pedantic(run_ice_decomposition, rounds=1, iterations=1)
    save_report("ext_ice_decomposition", result.render())
    # The companion paper's payoff: learned >= default, close to oracle.
    for d, m, o in zip(
        result.default_multipliers, result.ml_multipliers, result.oracle_multipliers
    ):
        assert m <= d + 1e-9
        assert m <= o + 0.08
    assert result.mean_gain_pct() > 3.0


def test_e2_tasking_tuning(benchmark, save_report):
    result = benchmark.pedantic(run_tasking_tuning, rounds=1, iterations=1)
    save_report("ext_tasking", result.render())
    # The MPI-leaning components choose 4x1; tuning never slows the run.
    assert result.policies["ocn"] == "4x1"
    assert result.tuned_total <= result.default_total * 1.02
    assert result.total_gain_pct() > 2.0
