"""§IV-C prediction benchmarks (P1: job size, P2: component swap)."""

from repro.experiments.predictions import (
    run_component_swap_prediction,
    run_job_size_prediction,
    run_new_hardware_prediction,
)


def test_p1_job_size_prediction(benchmark, save_report):
    result = benchmark.pedantic(run_job_size_prediction, rounds=1, iterations=1)
    save_report("predict_job_size", result.render())
    rec = result.recommendation
    # The cost-efficient size is strictly smaller than the brute-force
    # fastest size — the tradeoff §IV-C describes exists.
    assert rec.cost_efficient_nodes < rec.shortest_time_nodes
    # The fastest configuration saturates near the top of the sweep.
    assert rec.shortest_time_nodes >= 2048
    # Efficiency declines monotonically across the sweep.
    eff = rec.sweep.efficiency()
    assert all(eff[i + 1] <= eff[i] + 1e-9 for i in range(len(eff) - 1))


def test_p3_new_hardware_prediction(benchmark, save_report):
    result = benchmark.pedantic(
        run_new_hardware_prediction, rounds=1, iterations=1
    )
    save_report("predict_new_hardware", result.render())
    speedups = result.speedups()
    # The new machine is faster everywhere...
    assert all(s > 1.0 for s in speedups)
    # ...but far below the 80x compute headline (Amdahl: the serial floor
    # only moved by the serial speedup), and the gap widens with scale as
    # the serial floor dominates.
    assert max(speedups) < 80.0
    assert speedups[-1] < speedups[0] + 1e-9 or max(speedups) < 25.0


def test_p2_component_swap_prediction(benchmark, save_report):
    result = benchmark.pedantic(
        run_component_swap_prediction, rounds=1, iterations=1
    )
    save_report("predict_component_swap", result.render())
    # A 2x-more-scalable ocean helps at every machine size...
    n = len(result.baseline.node_counts)
    assert all(result.improvement_at(i) >= -1e-9 for i in range(n))
    # ...but the gain shrinks once the atmosphere side dominates the
    # makespan (the swap analysis must show *where* rewrites pay off).
    assert result.improvement_at(0) >= result.improvement_at(n - 1) - 0.02
    assert max(result.improvement_at(i) for i in range(n)) > 0.03
