"""Allocation-service benchmark: throughput and correctness on a Zipf mix.

Real allocation traffic is heavy-tailed — a handful of production
configurations (same fitted curves, same machine size) dominate the request
stream, with a long tail of one-off what-ifs.  We model it as Zipf-weighted
draws over a pool of distinct requests (three curve families x several node
budgets) and pin the service-layer claims:

* **S1 throughput** — answering the mix through the service is >= 5x faster
  than solving every request fresh, and the cache hit rate is nonzero;
* **S2 bit-identity** — replaying the distinct-request sequence through a
  fresh service reproduces every cached answer exactly (allocation and
  objective), because solves are fingerprint-seeded and deterministic;
* **S3 warm starts** — within a request family, warm-started neighbor
  solves do measurably less solver work than cold ones.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.perf.model import PerformanceModel
from repro.service import AllocationService, ComponentSpec, SolveRequest, solve_request
from repro.util.rng import default_rng

#: Three curve families: CESM-ish coupled components at different scales.
FAMILIES = {
    "coupled-small": {
        "atm": dict(a=1200.0, b=0.5, c=1.1, d=2.0),
        "ocn": dict(a=800.0, b=0.3, c=1.2, d=1.0),
        "ice": dict(a=300.0, b=0.2, c=1.0, d=0.5),
    },
    "coupled-large": {
        "atm": dict(a=9600.0, b=0.8, c=1.1, d=4.0),
        "ocn": dict(a=6400.0, b=0.5, c=1.2, d=2.0),
        "ice": dict(a=2400.0, b=0.3, c=1.0, d=1.0),
    },
    "two-component": {
        "frag": dict(a=2000.0, b=0.4, c=1.1, d=1.0),
        "esp": dict(a=500.0, b=0.1, c=1.0, d=0.5),
    },
}
BUDGETS = (48, 64, 72, 96)
N_DRAWS = 60
ZIPF_EXPONENT = 1.1


def request_pool() -> list[SolveRequest]:
    pool = []
    for curves in FAMILIES.values():
        components = {
            name: ComponentSpec(model=PerformanceModel(**params))
            for name, params in curves.items()
        }
        for budget in BUDGETS:
            pool.append(SolveRequest(components=components, total_nodes=budget))
    return pool


def zipf_mix(pool: list[SolveRequest], n_draws: int = N_DRAWS) -> list[SolveRequest]:
    """Zipf-weighted draws: rank-r request drawn with weight 1/r^s."""
    rng = default_rng(7)
    weights = 1.0 / np.arange(1, len(pool) + 1) ** ZIPF_EXPONENT
    weights /= weights.sum()
    return [pool[i] for i in rng.choice(len(pool), size=n_draws, p=weights)]


def run_service_benchmark(n_draws: int = N_DRAWS) -> dict:
    mix = zipf_mix(request_pool(), n_draws)

    service = AllocationService()
    t0 = time.perf_counter()
    responses = [service.submit(r) for r in mix]
    service_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    fresh = [solve_request(r) for r in mix]
    fresh_time = time.perf_counter() - t0

    # Replay the distinct-request sequence (first occurrences, in order)
    # through a brand-new service: cached answers must be bit-identical.
    seen: dict[str, SolveRequest] = {}
    for r in mix:
        seen.setdefault(r.fingerprint(), r)
    replay = AllocationService()
    mismatches = 0
    for fp, r in seen.items():
        again = replay.submit(r)
        stored = service.cache.peek(fp)
        if stored is None:
            continue  # evicted (capacity is far above the pool size here)
        if again.allocation != stored.allocation or again.objective != stored.objective:
            mismatches += 1

    snap = service.metrics.snapshot()
    return {
        "n_draws": n_draws,
        "distinct": len(seen),
        "service_time": service_time,
        "fresh_time": fresh_time,
        "speedup": fresh_time / service_time,
        "throughput_rps": n_draws / service_time,
        "hit_rate": snap["hit_rate"],
        "warm_start_speedup": snap["warm_start_speedup"],
        "mean_latency": snap["latency"]["mean"],
        "p95_latency": snap["latency"]["p95"],
        "replay_mismatches": mismatches,
        "all_ok": all(r.ok for r in responses)
        and all(f.allocation for f in fresh),
    }


def render(result: dict) -> str:
    lines = [
        "allocation service on a Zipf request mix",
        f"  draws / distinct     : {result['n_draws']} / {result['distinct']}",
        f"  fresh solve time     : {result['fresh_time']:.2f}s",
        f"  service time         : {result['service_time']:.2f}s",
        f"  throughput speedup   : {result['speedup']:.1f}x",
        f"  cache hit rate       : {result['hit_rate']:.1%}",
        f"  warm-start speedup   : {result['warm_start_speedup']:.2f}x",
        f"  replay mismatches    : {result['replay_mismatches']}",
    ]
    return "\n".join(lines)


def _save_records(result: dict) -> None:
    """Persist gate-schema records as BENCH_service.json.

    Same ``{name: {mean, ...}}`` shape as the solver/dynlb baselines, so
    ``check_bench.py`` can diff throughput-flavoured records (gated in the
    "higher is better" direction) alongside the wall-time ones.
    ``HSLB_BENCH_SERVICE_OUT`` points the writer at a scratch file.
    """
    records = {
        "service_throughput_rps": result["throughput_rps"],
        "service_speedup": result["speedup"],
        "service_hit_rate": result["hit_rate"],
        "service_warm_start_speedup": result["warm_start_speedup"],
        "service_replay_mismatches": float(result["replay_mismatches"]),
        "service_mean_latency": result["mean_latency"],
        "service_p95_latency": result["p95_latency"],
        "service_distinct": float(result["distinct"]),
    }
    out = {
        name: {"min": v, "max": v, "mean": v, "stddev": 0.0, "rounds": 1}
        for name, v in sorted(records.items())
    }
    override = os.environ.get("HSLB_BENCH_SERVICE_OUT")
    if override:
        path = pathlib.Path(override)
    else:
        path = pathlib.Path(__file__).parent / "out" / "BENCH_service.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"[baseline saved to {path}]")


def test_s1_service_throughput(benchmark, save_report):
    result = benchmark.pedantic(run_service_benchmark, rounds=1, iterations=1)
    save_report("service_throughput", render(result))
    _save_records(result)
    assert result["all_ok"]
    # The headline service claim: >= 5x throughput on the Zipf mix.
    assert result["speedup"] >= 5.0, f"only {result['speedup']:.1f}x"
    assert result["hit_rate"] > 0.0
    # S2: cached answers are bit-identical to fresh solves of the same
    # request sequence by an identical service.
    assert result["replay_mismatches"] == 0


def test_s3_family_warm_start(benchmark, save_report):
    def run() -> dict:
        pool = request_pool()
        service = AllocationService()
        cold_work = {}
        warm_work = {}
        for curves_name, curves in FAMILIES.items():
            components = {
                name: ComponentSpec(model=PerformanceModel(**params))
                for name, params in curves.items()
            }
            reqs = [
                SolveRequest(components=components, total_nodes=b) for b in BUDGETS
            ]
            # Cold baseline: every budget solved with no donors available.
            cold_work[curves_name] = sum(
                solve_request(r).iterations for r in reqs[1:]
            )
            # Service path: the first budget seeds the rest of the family.
            for r in reqs:
                service.submit(r)
            warm_work[curves_name] = sum(
                service.cache.peek(r.fingerprint()).iterations for r in reqs[1:]
            )
        return {
            "pool": len(pool),
            "cold": cold_work,
            "warm": warm_work,
            "speedup": service.metrics.warm_start_speedup,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["warm-start iteration counts per family (budgets after the first)"]
    for name in result["cold"]:
        lines.append(
            f"  {name:15s} cold {result['cold'][name]:4d}  "
            f"warm {result['warm'][name]:4d}"
        )
    lines.append(f"  aggregate warm-start speedup: {result['speedup']:.2f}x")
    save_report("service_warm_start", "\n".join(lines))
    total_cold = sum(result["cold"].values())
    total_warm = sum(result["warm"].values())
    assert total_warm < total_cold, f"warm {total_warm} !< cold {total_cold}"
