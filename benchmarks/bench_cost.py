"""C1 benchmark: the person/computer-time cost of tuning (§II/§IV)."""

from repro.experiments.cost import run_tuning_cost


def test_c1_tuning_cost(benchmark, save_report):
    result = benchmark.pedantic(run_tuning_cost, rounds=1, iterations=1)
    save_report("tuning_cost", result.render())
    # The decision step is where HSLB wins: trial executions vs solver
    # seconds.  One validation run vs several queued attempts.
    assert result.manual_submissions >= 3   # "five to ten iterations"-ish
    assert result.hslb_solver_seconds < 60.0
    assert result.hslb_tuning_cost < result.manual_tuning_cost
    assert result.saved_core_hours > 0.0
    # And the result is at least as good (within noise).
    assert result.hslb_total_seconds <= result.manual_total_seconds * 1.05
