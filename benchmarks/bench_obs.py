"""Observability overhead benchmark: tracing off vs on vs on-with-export.

The contract (DESIGN.md, "Observability") is that the disabled tracer is
near-free and the enabled tracer stays a small fraction of a real solve.
This benchmark times the flagship CESM 1deg-128 pipeline in three modes and
persists the comparison under ``benchmarks/out/obs_overhead.txt``.
"""

from time import perf_counter

from repro.cesm.app import CESMApplication
from repro.cesm.grids import one_degree
from repro.core.hslb import HSLBOptimizer
from repro.experiments.paper_data import BENCHMARK_CAMPAIGN
from repro.obs.export import trace_to_jsonl
from repro.obs.trace import get_tracer
from repro.util.rng import default_rng

ROUNDS = 3


def _run_pipeline():
    app = CESMApplication(one_degree())
    return HSLBOptimizer(app).run(BENCHMARK_CAMPAIGN["1deg"], 128, default_rng(0))


def _best_of(rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = perf_counter()
        _run_pipeline()
        best = min(best, perf_counter() - start)
    return best


def _render(rows: list[tuple[str, float, float]]) -> str:
    lines = [
        "Observability overhead: CESM 1deg-128 pipeline (best of "
        f"{ROUNDS} rounds)",
        "",
        f"{'mode':<24} {'wall (ms)':>10} {'vs off':>8}",
    ]
    for mode, wall, ratio in rows:
        lines.append(f"{mode:<24} {wall * 1e3:>10.1f} {ratio:>7.2f}x")
    return "\n".join(lines)


def test_tracing_overhead(benchmark, save_report, tmp_path):
    tracer = get_tracer()
    assert not tracer.enabled

    _run_pipeline()  # warm-up: imports, model caches

    off = benchmark.pedantic(lambda: _best_of(ROUNDS), rounds=1, iterations=1)

    tracer.reset()
    tracer.enable()
    try:
        on = _best_of(ROUNDS)
        spans = sum(1 for _ in tracer.walk())
        events = sum(len(s.events) for s, _ in tracer.walk())
        start = perf_counter()
        jsonl = trace_to_jsonl(tracer)
        export = perf_counter() - start
        (tmp_path / "trace.jsonl").write_text(jsonl)
    finally:
        tracer.disable()
        tracer.reset()

    rows = [
        ("tracing off", off, 1.0),
        ("tracing on", on, on / off),
        ("tracing on + export", on + export, (on + export) / off),
    ]
    report = _render(rows) + (
        f"\n\nlast traced run: {spans} spans, {events} events, "
        f"{len(jsonl.splitlines())} JSONL lines"
    )
    save_report("obs_overhead", report)

    # Generous CI-safe bound: enabled tracing (tens of spans over a
    # multi-hundred-ms solve) must not come close to doubling the run.
    assert on < 1.5 * off, f"tracing on took {on / off:.2f}x the untraced run"
    assert spans > 10 and events > 0
