"""Observability overhead benchmark: tracing off vs on vs on-with-export.

The contract (DESIGN.md, "Observability") is that the disabled tracer is
near-free and the enabled tracer stays a small fraction of a real solve.
This benchmark times the flagship CESM 1deg-128 pipeline in three modes,
persists the human comparison under ``benchmarks/out/obs_overhead.txt``,
and writes the machine-readable records CI gates to
``benchmarks/out/BENCH_obs.json`` (``HSLB_BENCH_OBS_OUT`` overrides the
path, so ``make obs-bench`` can write a scratch file for the gate):

* ``obs_disabled_overhead_fraction`` — cost-per-disabled-guard x
  guard-count over the untraced wall time; the committed baseline pins the
  **<5% contract** (baseline mean 0.05, gate threshold 1.0x), so the gate
  fails exactly when the measured fraction exceeds 0.05;
* ``obs_enabled_overhead_ratio`` — traced / untraced wall, pinned against
  the 1.5x envelope the same way;
* ``obs_trace_export_roundtrip_seconds`` / ``obs_prometheus_roundtrip_seconds``
  — serialize + parse + reassemble timings, informational (wall time on
  shared runners is too noisy to gate).
"""

import json
import os
import pathlib
from time import perf_counter

from repro.cesm.app import CESMApplication
from repro.cesm.grids import one_degree
from repro.core.hslb import HSLBOptimizer
from repro.experiments.paper_data import BENCHMARK_CAMPAIGN
from repro.obs.export import (
    assemble_trace,
    parse_prometheus,
    parse_trace_jsonl,
    prometheus_exposition,
    trace_to_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer, span, trace_event
from repro.util.rng import default_rng

ROUNDS = 3


def _run_pipeline():
    app = CESMApplication(one_degree())
    return HSLBOptimizer(app).run(BENCHMARK_CAMPAIGN["1deg"], 128, default_rng(0))


def _best_of(rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = perf_counter()
        _run_pipeline()
        best = min(best, perf_counter() - start)
    return best


def _disabled_guard_costs(calls: int = 200_000) -> tuple[float, float]:
    """Per-call cost of the disabled span/event fast paths, amortized."""
    start = perf_counter()
    for _ in range(calls):
        with span("probe", tag=1):
            pass
    span_cost = (perf_counter() - start) / calls
    start = perf_counter()
    for _ in range(calls):
        trace_event("probe", field=1)
    event_cost = (perf_counter() - start) / calls
    return span_cost, event_cost


def _prometheus_roundtrip_seconds() -> float:
    """Expose + parse a populated registry (labels, exemplars, quantiles)."""
    registry = MetricsRegistry()
    hist = registry.histogram("bench_latency_seconds", "bench")
    for i in range(512):
        hist.observe(0.001 * (i % 37), exemplar=f"t-{i:x}", priority="batch")
    counter = registry.counter("bench_requests_total", "bench")
    for i in range(64):
        counter.inc(shard=f"shard-{i % 4}", outcome="ok")
    start = perf_counter()
    text = prometheus_exposition(registry)
    parsed = parse_prometheus(text)
    elapsed = perf_counter() - start
    assert parsed["bench_requests_total"]  # the round-trip really happened
    return elapsed


def _save_json(records: dict[str, float]) -> None:
    out = {
        name: {"min": v, "max": v, "mean": v, "stddev": 0.0, "rounds": 1}
        for name, v in records.items()
    }
    override = os.environ.get("HSLB_BENCH_OBS_OUT")
    if override:
        path = pathlib.Path(override)
    else:
        path = pathlib.Path(__file__).parent / "out" / "BENCH_obs.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"[baseline saved to {path}]")


def _render(rows: list[tuple[str, float, float]]) -> str:
    lines = [
        "Observability overhead: CESM 1deg-128 pipeline (best of "
        f"{ROUNDS} rounds)",
        "",
        f"{'mode':<24} {'wall (ms)':>10} {'vs off':>8}",
    ]
    for mode, wall, ratio in rows:
        lines.append(f"{mode:<24} {wall * 1e3:>10.1f} {ratio:>7.2f}x")
    return "\n".join(lines)


def test_tracing_overhead(benchmark, save_report, tmp_path):
    tracer = get_tracer()
    assert not tracer.enabled

    _run_pipeline()  # warm-up: imports, model caches

    off = benchmark.pedantic(lambda: _best_of(ROUNDS), rounds=1, iterations=1)
    span_cost, event_cost = _disabled_guard_costs()

    tracer.reset()
    tracer.enable()
    try:
        on = _best_of(ROUNDS)
        spans = sum(1 for _ in tracer.walk())
        events = sum(len(s.events) for s, _ in tracer.walk())
        trace_id = tracer.roots[0].trace_id if tracer.roots else ""
        start = perf_counter()
        jsonl = trace_to_jsonl(tracer)
        records = parse_trace_jsonl(jsonl)
        roots = assemble_trace(records, trace_id or None)
        export = perf_counter() - start
        (tmp_path / "trace.jsonl").write_text(jsonl)
    finally:
        tracer.disable()
        tracer.reset()
    assert roots, "the exported trace must reassemble by trace_id"

    prom = _prometheus_roundtrip_seconds()
    disabled_fraction = (spans * span_cost + events * event_cost) / off

    rows = [
        ("tracing off", off, 1.0),
        ("tracing on", on, on / off),
        ("tracing on + export", on + export, (on + export) / off),
    ]
    report = _render(rows) + (
        f"\n\nlast traced run: {spans} spans, {events} events, "
        f"{len(jsonl.splitlines())} JSONL lines"
        f"\ndisabled-guard overhead: {disabled_fraction:.4%} of the untraced "
        f"run ({span_cost * 1e9:.0f}ns/span, {event_cost * 1e9:.0f}ns/event)"
    )
    save_report("obs_overhead", report)
    _save_json(
        {
            "obs_disabled_overhead_fraction": disabled_fraction,
            "obs_enabled_overhead_ratio": on / off,
            "obs_trace_export_roundtrip_seconds": export,
            "obs_prometheus_roundtrip_seconds": prom,
        }
    )

    # Generous CI-safe bound: enabled tracing (tens of spans over a
    # multi-hundred-ms solve) must not come close to doubling the run.
    assert on < 1.5 * off, f"tracing on took {on / off:.2f}x the untraced run"
    assert spans > 10 and events > 0
    # The <5% disabled-overhead contract, asserted here as well as gated.
    assert disabled_fraction < 0.05, (
        f"disabled instrumentation costs {disabled_fraction:.2%} of a solve"
    )
