"""Dynamic-rebalancing benchmark: static vs. dynamic vs. two-level hybrid.

The artifact is ``benchmarks/out/BENCH_dynlb.json`` (same schema as
``BENCH_solver_micro.json``): wall-time records for the benchmark runs
plus *deterministic* quality records — ``dynlb_total_<strategy>`` is each
strategy's simulated run time in seconds under the canonical drift
scenario, bit-identical across runs because every workload draw is keyed
by seed.  ``make dynlb-bench`` diffs a fresh file against the committed
baseline through ``check_bench.py``, so a change that erodes the dynamic
strategies' advantage fails the gate instead of slipping by as noise.

``HSLB_BENCH_DYNLB_OUT`` overrides the output path (the gate writes a
fresh file there rather than clobbering the baseline).
"""

import json
import os
import pathlib

import pytest

from repro.dynlb import DynlbConfig, cesm_workload, compare_strategies, fmo_workload
from repro.faults.plan import FaultPlan

#: The canonical comparison scenario: CESM 1-degree, the atmosphere drifting
#: +80% over the run while the other components ease off — the regime where
#: a frozen static plan decays and rebalancing pays.
_SCENARIO = dict(total_nodes=96, steps=40, drift="linear", drift_rate=0.8, seed=7)
_CONFIG = DynlbConfig(interval=8)

_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _dynlb_baseline(request):
    """Persist timings + deterministic totals as BENCH_dynlb.json.

    Mirrors ``bench_solver_micro``'s baseline fixture: pytest-benchmark
    wall-time records are harvested defensively (informational — the
    simulation is CPU-bound solver work and noisy on shared runners),
    while the ``dynlb_total_*`` records carry the *simulated* seconds,
    which are deterministic and therefore gateable.
    """
    yield
    out = {}
    session = getattr(request.config, "_benchmarksession", None)
    if session is not None:
        for bench in getattr(session, "benchmarks", []):
            if "bench_dynlb" not in str(getattr(bench, "fullname", "")):
                continue
            stats = getattr(bench, "stats", None)
            stats = getattr(stats, "stats", stats)  # unwrap Metadata -> Stats
            record = {}
            for key in ("min", "max", "mean", "stddev", "rounds"):
                value = getattr(stats, key, None)
                if value is not None:
                    record[key] = float(value)
            if record:
                out[getattr(bench, "name", "bench")] = record
    for strategy, result in sorted(_RESULTS.items()):
        t = float(result.total_seconds)
        out[f"dynlb_total_{strategy}"] = {
            "min": t, "max": t, "mean": t, "stddev": 0.0, "rounds": 1,
        }
    if not out:
        return
    override = os.environ.get("HSLB_BENCH_DYNLB_OUT")
    if override:
        path = pathlib.Path(override)
    else:
        path = pathlib.Path(__file__).parent / "out" / "BENCH_dynlb.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"[baseline saved to {path}]")


def test_dynlb_strategy_comparison(benchmark):
    """All five strategies over identical drift; dynamic must beat static."""
    workload = cesm_workload(**_SCENARIO)

    results = benchmark.pedantic(
        lambda: compare_strategies(workload, config=_CONFIG), rounds=1, iterations=1
    )
    _RESULTS.update(results)

    static = results["static"].total_seconds
    for name in ("hslb", "diffusion", "sweep", "two-level"):
        assert results[name].total_seconds < static, (
            f"{name} ({results[name].total_seconds:.0f}s) failed to beat the "
            f"frozen static plan ({static:.0f}s)"
        )
        assert results[name].migrations >= 1
    # The two-level hybrid also smooths intra-component imbalance, so it
    # must beat the single-level MINLP re-solve it extends.
    assert results["two-level"].total_seconds < results["hslb"].total_seconds
    benchmark.extra_info["vs_static_pct"] = {
        name: round(100.0 * (static - r.total_seconds) / static, 2)
        for name, r in results.items()
    }


def test_dynlb_crash_recovery(benchmark):
    """Crash smoke: mid-run node loss leaves every strategy consistent."""
    plan = FaultPlan(seed=7, crash_step=13)
    workload = fmo_workload(
        fragments=6, total_nodes=64, steps=26, drift="step", seed=7, faults=plan
    )

    results = benchmark.pedantic(
        lambda: compare_strategies(workload, ("static", "hslb"), _CONFIG),
        rounds=1,
        iterations=1,
    )
    for result in results.values():
        assert result.crash is not None
        survivors = workload.total_nodes - result.crash.lost_nodes
        assert sum(result.final_allocation.values()) <= survivors
        assert set(result.final_allocation) == set(workload.components)
