"""Async serving tier benchmark: sharded + coalesced vs. one-process batch.

Both contestants answer the *same* keyed Zipf/diurnal/flash trace (so the
comparison is bit-for-bit fair across runs):

* **baseline** — one :class:`~repro.service.batch.BatchExecutor` over one
  :class:`AllocationService`, in-process serial solving (``max_workers=0``),
  fed the trace in arrival-order chunks, with all its dedup/donor/cache
  machinery live;
* **tier** — the :class:`AsyncServingTier` via ``TierConfig.for_host()``
  (4 consistent-hash shards, single-flight coalescing; process workers on
  multi-core hosts, thread workers on a single core), replaying the trace
  as one concurrent burst.

The honest physics of the comparison: the branch-and-bound solve is
GIL-bound CPU work, so the tier's throughput *win* comes from shards
solving on separate cores.  On a multi-core host the bench asserts a
strict win; pinned to **one core** (this repo's CI) no architecture can
beat an already cache+dedup-optimal single process, so the bench asserts
parity within tolerance instead and records ``asyncserve_cores`` so the
artifact says which regime produced it.  The structural guarantees are
asserted unconditionally: zero lost requests, zero sheds at this
capacity, coalescing actually firing, every answer accounted.

The artifact is ``benchmarks/out/BENCH_asyncserve.json``: throughput for
both sides, the speedup ratio, tier p50/p99/p999 from the obs histograms,
and the deterministic accounting records the CI gate pins exactly.
``HSLB_BENCH_ASYNCSERVE_OUT`` overrides the output path (the gate writes
a fresh file there rather than clobbering the committed baseline).
"""

import json
import os
import pathlib
import time

import pytest

from repro.service.admission import AdmissionPolicy
from repro.service.batch import BatchExecutor
from repro.service.frontend import AsyncServingTier, TierConfig
from repro.service.loadgen import TraceSpec, generate_trace, replay
from repro.service.service import AllocationService

#: The canonical serving scenario: 12 curve families x 4 node budgets under
#: a Zipf-1.1 popularity law, one diurnal cycle, two flash crowds — enough
#: distinct solves (48) that parallel shards matter, enough duplication
#: (600 events) that coalescing and caching matter.
_SPEC = TraceSpec(
    n_requests=600,
    seed=20120427,
    n_families=12,
    budgets=(48, 64, 72, 96),
    duration=30.0,
    flash_crowds=2,
)

#: Arrival-order chunk size for the baseline (a batch per "tick"; dedup and
#: donor ordering operate within a chunk, the cache across chunks).
_CHUNK = 150

_RESULTS: dict = {}


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


@pytest.fixture(scope="module", autouse=True)
def _asyncserve_baseline(request):
    """Persist the comparison as BENCH_asyncserve.json (dynlb conventions)."""
    yield
    out = {}
    session = getattr(request.config, "_benchmarksession", None)
    if session is not None:
        for bench in getattr(session, "benchmarks", []):
            if "bench_asyncserve" not in str(getattr(bench, "fullname", "")):
                continue
            stats = getattr(bench, "stats", None)
            stats = getattr(stats, "stats", stats)  # unwrap Metadata -> Stats
            record = {}
            for key in ("min", "max", "mean", "stddev", "rounds"):
                value = getattr(stats, key, None)
                if value is not None:
                    record[key] = float(value)
            if record:
                out[getattr(bench, "name", "bench")] = record
    for name, value in sorted(_RESULTS.items()):
        v = float(value)
        out[f"asyncserve_{name}"] = {
            "min": v, "max": v, "mean": v, "stddev": 0.0, "rounds": 1,
        }
    if not out:
        return
    override = os.environ.get("HSLB_BENCH_ASYNCSERVE_OUT")
    if override:
        path = pathlib.Path(override)
    else:
        path = pathlib.Path(__file__).parent / "out" / "BENCH_asyncserve.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"[baseline saved to {path}]")


def _run_baseline(trace) -> float:
    """Single-process BatchExecutor over the trace, chunked; returns seconds."""
    executor = BatchExecutor(
        AllocationService(cache_capacity=256), max_pending=len(trace) + 1
    )
    requests = [event.request for event in trace]
    start = time.perf_counter()
    for lo in range(0, len(requests), _CHUNK):
        responses = executor.run(requests[lo:lo + _CHUNK])
        assert all(r.ok for r in responses)
    return time.perf_counter() - start


def test_asyncserve_tier_vs_batch(benchmark):
    """Sharded async tier vs. the one-process batch executor, same trace."""
    trace = generate_trace(_SPEC)
    cores = _cores()

    baseline_seconds = _run_baseline(trace)
    baseline_rps = len(trace) / baseline_seconds

    def serve():
        tier = AsyncServingTier(
            TierConfig.for_host(
                cores,
                admission=AdmissionPolicy(max_pending=2 * len(trace)),
            )
        )
        return replay(tier, trace, speed=0.0)

    report = benchmark.pedantic(serve, rounds=1, iterations=1)
    snap = report.snapshot()

    # Accounting invariants: every event answered, none lost or shed.
    assert snap["lost"] == 0
    assert snap["shed"] == 0
    assert snap["errors"] == 0
    assert snap["answered"] == _SPEC.n_requests
    # Coalescing must actually fire on a burst this duplicate-heavy.
    assert snap["coalesce"]["riders"] > 0

    speedup = snap["throughput_rps"] / baseline_rps
    if cores > 1:
        # Shards on separate cores must beat the serial baseline outright.
        assert speedup > 1.0, (
            f"tier ({snap['throughput_rps']:.0f} rps, {cores} cores) failed "
            f"to beat the single-process baseline ({baseline_rps:.0f} rps)"
        )
    else:
        # One core: no parallel win is physically possible; the tier must
        # hold parity (its coalescing/cache path must not cost throughput).
        assert speedup > 0.7, (
            f"tier ({snap['throughput_rps']:.0f} rps) fell more than 30% "
            f"behind the single-core baseline ({baseline_rps:.0f} rps)"
        )

    _RESULTS.update(
        throughput_rps=snap["throughput_rps"],
        baseline_rps=baseline_rps,
        speedup=speedup,
        p50=snap["p50"],
        p99=snap["p99"],
        p999=snap["p999"],
        lost_requests=snap["lost"],
        answered=snap["answered"],
        coalesce_rate=snap["coalesce"]["coalesce_rate"],
        cores=cores,
    )
    benchmark.extra_info["sources"] = snap["sources"]
    benchmark.extra_info["speedup"] = round(speedup, 2)
