"""Figure 2 benchmark: component scaling curves and fit quality (F2, F2b)."""

import numpy as np
import pytest

from repro.experiments.fig2 import run_fig2
from repro.perf.fitting import fit_performance_model
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng
from repro.util.tables import format_table


def test_fig2_scaling_curves(benchmark, save_report):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    save_report("fig2", result.render())
    # "R^2 was very close to 1 for each component."
    assert result.min_r_squared() > 0.99
    for comp, s in result.series.items():
        # Fitted curves decrease then flatten toward the serial floor.
        assert s.curve_seconds[0] > 3 * s.curve_seconds[-1], comp
        assert np.all(s.curve_seconds > 0)


def test_fig2c_model_family_selection(benchmark, save_report):
    """§III-B aside: is the Table II family the right one for CESM?

    Runs AICc selection (Amdahl vs Table II vs power law) on each
    component's gather data.  The paper's own fits drive b, c to "almost
    zero" — i.e. the data does not support all four parameters.  AICc makes
    the same judgement: a parsimonious family (2-parameter Amdahl or
    3-parameter power law) beats the 4-parameter Table II form on every
    component.  (Table II remains the *formulation* family because its
    extra terms certify convexity and absorb genuinely increasing tails
    when they exist.)
    """
    from repro.cesm.app import CESMApplication
    from repro.cesm.grids import one_degree
    from repro.core.hslb import HSLBOptimizer
    from repro.experiments.paper_data import BENCHMARK_CAMPAIGN
    from repro.perf.selection import select_model

    def run():
        app = CESMApplication(one_degree())
        opt = HSLBOptimizer(app)
        rng = default_rng(2014)
        suite = opt.gather(BENCHMARK_CAMPAIGN["1deg"], rng)
        out = {}
        for comp in suite.components:
            n, y = suite[comp].arrays()
            out[comp] = select_model(n, y, rng=default_rng(3))
        return out

    selections = benchmark.pedantic(run, rounds=1, iterations=1)
    report = "\n\n".join(
        f"[{comp}]\n{sel.render()}" for comp, sel in selections.items()
    )
    save_report("fig2c_model_selection", report)
    for comp, sel in selections.items():
        # The winner always fits well...
        assert sel.best.r_squared > 0.98, comp
        # ...and is never the over-parameterized 4-parameter family.
        assert sel.best_family in ("amdahl", "power-law"), comp
        assert (
            sel.candidates[sel.best_family].aicc
            < sel.candidates["table2"].aicc
        ), comp


def test_fig2b_points_needed_for_fit(benchmark, save_report):
    """§III-C: 'the number of benchmarking runs ... should be at least
    greater than four'; 'for CESM, four points were enough'.

    Sweeps the campaign size D and reports interpolation error at an unseen
    node count — the error collapses once D reaches ~4.
    """
    truth = PerformanceModel(a=27380.0, b=1e-3, c=1.0, d=43.0)
    probe = 300.0
    all_nodes = np.array([32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0])

    def sweep():
        rows = []
        for d in range(2, 8):
            errors = []
            for seed in range(8):
                rng = default_rng(seed)
                idx = np.linspace(0, all_nodes.size - 1, d).round().astype(int)
                nodes = all_nodes[np.unique(idx)]
                y = truth.time(nodes) * np.exp(rng.normal(0, 0.02, nodes.size))
                fit = fit_performance_model(nodes, y, rng=rng)
                errors.append(
                    abs(float(fit.model.time(probe)) - float(truth.time(probe)))
                    / float(truth.time(probe))
                )
            rows.append((d, 100 * float(np.mean(errors)), 100 * float(np.max(errors))))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["D points", "mean err %", "max err %"],
        rows,
        title="F2b: interpolation error vs number of benchmark points",
        float_fmt=".2f",
    )
    save_report("fig2b_points_needed", table)
    by_d = {d: mean for d, mean, _ in rows}
    assert by_d[4] < 5.0          # four points suffice...
    assert by_d[4] <= by_d[2]     # ...and beat two points
