"""Figure 4 benchmark: predicted scaling of component layouts 1-3 at 1 degree."""

from repro.cesm.layouts import Layout
from repro.experiments.fig4 import run_fig4


def test_fig4_layout_scaling(benchmark, save_report):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    save_report("fig4", result.render())

    # "layouts 1 and 2 performed similar, while layout 3 ... the worst."
    for i in range(len(result.node_counts)):
        t1 = result.predicted[Layout.HYBRID][i]
        t2 = result.predicted[Layout.SEQUENTIAL_GROUP][i]
        t3 = result.predicted[Layout.FULLY_SEQUENTIAL][i]
        assert t1 <= t2 * 1.02
        assert abs(t2 - t1) / t1 < 0.25
        assert t3 > t2

    # "The R^2 between predicted and experimental data for layout (1) is
    # equal to 1.0" — ours must be extremely close.
    assert result.r_squared_layout1() > 0.98

    # Scaling curves decrease monotonically with machine size.
    for layout in Layout:
        series = result.predicted[layout]
        assert all(series[i + 1] < series[i] for i in range(len(series) - 1))
