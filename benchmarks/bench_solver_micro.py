"""Micro-benchmarks of the MINLP toolkit's hot paths.

Not tied to a paper artifact; these track the substrate's performance so
regressions in the solver stack (which every experiment depends on) show up
as benchmark deltas rather than mysteriously slow tables.
"""

import json
import os
import pathlib

import numpy as np
import pytest

from repro.cesm.grids import one_degree
from repro.cesm.layouts import Layout, formulate_layout
from repro.minlp import Model, solve_minlp_oa
from repro.minlp.linprog import IncrementalLPSolver, LinearProgram, solve_lp
from repro.minlp.simplex import solve_lp_simplex
from repro.perf.fitting import fit_performance_model
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng

_MODELS = {
    "lnd": PerformanceModel(a=1483.0, d=2.1),
    "ice": PerformanceModel(a=7600.0, d=11.0),
    "atm": PerformanceModel(a=27380.0, d=43.0),
    "ocn": PerformanceModel(a=7550.0, d=45.0),
}


@pytest.fixture(scope="module", autouse=True)
def _micro_baseline(request):
    """Persist this module's timings as benchmarks/out/BENCH_solver_micro.json.

    Reads pytest-benchmark's session store defensively: when the plugin is
    absent or disabled the fixture silently does nothing, so the module
    still runs as a plain test file.

    ``HSLB_BENCH_OUT`` overrides the output path — the regression gate
    (``make bench-check``) writes a fresh file there and diffs it against
    the committed baseline instead of clobbering it.
    """
    yield
    session = getattr(request.config, "_benchmarksession", None)
    if session is None:
        return
    out = {}
    for bench in getattr(session, "benchmarks", []):
        if "bench_solver_micro" not in str(getattr(bench, "fullname", "")):
            continue
        stats = getattr(bench, "stats", None)
        stats = getattr(stats, "stats", stats)  # unwrap Metadata -> Stats
        record = {}
        for key in ("min", "max", "mean", "stddev", "rounds"):
            value = getattr(stats, key, None)
            if value is not None:
                record[key] = float(value)
        if record:
            out[getattr(bench, "name", "bench")] = record
    if not out:
        return
    override = os.environ.get("HSLB_BENCH_OUT")
    if override:
        path = pathlib.Path(override)
    else:
        path = pathlib.Path(__file__).parent / "out" / "BENCH_solver_micro.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"[baseline saved to {path}]")


def _random_lp(n=60, m=40, seed=0):
    rng = default_rng(seed)
    return LinearProgram(
        c=rng.normal(size=n),
        A=rng.normal(size=(m, n)),
        row_lb=np.full(m, -np.inf),
        row_ub=rng.uniform(1.0, 5.0, size=m),
        var_lb=np.zeros(n),
        var_ub=np.full(n, 10.0),
    )


def test_lp_highs_backend(benchmark):
    lp = _random_lp()
    result = benchmark(lambda: solve_lp(lp))
    assert result.status.value == "optimal"


def test_lp_pure_python_simplex(benchmark):
    lp = _random_lp(n=15, m=10)
    result = benchmark(lambda: solve_lp_simplex(lp))
    assert result.status.value == "optimal"


def test_lp_simplex_warm_restart(benchmark):
    """Child-node re-solve from the parent basis (the B&B inner loop)."""
    parent = _random_lp(n=15, m=10)
    root = solve_lp_simplex(parent)
    assert root.basis is not None
    child_ub = parent.var_ub.copy()
    child_ub[3] = 4.0
    child = LinearProgram(
        c=parent.c, A=parent.A, row_lb=parent.row_lb, row_ub=parent.row_ub,
        var_lb=parent.var_lb, var_ub=child_ub,
    )
    result = benchmark(lambda: solve_lp_simplex(child, basis=root.basis))
    assert result.status.value == "optimal"
    assert result.warm_started


def _bnb_knapsack(items, seed=0):
    rng = default_rng(seed)
    value = rng.uniform(1.0, 10.0, items)
    weight = rng.uniform(1.0, 5.0, items)
    m = Model(f"bench-knapsack{items}")
    xs = [m.binary_var(f"x{i}") for i in range(items)]
    m.add(sum(float(weight[i]) * xs[i] for i in range(items)) <= float(weight.sum()) / 2)
    m.maximize(sum(float(value[i]) * xs[i] for i in range(items)))
    return m.build()


@pytest.mark.parametrize("items", [8, 16, 28], ids=["small", "medium", "large"])
def test_bnb_node_throughput(benchmark, items):
    """B&B node throughput (simplex backend, parent-basis reuse on)."""
    from repro.minlp import BnBOptions
    from repro.minlp.milp import solve_milp

    problem = _bnb_knapsack(items)
    opts = BnBOptions(lp_backend="simplex", basis_reuse=True)
    sol = benchmark.pedantic(lambda: solve_milp(problem, opts), rounds=3, iterations=1)
    assert sol.status.value == "optimal"
    benchmark.extra_info["nodes"] = sol.stats.nodes_explored


def _oa_instance(components):
    m = Model(f"bench-oa{components}")
    t = m.var("t", lb=0.0)
    rng = default_rng(components)
    total = 64 * components
    ns = [m.integer_var(f"n{i}", 1, total) for i in range(components)]
    m.add(sum(ns) <= total)
    for i, n in enumerate(ns):
        a = float(rng.uniform(50.0, 400.0))
        d = float(rng.uniform(0.5, 4.0))
        m.add(t >= a / n + d * n)
    m.minimize(t)
    return m.build()


@pytest.mark.parametrize("components", [2, 4, 6], ids=["small", "medium", "large"])
def test_oa_master_iterations(benchmark, components):
    """Single-tree OA wall time (pooled cuts) at growing instance sizes."""
    problem = _oa_instance(components)
    sol = benchmark.pedantic(lambda: solve_minlp_oa(problem), rounds=3, iterations=1)
    assert sol.status.value in ("optimal", "feasible")
    benchmark.extra_info["cuts"] = sol.stats.cuts_added


def test_incremental_lp_node_resolve(benchmark):
    """The branch-and-bound inner loop: bound override + resolve."""
    problem = formulate_layout(_MODELS, 2048, one_degree(), layout=Layout.HYBRID)
    # Strip nonlinear rows for the LP master skeleton.
    from repro.minlp.oa import _epigraph_form, _linear_master

    master = _linear_master(_epigraph_form(problem)[0])
    inc = IncrementalLPSolver(master)
    sol = benchmark(lambda: inc.solve({"n_ocn": (2.0, 128.0)}))
    assert sol.status.value == "optimal"


def test_layout1_full_solve(benchmark):
    """End-to-end MINLP solve of the 1-degree layout-1 model at 2048."""
    problem = formulate_layout(_MODELS, 2048, one_degree(), layout=Layout.HYBRID)
    sol = benchmark.pedantic(
        lambda: solve_minlp_oa(problem), rounds=3, iterations=1
    )
    assert sol.status.value == "optimal"


def test_many_fragment_minlp_stress(benchmark):
    """Scalability guard: a 24-fragment min-max MINLP at 2048 nodes."""
    from repro.fmo.molecules import protein_like
    from repro.fmo.schedulers import hslb_schedule

    system = protein_like(24, default_rng(6))

    def run():
        schedule, sol = hslb_schedule(system, 2048)
        return schedule, sol

    schedule, sol = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sol.status.value in ("optimal", "feasible")
    assert schedule.total_nodes <= 2048
    assert len(schedule.group_sizes) == 24


def test_fitting_throughput(benchmark):
    truth = PerformanceModel(a=27380.0, b=1e-3, c=1.0, d=43.0)
    rng = default_rng(1)
    nodes = np.array([32.0, 64.0, 128.0, 512.0, 2048.0])
    y = truth.time(nodes) * np.exp(rng.normal(0, 0.02, nodes.size))
    fit = benchmark(lambda: fit_performance_model(nodes, y, rng=default_rng(2)))
    assert fit.r_squared > 0.999


def test_expression_differentiation(benchmark):
    """Symbolic gradient of a layout-1-sized constraint system."""
    m = Model("grad")
    t = m.var("T", 0, 1e5)
    n_vars = [m.integer_var(f"n{i}", 1, 4096) for i in range(4)]
    exprs = [27380.0 / n + 1e-3 * n**1.5 + 43.0 for n in n_vars]

    def differentiate():
        out = []
        for e in exprs:
            for v in ("n0", "n1", "n2", "n3"):
                out.append(e.diff(v))
        return out

    grads = benchmark(differentiate)
    assert len(grads) == 16
