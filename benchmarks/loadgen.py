#!/usr/bin/env python
"""Trace-driven load generator CLI for the async serving tier.

A thin runner over :mod:`repro.service.loadgen`: build a keyed
Zipf + diurnal + flash-crowd trace, replay it against a freshly
constructed :class:`~repro.service.frontend.AsyncServingTier`, and print
the replay report as JSON (optionally writing it to ``--out``).

Examples::

    # the canonical bench trace, burst replay, 4 shards
    python benchmarks/loadgen.py

    # a bigger trace, paced at 10x trace speed, 8 shards, shedding allowed
    python benchmarks/loadgen.py --requests 5000 --speed 10 \
        --shards 8 --max-pending 64

This script is intentionally *not* the gated benchmark — that is
``bench_asyncserve.py`` — it is the knob-turning tool for exploring how
the tier behaves under traffic shapes the gate does not pin.
"""

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.service.admission import AdmissionPolicy  # noqa: E402
from repro.service.frontend import AsyncServingTier, TierConfig  # noqa: E402
from repro.service.loadgen import (  # noqa: E402
    TraceSpec,
    generate_trace,
    priority_histogram,
    replay,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    trace = parser.add_argument_group("trace shape")
    trace.add_argument("--requests", type=int, default=600)
    trace.add_argument("--seed", type=int, default=20120427)
    trace.add_argument("--families", type=int, default=6)
    trace.add_argument(
        "--budgets", type=int, nargs="+", default=[48, 64, 72, 96]
    )
    trace.add_argument("--zipf", type=float, default=1.1)
    trace.add_argument("--duration", type=float, default=30.0)
    trace.add_argument("--diurnal-amplitude", type=float, default=0.5)
    trace.add_argument("--flash-crowds", type=int, default=2)
    trace.add_argument("--flash-magnitude", type=float, default=4.0)
    tier = parser.add_argument_group("tier")
    tier.add_argument("--shards", type=int, default=4)
    tier.add_argument(
        "--worker-mode", choices=("thread", "process", "inline"), default="thread"
    )
    tier.add_argument("--no-coalesce", action="store_true")
    tier.add_argument(
        "--max-pending",
        type=int,
        default=0,
        help="admission capacity; 0 sizes it above the trace (no shedding)",
    )
    run = parser.add_argument_group("replay")
    run.add_argument(
        "--speed",
        type=float,
        default=0.0,
        help="trace-time speedup; 0 replays the whole trace as one burst",
    )
    run.add_argument("--deadline", type=float, default=None)
    run.add_argument("--out", type=pathlib.Path, default=None)
    args = parser.parse_args(argv)

    spec = TraceSpec(
        n_requests=args.requests,
        seed=args.seed,
        n_families=args.families,
        budgets=tuple(args.budgets),
        zipf_exponent=args.zipf,
        duration=args.duration,
        diurnal_amplitude=args.diurnal_amplitude,
        flash_crowds=args.flash_crowds,
        flash_magnitude=args.flash_magnitude,
    )
    events = generate_trace(spec)
    max_pending = args.max_pending or 2 * len(events)
    config = TierConfig(
        shards=args.shards,
        worker_mode=args.worker_mode,
        coalesce=not args.no_coalesce,
        admission=AdmissionPolicy(max_pending=max_pending),
    )
    report = replay(
        AsyncServingTier(config),
        events,
        speed=args.speed,
        deadline=args.deadline,
    )
    payload = report.snapshot()
    payload["trace_priorities"] = priority_histogram(events)
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
