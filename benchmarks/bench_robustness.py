"""Robustness benchmarks R1/R2: the §IV 'weakest part' claim, quantified."""

from repro.experiments.robustness import run_noise_sweep, run_outlier_robustness


def test_r1_noise_sweep(benchmark, save_report):
    result = benchmark.pedantic(run_noise_sweep, rounds=1, iterations=1)
    save_report("robustness_noise", result.render())
    regret = result.regret()
    # Moderate noise (<= 5%) costs essentially nothing — HSLB tolerates the
    # run-to-run jitter the paper's campaigns actually had.
    for level, r in zip(result.noise_levels, regret):
        if level <= 0.05:
            assert r < 0.05, f"regret {r:.3f} at noise {level}"
    # Even 20% noise keeps the allocation within ~15% of optimal: the MINLP
    # decision step degrades gracefully rather than collapsing.
    assert max(regret) < 0.15


def test_r2_outlier_robust_fitting(benchmark, save_report):
    result = benchmark.pedantic(run_outlier_robustness, rounds=1, iterations=1)
    save_report("robustness_outliers", result.render())
    # Robust fitting tracks the true curves better under contamination...
    assert result.huber_prediction_error <= result.plain_prediction_error + 1e-9
    assert result.huber_prediction_error < 0.15
    # ...and never yields a worse allocation than plain least squares by
    # more than a couple percent.
    assert result.huber_regret <= result.plain_regret + 0.02
