"""Benchmark regression gate: fresh timings vs. the committed baseline.

``make bench-check`` runs the solver micro-benchmarks with ``HSLB_BENCH_OUT``
pointed at a scratch file, then invokes this script to diff that fresh file
against the committed ``benchmarks/out/BENCH_solver_micro.json``.  The gate
fails (exit 1) when any *gated* benchmark's mean regresses by more than the
threshold (default 2x); everything else is reported informationally, because
end-to-end solves and fitting throughput are too noisy on shared CI runners
to gate hard.

Gated keys are the solver hot path this repo optimizes deliberately — the
pure-python simplex, warm restarts, the incremental LP resolve, and B&B node
throughput.  A >2x mean regression there is a code problem, not noise.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import pathlib
import sys

_HERE = pathlib.Path(__file__).parent
_BASELINE = _HERE / "out" / "BENCH_solver_micro.json"

#: Benchmarks whose mean regression fails the gate (fnmatch patterns).
#: ``dynlb_total_*`` are the *simulated* run times of the rebalancing
#: strategies — deterministic under the keyed-RNG workload, so a mean
#: regression there is an algorithmic change, never runner noise.
GATED = (
    "test_lp_pure_python_simplex",
    "test_lp_simplex_warm_restart",
    "test_lp_highs_backend",
    "test_incremental_lp_node_resolve",
    "test_bnb_node_throughput*",
    "dynlb_total_*",
)


def _load(path: pathlib.Path) -> dict:
    """Read and validate one benchmark JSON; exit with a clear message.

    Every failure mode a stale checkout can produce — missing file,
    corrupt JSON, a schema that is not ``{name: {mean: ...}}`` — exits
    with a one-line diagnosis instead of surfacing as a KeyError later.
    """
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(
            f"bench-check: missing benchmark file {path}\n"
            "  (generate a baseline with `make solver-bench` / `make dynlb-bench`,"
            " or point --fresh/--baseline at an existing file)"
        )
    except json.JSONDecodeError as exc:
        sys.exit(f"bench-check: {path} is not valid JSON ({exc})")
    if not isinstance(data, dict):
        sys.exit(
            f"bench-check: {path} must map benchmark names to stat records, "
            f"got {type(data).__name__}"
        )
    for name, record in data.items():
        if not isinstance(record, dict):
            sys.exit(
                f"bench-check: {path}: record for {name!r} is "
                f"{type(record).__name__}, expected an object with a 'mean' field "
                "— regenerate the file"
            )
    return data


def _gated(name: str) -> bool:
    return any(fnmatch.fnmatch(name, pat) for pat in GATED)


def check(fresh: dict, baseline: dict, threshold: float) -> list[str]:
    """Return the list of gate failures (empty means the gate passes)."""
    failures: list[str] = []
    for name in sorted(baseline):
        base_mean = baseline[name].get("mean")
        record = fresh.get(name)
        if not _gated(name):
            continue
        if record is None:
            failures.append(
                f"{name}: present in baseline but missing from fresh run "
                "(renamed or removed? update the committed baseline alongside "
                "the benchmark)"
            )
            continue
        mean = record.get("mean")
        if base_mean is None or mean is None:
            continue
        ratio = mean / base_mean if base_mean > 0 else float("inf")
        verdict = "FAIL" if ratio > threshold else "ok"
        print(
            f"[{verdict}] {name}: {base_mean * 1e3:.3f} ms -> {mean * 1e3:.3f} ms "
            f"({ratio:.2f}x)"
        )
        if ratio > threshold:
            failures.append(
                f"{name}: mean {mean * 1e3:.3f} ms is {ratio:.2f}x the baseline "
                f"{base_mean * 1e3:.3f} ms (threshold {threshold:.1f}x)"
            )
    for name in sorted(set(fresh) - set(baseline)):
        print(f"[new ] {name}: {fresh[name].get('mean', 0.0) * 1e3:.3f} ms (no baseline)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        type=pathlib.Path,
        required=True,
        help="benchmark JSON produced by the fresh run (via HSLB_BENCH_OUT)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=_BASELINE,
        help=f"committed baseline to diff against (default: {_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="maximum allowed mean ratio fresh/baseline for gated keys",
    )
    args = parser.parse_args(argv)
    failures = check(_load(args.fresh), _load(args.baseline), args.threshold)
    if failures:
        print("\nbench-check FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("\nbench-check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
