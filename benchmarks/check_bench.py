"""Benchmark regression gate: fresh numbers vs. the committed baseline.

``make bench-check`` (and the ``dynlb-bench`` / ``service-bench`` /
``asyncserve-bench`` targets) run a benchmark with its ``HSLB_BENCH_*_OUT``
env var pointed at a ``*.fresh.json`` scratch file, then invoke this script
to diff that fresh file against the committed baseline.  The gate fails
(exit 1) when any *gated* record regresses past its threshold; everything
else is reported informationally, because end-to-end wall times are too
noisy on shared CI runners to gate hard.

Each gate rule carries a **direction** — ``lower`` for records where small
is good (timings, latencies, lost requests) and ``higher`` for records
where large is good (throughput, hit rates, speedups) — and an optional
per-record threshold overriding the CLI default, so deterministic records
(keyed-RNG simulated seconds, request accounting) gate tight while wall
times gate loose.

``--update`` promotes the fresh file to the committed baseline (after
printing the comparison) and deletes the scratch file, so accepted perf
changes don't leave stale ``*.fresh.json`` files rotting in
``benchmarks/out/``.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import pathlib
import sys
from dataclasses import dataclass

_HERE = pathlib.Path(__file__).parent
_BASELINE = _HERE / "out" / "BENCH_solver_micro.json"


@dataclass(frozen=True)
class GateRule:
    """One gated record family: pattern, direction, optional threshold."""

    pattern: str
    direction: str = "lower"  # "lower" = small is good, "higher" = large is
    threshold: float | None = None  # None -> the CLI --threshold default


#: Records whose regression fails the gate (first matching rule wins).
#:
#: * solver micro-benchmarks — the hot path this repo optimizes
#:   deliberately; a >2x wall-time regression is a code problem, not noise;
#: * ``dynlb_total_*`` — *simulated* seconds under the keyed-RNG workload,
#:   deterministic, so a regression is an algorithmic change;
#: * ``service_*`` — the allocation-service Zipf-mix records; the
#:   throughput-flavoured ones gate in the "higher" direction, and
#:   ``service_replay_mismatches`` pins bit-identical replay at exactly 0;
#: * ``asyncserve_*`` — the async tier vs. batch baseline; accounting
#:   records (lost/answered) are deterministic and gate tight, wall-time
#:   ratios gate loose because single-core runners sit near parity;
#: * ``obs_*`` — tracing-overhead contracts; their committed baselines ARE
#:   the contract values (disabled-guard fraction 0.05, enabled ratio 1.5),
#:   so with threshold 1.0 the gate fails exactly when a fresh run exceeds
#:   the contract, not when it drifts relative to a lucky measurement.
GATED = (
    GateRule("test_lp_pure_python_simplex"),
    GateRule("test_lp_simplex_warm_restart"),
    GateRule("test_lp_highs_backend"),
    GateRule("test_incremental_lp_node_resolve"),
    GateRule("test_bnb_node_throughput*"),
    GateRule("dynlb_total_*"),
    GateRule("service_throughput_rps", "higher", 3.0),
    GateRule("service_speedup", "higher", 2.0),
    GateRule("service_hit_rate", "higher", 1.2),
    GateRule("service_warm_start_speedup", "higher", 1.5),
    GateRule("service_replay_mismatches", "lower", 1.0),
    GateRule("asyncserve_throughput_rps", "higher", 2.0),
    GateRule("asyncserve_baseline_rps", "higher", 2.0),
    GateRule("asyncserve_speedup", "higher", 2.0),
    GateRule("asyncserve_lost_requests", "lower", 1.0),
    GateRule("asyncserve_answered", "higher", 1.01),
    GateRule("asyncserve_coalesce_rate", "higher", 1.5),
    GateRule("asyncserve_p50", "lower", 3.0),
    GateRule("asyncserve_p99", "lower", 3.0),
    GateRule("asyncserve_p999", "lower", 3.0),
    GateRule("obs_disabled_overhead_fraction", "lower", 1.0),
    GateRule("obs_enabled_overhead_ratio", "lower", 1.0),
)


def _load(path: pathlib.Path) -> dict:
    """Read and validate one benchmark JSON; exit with a clear message.

    Every failure mode a stale checkout can produce — missing file,
    corrupt JSON, a schema that is not ``{name: {mean: ...}}`` — exits
    with a one-line diagnosis instead of surfacing as a KeyError later.
    """
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(
            f"bench-check: missing benchmark file {path}\n"
            "  (generate a baseline with `make solver-bench` / `make dynlb-bench`,"
            " or point --fresh/--baseline at an existing file)"
        )
    except json.JSONDecodeError as exc:
        sys.exit(f"bench-check: {path} is not valid JSON ({exc})")
    if not isinstance(data, dict):
        sys.exit(
            f"bench-check: {path} must map benchmark names to stat records, "
            f"got {type(data).__name__}"
        )
    for name, record in data.items():
        if not isinstance(record, dict):
            sys.exit(
                f"bench-check: {path}: record for {name!r} is "
                f"{type(record).__name__}, expected an object with a 'mean' field "
                "— regenerate the file"
            )
    return data


def _rule_for(name: str) -> GateRule | None:
    for rule in GATED:
        if fnmatch.fnmatch(name, rule.pattern):
            return rule
    return None


def _regression(mean: float, base: float, direction: str) -> float:
    """How many times worse ``mean`` is than ``base`` (1.0 = unchanged).

    For ``lower`` direction that is ``mean/base``; for ``higher`` it is
    ``base/mean``.  A zero on the good side of either ratio means "cannot
    regress from here" and reports 1.0; a zero on the bad side (e.g. lost
    requests appearing over a 0 baseline, throughput collapsing to 0)
    reports infinity.
    """
    if direction == "higher":
        if base <= 0:
            return 1.0
        return float("inf") if mean <= 0 else base / mean
    if base <= 0:
        return 1.0 if mean <= 0 else float("inf")
    return mean / base


def check(fresh: dict, baseline: dict, threshold: float) -> list[str]:
    """Return the list of gate failures (empty means the gate passes)."""
    failures: list[str] = []
    for name in sorted(baseline):
        base_mean = baseline[name].get("mean")
        record = fresh.get(name)
        rule = _rule_for(name)
        if rule is None:
            continue
        if record is None:
            failures.append(
                f"{name}: present in baseline but missing from fresh run "
                "(renamed or removed? update the committed baseline alongside "
                "the benchmark)"
            )
            continue
        mean = record.get("mean")
        if base_mean is None or mean is None:
            continue
        limit = rule.threshold if rule.threshold is not None else threshold
        regression = _regression(mean, base_mean, rule.direction)
        verdict = "FAIL" if regression > limit else "ok"
        arrow = "v" if rule.direction == "lower" else "^"
        print(
            f"[{verdict}] {name} ({arrow}): {base_mean:.6g} -> {mean:.6g} "
            f"({regression:.2f}x worse, limit {limit:.2f}x)"
        )
        if regression > limit:
            failures.append(
                f"{name}: mean {mean:.6g} is {regression:.2f}x worse than the "
                f"baseline {base_mean:.6g} "
                f"({rule.direction} is better, threshold {limit:.2f}x)"
            )
    for name in sorted(set(fresh) - set(baseline)):
        print(f"[new ] {name}: {fresh[name].get('mean', 0.0):.6g} (no baseline)")
    return failures


def update_baseline(fresh: pathlib.Path, baseline: pathlib.Path) -> None:
    """Promote the fresh file to the baseline and drop the scratch file."""
    baseline.parent.mkdir(parents=True, exist_ok=True)
    baseline.write_text(fresh.read_text())
    if fresh.resolve() != baseline.resolve():
        fresh.unlink()
    print(f"bench-check: baseline {baseline} updated; removed {fresh}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        type=pathlib.Path,
        required=True,
        help="benchmark JSON produced by the fresh run (via HSLB_BENCH_*_OUT)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=_BASELINE,
        help=f"committed baseline to diff against (default: {_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="default allowed regression factor for gated records without "
        "a per-record threshold",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="promote the fresh file to the committed baseline (after "
        "printing the comparison) and delete the scratch file",
    )
    args = parser.parse_args(argv)
    if args.update and not args.baseline.exists():
        baseline = {}  # first-time promotion: nothing to diff against yet
    else:
        baseline = _load(args.baseline)
    failures = check(_load(args.fresh), baseline, args.threshold)
    if args.update:
        update_baseline(args.fresh, args.baseline)
        return 0
    if failures:
        print("\nbench-check FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("\nbench-check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
