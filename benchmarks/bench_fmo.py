"""FMO benchmarks (the SC 2012 title paper's headline shapes).

* FMO-1 — HSLB vs idealized DLB vs uniform static across machine sizes;
* FMO-2 — full pipeline prediction quality on FMO;
* FMO-3 — scalability of the HSLB schedule.
"""

from repro.experiments.fmo_experiments import (
    run_fmo_comparison,
    run_fmo_diversity_sweep,
    run_fmo_pipeline,
    run_fmo_speedup,
    run_fmo_two_phase,
)


def test_fmo1_scheduler_comparison(benchmark, save_report):
    result = benchmark.pedantic(run_fmo_comparison, rounds=1, iterations=1)
    save_report("fmo_comparison", result.render())
    # HSLB never loses; on few large diverse tasks it wins clearly.
    assert result.hslb_always_best()
    for i in range(len(result.node_counts)):
        assert (
            result.makespans["hslb"][i] <= result.makespans["uniform"][i]
        )
    # At the largest size the diverse-task gap vs ideal DLB is still there.
    assert result.makespans["hslb"][-1] < result.makespans["dlb-best"][-1] * 1.01


def test_fmo2_pipeline_prediction(benchmark, save_report):
    result = benchmark.pedantic(run_fmo_pipeline, rounds=1, iterations=1)
    save_report("fmo_pipeline", result.render())
    assert result.prediction_error < 0.15
    assert result.min_r_squared > 0.99


def test_fmo4_two_phase(benchmark, save_report):
    result = benchmark.pedantic(run_fmo_two_phase, rounds=1, iterations=1)
    save_report("fmo_two_phase", result.render())
    assert result.hslb_always_better()
    # The SCC-iterated monomer phase dominates the run, as in real FMO2.
    for m, t in zip(result.hslb_monomer, result.hslb_totals):
        assert m > 0.5 * t
    # Totals improve with machine size.
    assert result.hslb_totals[-1] < result.hslb_totals[0]


def test_fmo5_diversity_sweep(benchmark, save_report):
    """§I: DLB is inappropriate for 'a few large tasks of diverse size' —
    locate the crossover by sweeping the size spread."""
    result = benchmark.pedantic(run_fmo_diversity_sweep, rounds=1, iterations=1)
    save_report("fmo_diversity", result.render())
    adv = result.advantages()
    # HSLB never loses, and its edge grows as tasks diversify.  (A residual
    # ~10% advantage persists even on near-uniform tasks: HSLB sizes groups
    # at node granularity while equal-group DLB cannot.)
    assert all(a > -0.02 for a in adv)
    assert adv[-1] > adv[0]
    assert max(adv[1:]) > 0.15      # clear win once sizes diversify
    # Diversity values actually sweep upward.
    assert result.diversities[-1] > result.diversities[0] + 0.2


def test_fmo3_speedup_curve(benchmark, save_report):
    result = benchmark.pedantic(run_fmo_speedup, rounds=1, iterations=1)
    save_report("fmo_speedup", result.render())
    assert result.monotone()
    speedups = result.speedups()
    # Strong scaling early, Amdahl flattening late — the §I narrative.
    assert speedups[1] > 1.5
    assert speedups[-1] > 6.0
    gain_last = speedups[-1] / speedups[-2]
    gain_first = speedups[1] / speedups[0]
    assert gain_last < gain_first  # diminishing returns
