"""Fault-injection benchmarks F1/F2: the degradation guarantees, enforced.

F1 is the headline robustness claim: after losing a whole node group
mid-run, HSLB's static re-plan stays within 25% of the fault-free makespan
while doing nothing degrades strictly worse — and the idealized
work-stealing baseline (perfect knowledge of actual durations) buys only a
sliver over the static re-plan, mirroring the paper's static-vs-dynamic
argument.
"""

from repro.experiments.faults import run_fault_degradation, run_fault_pipeline

# Granular enough that one fragment is a small slice of the makespan —
# the regime HSLB targets (§IV: many fragments per group).
F1_KWARGS = dict(
    n_fragments=48, n_groups=6, total_nodes=96, fractions=(0.25, 0.5, 0.75)
)


def test_f1_makespan_degradation(benchmark, save_report):
    result = benchmark.pedantic(
        run_fault_degradation, kwargs=F1_KWARGS, rounds=1, iterations=1
    )
    save_report("faults_degradation", result.render())
    for i, frac in enumerate(result.fractions):
        replan = result.degradation["replan"][i]
        none = result.degradation["none"][i]
        # Static re-plan keeps the run within 25% of fault-free...
        assert replan < 0.25, f"replan degraded {replan:.1%} at crash {frac}"
        # ...no recovery is strictly worse at every crash point...
        assert none > replan, f"none ({none:.1%}) not worse at crash {frac}"
        # ...and neither can beat the fault-free run.
        assert replan >= 0.0 and none >= 0.0
    # Perfect-knowledge work stealing is an upper bound on any dynamic
    # runtime; static re-plan concedes at most a few points to it.
    worst_gap = max(
        r - d
        for r, d in zip(result.degradation["replan"], result.degradation["dynamic"])
    )
    assert worst_gap < 0.10


def test_f2_pipeline_survives_faults(benchmark, save_report):
    result = benchmark.pedantic(run_fault_pipeline, rounds=1, iterations=1)
    save_report("faults_pipeline", result.render())
    # Both flagship scenarios complete end to end under a 10% benchmark
    # failure rate plus one mid-run crash, and record their solver tier.
    assert [r[1] for r in result.rows] == ["yes", "yes"]
    for tier in result.tiers.values():
        assert tier in ("oa", "nlpbb", "greedy")
