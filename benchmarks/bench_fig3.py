"""Figure 3 benchmark: 1/8-degree human vs HSLB-predicted vs HSLB-actual."""

import pytest

from repro.experiments.fig3 import run_fig3


def test_fig3_eighth_degree_summary(benchmark, save_report):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    save_report("fig3", result.render())
    series = result.series()

    # Constrained 8192: HSLB beats the human guess (paper: ~8%).
    assert series["actual"]["eighth-8192"] < series["human"]["eighth-8192"]
    # Constrained 32768: modest gain (paper: 1645 -> 1612).
    assert (
        series["actual"]["eighth-32768"]
        < series["human"]["eighth-32768"] * 1.02
    )
    # Unconstrained 32768: the big one (paper: 1645 -> 1256, ~24%).
    gain = 1.0 - (
        series["actual"]["eighth-32768-freeocn"] / series["human"]["eighth-32768"]
    )
    assert gain > 0.10
    # Predictions track reality within ~12% everywhere (paper's worst case
    # is the unconstrained-ocean fit miss).
    for key, actual in series["actual"].items():
        assert abs(series["predicted"][key] - actual) / actual < 0.15, key
