"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures; its rendered
output is both printed (visible with ``pytest -s``) and persisted under
``benchmarks/out/`` so results survive the run.
"""

from __future__ import annotations

import json
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_report(report_dir):
    """Persist a rendered experiment table under benchmarks/out/<name>.txt."""

    def _save(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture
def save_json(report_dir):
    """Persist a machine-readable baseline as benchmarks/out/BENCH_<name>.json.

    Counterpart of ``save_report``: the text file is for humans, the JSON
    file is the comparison baseline CI and perf-tracking scripts diff
    against run-to-run.
    """

    def _save(name: str, payload: dict) -> pathlib.Path:
        path = report_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[baseline saved to {path}]")
        return path

    return _save
