"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures; its rendered
output is both printed (visible with ``pytest -s``) and persisted under
``benchmarks/out/`` so results survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_report(report_dir):
    """Persist a rendered experiment table under benchmarks/out/<name>.txt."""

    def _save(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
