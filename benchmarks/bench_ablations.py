"""Ablation benchmarks A1-A4 (see DESIGN.md).

Each quantifies one of the paper's design-choice claims:

* A1 — §III-D: min-max is the objective of choice;
* A2 — §III-E: SOS branching beats binary branching on the paper-literal
  value-encoded discrete sets;
* A3 — §III-A: the Tsync tolerance can only hurt the optimum;
* A4 — §III-E: the full-machine MINLP solves fast ("less than 60 seconds"
  at 40,960 nodes in the paper; this library is far under).
"""

from repro.core.objectives import Objective
from repro.experiments.ablations import (
    run_objective_ablation,
    run_solver_scaling,
    run_sos_branching_ablation,
    run_tsync_ablation,
)


def test_a1_objective_functions(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_objective_ablation(n_fragments=8, total_nodes=128),
        rounds=1,
        iterations=1,
    )
    save_report("ablation_objectives", result.render())
    mm = result.makespans[Objective.MIN_MAX]
    # min-max wins (paper: min-max slightly better than max-min; min-sum
    # "performs much worse" as a balance objective).
    assert mm <= result.makespans[Objective.MAX_MIN] * 1.02
    assert mm <= result.makespans[Objective.MIN_SUM] * 1.02
    # min-sum optimizes the sum — it must win on that score.
    assert (
        result.scores[Objective.MIN_SUM]["min-sum"]
        <= result.scores[Objective.MIN_MAX]["min-sum"] * 1.05
    )


def test_a2_sos_branching(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: run_sos_branching_ablation(time_limit=120.0),
        rounds=1,
        iterations=1,
    )
    save_report("ablation_sos", result.render())
    assert result.objectives_agree
    # SOS branching explores a much smaller tree on value-encoded sets.
    # (The paper quotes two orders of magnitude in wall time on its 2012
    # stack; tree size is the machine-independent form of the claim.)
    assert result.node_ratio > 3.0
    assert result.with_sos_nodes < result.without_sos_nodes


def test_a3_tsync_tolerance(benchmark, save_report):
    result = benchmark.pedantic(run_tsync_ablation, rounds=1, iterations=1)
    save_report("ablation_tsync", result.render())
    # "additional constraints, like Tsync, may actually result in reduced
    # performance": tightening never improves the optimum.
    assert result.monotone_nonimproving()
    assert result.predicted_totals[-1] >= result.predicted_totals[0]


def test_a4_solver_scaling(benchmark, save_report):
    result = benchmark.pedantic(run_solver_scaling, rounds=1, iterations=1)
    save_report("solver_scaling", result.render())
    # Paper: "< 60 s on one core" at 40,960 nodes.  Enforce the same bound.
    assert result.max_solve_seconds() < 60.0
    assert result.node_counts[-1] == 40960
