# Convenience targets for the HSLB reproduction.

PYTHON ?= python

.PHONY: install test bench faults-bench examples reports clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fault-injection degradation curves; writes
# benchmarks/out/faults_degradation.txt and faults_pipeline.txt.
faults-bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_faults.py --benchmark-only

# Regenerate every paper table/figure and print the saved reports.
reports: bench
	@for f in benchmarks/out/*.txt; do echo "=== $$f"; cat $$f; echo; done

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/fmo_fragments.py
	$(PYTHON) examples/custom_application.py
	$(PYTHON) examples/solver_tour.py
	$(PYTHON) examples/job_size_prediction.py
	$(PYTHON) examples/cesm_high_resolution.py
	$(PYTHON) examples/fault_injection.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
