# Convenience targets for the HSLB reproduction.
#
# Every target that imports the library sets PYTHONPATH=src, so targets work
# uniformly from a bare checkout with no install step.

PYTHON ?= python

.PHONY: install test bench solver-bench bench-check dynlb-bench faults-bench service-bench asyncserve-bench obs-bench chaos examples reports clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Solver hot-path micro-benchmarks (simplex, warm restarts, B&B node
# throughput, OA masters); updates benchmarks/out/BENCH_solver_micro.json.
solver-bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_solver_micro.py --benchmark-only

# Regression gate: run the solver micro-benchmarks to a scratch file and
# fail if any gated (simplex/LP) mean regressed >2x vs. the committed
# baseline. CI runs this on every push.  The scratch *.fresh.json is
# removed after a passing gate so it cannot go stale on disk; pass
# --update to check_bench.py instead to promote it into the baseline.
bench-check:
	HSLB_BENCH_OUT=benchmarks/out/BENCH_solver_micro.fresh.json \
		PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_solver_micro.py --benchmark-only -q
	$(PYTHON) benchmarks/check_bench.py --fresh benchmarks/out/BENCH_solver_micro.fresh.json
	rm -f benchmarks/out/BENCH_solver_micro.fresh.json

# Online-rebalancing benchmark + regression gate: run the strategy
# comparison to a scratch file and diff the deterministic simulated totals
# (dynlb_total_*) against the committed benchmarks/out/BENCH_dynlb.json.
# The totals are bit-identical under the keyed RNG, so the gate runs at a
# tight 1.25x threshold.
dynlb-bench:
	HSLB_BENCH_DYNLB_OUT=benchmarks/out/BENCH_dynlb.fresh.json \
		PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_dynlb.py --benchmark-only -q
	$(PYTHON) benchmarks/check_bench.py --fresh benchmarks/out/BENCH_dynlb.fresh.json \
		--baseline benchmarks/out/BENCH_dynlb.json --threshold 1.25
	rm -f benchmarks/out/BENCH_dynlb.fresh.json

# Fault-injection degradation curves; writes
# benchmarks/out/faults_degradation.txt and faults_pipeline.txt.
faults-bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_faults.py --benchmark-only

# Allocation-service throughput/warm-start benchmark + regression gate:
# Zipf-mix records (throughput, hit rate, warm-start speedup, replay
# mismatches) diffed against the committed benchmarks/out/BENCH_service.json.
service-bench:
	HSLB_BENCH_SERVICE_OUT=benchmarks/out/BENCH_service.fresh.json \
		PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_service.py --benchmark-only -q
	$(PYTHON) benchmarks/check_bench.py --fresh benchmarks/out/BENCH_service.fresh.json \
		--baseline benchmarks/out/BENCH_service.json
	rm -f benchmarks/out/BENCH_service.fresh.json

# Async serving tier benchmark + regression gate: trace-driven Zipf /
# diurnal / flash-crowd replay against the sharded coalescing tier vs. the
# single-process batch baseline; gates throughput/accounting records in
# benchmarks/out/BENCH_asyncserve.json (lost requests pinned at 0).
asyncserve-bench:
	HSLB_BENCH_ASYNCSERVE_OUT=benchmarks/out/BENCH_asyncserve.fresh.json \
		PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_asyncserve.py --benchmark-only -q
	$(PYTHON) benchmarks/check_bench.py --fresh benchmarks/out/BENCH_asyncserve.fresh.json \
		--baseline benchmarks/out/BENCH_asyncserve.json
	rm -f benchmarks/out/BENCH_asyncserve.fresh.json

# Seeded chaos suite plus a 250-request soak under injected faults; fails
# if any request is lost. Writes benchmarks/out/chaos_metrics.json.
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/service/test_chaos.py tests/faults/test_chaos_plan.py -q
	PYTHONPATH=src $(PYTHON) -m repro chaos --requests 250 --deadline 10 \
		--chaos-seed 20260808 --metrics-out benchmarks/out/chaos_metrics.json

# Tracing overhead (off / on / on + export); writes
# benchmarks/out/obs_overhead.txt.
obs-bench:
	HSLB_BENCH_OBS_OUT=benchmarks/out/BENCH_obs.fresh.json \
		PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_obs.py --benchmark-only -q
	$(PYTHON) benchmarks/check_bench.py --fresh benchmarks/out/BENCH_obs.fresh.json \
		--baseline benchmarks/out/BENCH_obs.json
	rm -f benchmarks/out/BENCH_obs.fresh.json

# Regenerate every paper table/figure and print the saved reports.
reports: bench
	@for f in benchmarks/out/*.txt; do echo "=== $$f"; cat $$f; echo; done

examples:
	PYTHONPATH=src $(PYTHON) examples/quickstart.py
	PYTHONPATH=src $(PYTHON) examples/fmo_fragments.py
	PYTHONPATH=src $(PYTHON) examples/custom_application.py
	PYTHONPATH=src $(PYTHON) examples/solver_tour.py
	PYTHONPATH=src $(PYTHON) examples/job_size_prediction.py
	PYTHONPATH=src $(PYTHON) examples/cesm_high_resolution.py
	PYTHONPATH=src $(PYTHON) examples/fault_injection.py
	PYTHONPATH=src $(PYTHON) examples/allocation_service.py
	PYTHONPATH=src $(PYTHON) examples/resilient_service.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
