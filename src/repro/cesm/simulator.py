"""The machine: a coupled-CESM execution simulator.

Substitutes for CESM1.1.1 runs on Intrepid (Blue Gene/P).  HSLB only ever
observes (component, node count) -> seconds; the simulator emits exactly that
observable, from ground-truth curves calibrated to Table III, with
log-normal run-to-run jitter and deterministic decomposition penalties
(see :mod:`repro.cesm.components`).

Timing semantics follow §III-C: per-component timers include
intra-component communication and internal imbalance but exclude coupler
exchange time, which is why the simulator reports the coupler separately in
metadata and keeps it out of the component times used for fitting.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.cesm.components import COMPONENTS
from repro.cesm.grids import CESMConfiguration
from repro.cesm.layouts import MINOR_HOSTS, Layout, footprint, layout_total_time
from repro.core.spec import Allocation, ExecutionResult
from repro.faults.plan import FaultPlan, NodeCrashError
from repro.obs.trace import span
from repro.perf.data import BenchmarkSuite, ComponentBenchmark, ScalingObservation
from repro.util.rng import spawn_rng


class CESMSimulator:
    """Benchmarkable, executable stand-in for CESM on a fixed machine.

    ``include_minor`` turns on the fine-tuning extension: the river model
    and the coupler (riding the land/atmosphere nodes) are timed, reported
    among the component times, and included in the makespan.  In the default
    mode — the paper's Table III setting — they are still simulated but only
    surface in the run metadata, mirroring how the paper's timers excluded
    them.
    """

    def __init__(
        self,
        config: CESMConfiguration,
        *,
        layout: Layout = Layout.HYBRID,
        include_minor: bool = False,
        outlier_prob: float = 0.0,
        outlier_scale: float = 3.0,
        tasking: "Mapping[str, object] | None" = None,
        ice_policy: object | None = None,
        faults: "FaultPlan | None" = None,
    ) -> None:
        if include_minor and not config.minor_ground_truth:
            raise ValueError(
                f"configuration {config.name!r} has no minor-component calibration"
            )
        if not (0.0 <= outlier_prob < 1.0):
            raise ValueError(f"outlier_prob must be in [0, 1), got {outlier_prob}")
        if outlier_scale < 1.0:
            raise ValueError(f"outlier_scale must be >= 1, got {outlier_scale}")
        self.config = config
        self.layout = layout
        self.include_minor = include_minor
        #: Failure injection: each component timing independently becomes an
        #: outlier (slowed by up to ``outlier_scale``x) with this probability
        #: — a node hiccup, OS jitter burst, or contended filesystem during
        #: the gather campaign.  §IV calls the gathered data "the weakest
        #: part of the HSLB algorithm"; this knob lets tests quantify the
        #: damage and the robust-fitting mitigation.
        self.outlier_prob = float(outlier_prob)
        self.outlier_scale = float(outlier_scale)
        #: Optional per-component MPI/OpenMP policies (see
        #: :mod:`repro.cesm.tasking`).  Components absent from the mapping
        #: keep the calibration default (1 task x 4 threads).
        self._tasking_multiplier: dict[str, float] = {}
        if tasking:
            from repro.cesm.tasking import DEFAULT_PROFILES, TaskingPolicy

            for comp, policy in tasking.items():
                if comp not in self.config.ground_truth:
                    raise KeyError(f"tasking policy for unknown component {comp!r}")
                if not isinstance(policy, TaskingPolicy):
                    raise TypeError(f"{comp}: expected a TaskingPolicy")
                profile = DEFAULT_PROFILES.get(comp)
                if profile is None:
                    raise KeyError(f"no threading profile for component {comp!r}")
                self._tasking_multiplier[comp] = profile.time_multiplier(policy)
        #: Mechanistic CICE decomposition handling (see
        #: :mod:`repro.cesm.ice_decomp`).  ``None`` keeps the calibrated
        #: statistical ice noise; ``"default"`` applies the CESM rule-of-
        #: thumb decomposition's true multiplier; a trained
        #: :class:`DecompositionSelector` applies its learned choice.
        #: Optional deterministic fault injection (:mod:`repro.faults`):
        #: benchmark runs that fail/time out/straggle during gather, and one
        #: mid-run node-group crash during a production execute.  ``None``
        #: keeps the simulator bit-identical to the fault-free baseline.
        if faults is not None and not isinstance(faults, FaultPlan):
            raise TypeError("faults must be a FaultPlan or None")
        if faults is not None and faults.crash_component is not None:
            if faults.crash_component not in COMPONENTS:
                raise ValueError(
                    f"crash_component {faults.crash_component!r} is not a "
                    f"CESM component {COMPONENTS}"
                )
        self.faults = faults
        self._crashed = False
        self._ice_policy = None
        if ice_policy is not None:
            from repro.cesm.ice_decomp import DecompositionSelector

            if ice_policy != "default" and not isinstance(
                ice_policy, DecompositionSelector
            ):
                raise TypeError(
                    "ice_policy must be None, 'default', or a DecompositionSelector"
                )
            self._ice_policy = ice_policy

    # -- low-level observables ----------------------------------------------

    def _ground_truth(self, component: str):
        if component in self.config.ground_truth:
            return self.config.ground_truth[component]
        if component in self.config.minor_ground_truth:
            return self.config.minor_ground_truth[component]
        raise KeyError(f"unknown component {component!r}")

    def component_time(
        self, component: str, nodes: int, rng: np.random.Generator
    ) -> float:
        """One observed timing of ``component`` on ``nodes`` nodes."""
        truth = self._ground_truth(component)
        if nodes < 1:
            raise ValueError(f"{component}: nodes must be >= 1, got {nodes}")
        if component == "ice" and self._ice_policy is not None:
            # Mechanistic decomposition model replaces the statistical noise:
            # the base curve times the chosen decomposition's multiplier,
            # plus ordinary 2% run-to-run jitter.
            from repro.cesm.ice_decomp import default_decomposition, true_multiplier

            decomp = (
                default_decomposition(int(nodes))
                if self._ice_policy == "default"
                else self._ice_policy.best(int(nodes))
            )
            seconds = float(truth.model.time(int(nodes)))
            seconds *= true_multiplier(decomp, int(nodes))
            seconds *= float(np.exp(rng.normal(0.0, 0.02)))
        else:
            seconds = truth.sample_time(int(nodes), rng)
        seconds *= self._tasking_multiplier.get(component, 1.0)
        if self.outlier_prob and rng.random() < self.outlier_prob:
            seconds *= rng.uniform(1.5, self.outlier_scale)
        return seconds

    def true_component_time(self, component: str, nodes: int) -> float:
        """Noise-free ground truth (test oracle; HSLB itself never sees this)."""
        return self._ground_truth(component).true_time(int(nodes))

    def _minor_components(self) -> tuple[str, ...]:
        return tuple(m for m in MINOR_HOSTS if m in self.config.minor_ground_truth)

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        allocation: Allocation,
        rng: np.random.Generator,
        *,
        allow_crash: bool = True,
    ) -> ExecutionResult:
        """Run the coupled model once at ``allocation`` under the layout.

        With a fault plan carrying ``crash_component``, the first production
        run (``allow_crash=True``; gather runs pass False) loses the node
        group hosting that component mid-run and raises
        :class:`NodeCrashError` — the nodes stay dead for the rest of the
        simulator's life, so the recovery re-run proceeds on the survivors.
        """
        self.validate_allocation(allocation)
        if (
            allow_crash
            and self.faults is not None
            and self.faults.crash_component is not None
            and not self._crashed
        ):
            self._crashed = True
            comp = self.faults.crash_component
            raise NodeCrashError(
                component=comp,
                lost_nodes=allocation[comp],
                fraction=self.faults.crash_fraction,
            )
        minors = self._minor_components()
        order = COMPONENTS + minors
        streams = dict(zip(order, spawn_rng(rng, len(order))))
        with span("cesm.execute", layout=self.layout.name) as sp:
            times = {
                comp: self.component_time(comp, allocation[comp], streams[comp])
                for comp in COMPONENTS
            }
            minor_times = {
                comp: self.component_time(
                    comp, allocation[MINOR_HOSTS[comp]], streams[comp]
                )
                for comp in minors
            }
            metadata = {
                "layout": self.layout.name,
                "footprint_nodes": footprint(
                    self.layout, allocation, self.config.machine_nodes
                ),
                "configuration": self.config.name,
            }
            if self.include_minor:
                times.update(minor_times)
            else:
                # Excluded from the balanced model, visible in the run log only
                # (§II; also why "the HSLB reported time for the whole run may
                # differ slightly from the one found in the CESM output files").
                metadata.update({f"{k}_time": v for k, v in minor_times.items()})
            total = layout_total_time(self.layout, times)
            sp.set_tag("total_seconds", round(total, 6))
        return ExecutionResult(
            component_times=times, total_time=total, metadata=metadata
        )

    def validate_allocation(self, allocation: Allocation) -> None:
        """Reject allocations the machine or the layout cannot host."""
        for comp in COMPONENTS:
            if comp not in allocation.nodes:
                raise ValueError(f"allocation missing component {comp!r}")
            lo = self.config.component_min_nodes(comp)
            if allocation[comp] < lo:
                raise ValueError(
                    f"{comp}: {allocation[comp]} nodes below minimum {lo}"
                )
        used = footprint(self.layout, allocation, self.config.machine_nodes)
        if used > self.config.machine_nodes:
            raise ValueError(
                f"allocation needs {used} nodes; machine has {self.config.machine_nodes}"
            )
        if self.layout is Layout.HYBRID:
            if allocation["ice"] + allocation["lnd"] > allocation["atm"]:
                raise ValueError(
                    "layout 1 requires ice+lnd to fit inside the atmosphere group"
                )

    # -- benchmarking (gather step) ----------------------------------------

    def default_split(self, total_nodes: int) -> Allocation:
        """The 'typical setup' split used for benchmark runs (§II).

        Ocean gets roughly a quarter of the machine (snapped to its
        admissible set), the atmosphere the rest (snapped likewise), and ice
        shares the atmosphere group with land.
        """
        if total_nodes < 4:
            raise ValueError(f"total_nodes too small to split: {total_nodes}")
        ocn_values = self.config.ocean_values_upto(max(2, int(0.45 * total_nodes)))
        if not ocn_values:
            raise ValueError(
                f"no admissible ocean count fits in {total_nodes} nodes"
            )
        target_ocn = 0.25 * total_nodes
        ocn = max(
            (v for v in ocn_values if v <= target_ocn),
            default=ocn_values[0],
        )
        atm_cap = total_nodes - ocn
        atm = self.config.atm_allowed.below(atm_cap)
        ice = max(self.config.component_min_nodes("ice"), int(0.55 * atm))
        lnd = max(self.config.component_min_nodes("lnd"), atm - ice)
        if ice + lnd > atm:  # minimums collided; shrink ice
            ice = max(self.config.component_min_nodes("ice"), atm - lnd)
        return Allocation({"lnd": lnd, "ice": ice, "atm": atm, "ocn": ocn})

    def ocean_heavy_split(self, total_nodes: int) -> Allocation:
        """A bracket-the-range probe: ocean near its largest usable count.

        §III-C recommends benchmarking "on the greatest number of nodes
        possible" so predictions interpolate instead of extrapolate; the
        default split keeps the ocean small, so the gather campaign adds one
        run with the ocean pushed high at the largest machine size.
        """
        ocn_values = self.config.ocean_values_upto(
            max(2, int(0.62 * total_nodes))
        )
        if not ocn_values:
            raise ValueError(f"no admissible ocean count fits in {total_nodes}")
        ocn = ocn_values[-1]
        atm_cap = total_nodes - ocn
        atm = self.config.atm_allowed.below(atm_cap)
        ice = max(self.config.component_min_nodes("ice"), int(0.55 * atm))
        lnd = max(self.config.component_min_nodes("lnd"), atm - ice)
        if ice + lnd > atm:
            ice = max(self.config.component_min_nodes("ice"), atm - lnd)
        return Allocation({"lnd": lnd, "ice": ice, "atm": atm, "ocn": ocn})

    def benchmark(
        self,
        node_counts: Sequence[int],
        rng: np.random.Generator,
        *,
        runs_per_count: int = 1,
        probe_extremes: bool = True,
        attempt: int = 0,
    ) -> BenchmarkSuite:
        """Step-1 gather: a 5-day-run campaign at each total node count.

        With ``probe_extremes`` (default), the largest machine size gets a
        second run with an ocean-heavy split so the ocean curve is sampled
        across its full admissible range (§III-C's bracketing advice).

        A fault plan can kill the run at a node count outright (raising
        :class:`repro.faults.BenchmarkRunError`; ``attempt`` numbers the
        retry so the plan's draws stay deterministic) or inflate individual
        component timings — stragglers are delivered, but flagged on the
        observation so the fit step can prune them.
        """
        if runs_per_count < 1:
            raise ValueError("runs_per_count must be >= 1")
        suite = BenchmarkSuite()
        node_counts = list(node_counts)
        with span(
            "cesm.benchmark", counts=len(node_counts), runs=runs_per_count
        ):
            self._benchmark_into(
                suite, node_counts, rng,
                runs_per_count=runs_per_count,
                probe_extremes=probe_extremes,
                attempt=attempt,
            )
        return suite

    def _benchmark_into(
        self,
        suite: BenchmarkSuite,
        node_counts: list[int],
        rng: np.random.Generator,
        *,
        runs_per_count: int,
        probe_extremes: bool,
        attempt: int,
    ) -> None:
        biggest = max(node_counts) if node_counts else 0
        for total in node_counts:
            if self.faults is not None:
                self.faults.check_benchmark("cesm", int(total), attempt)
            allocations = [self.default_split(int(total))]
            if probe_extremes and total == biggest:
                probe = self.ocean_heavy_split(int(total))
                if probe.nodes != allocations[0].nodes:
                    allocations.append(probe)
            for allocation in allocations:
                for _ in range(runs_per_count):
                    result = self.execute(allocation, rng, allow_crash=False)
                    for comp, seconds in result.component_times.items():
                        host = MINOR_HOSTS.get(comp, comp)
                        status = "ok"
                        if self.faults is not None:
                            mult = self.faults.straggler_multiplier(
                                "cesm", comp, int(total), attempt
                            )
                            if mult > 1.0:
                                seconds *= mult
                                status = "straggler"
                        suite.add(
                            ComponentBenchmark(
                                comp,
                                [
                                    ScalingObservation(
                                        allocation[host], seconds, status=status
                                    )
                                ],
                            )
                        )
