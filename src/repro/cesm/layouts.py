"""The Table I mathematical models: CESM component layouts 1–3.

Layout semantics (Figure 1):

1. **HYBRID** (panel 1, the production layout): ocean runs concurrently with
   everything else; ice and land run concurrently with each other on the
   atmosphere's processors, then the atmosphere runs after both finish.
   Makespan: ``max(max(ice, lnd) + atm, ocn)``; node footprint
   ``n_atm + n_ocn`` with ``n_ice + n_lnd <= n_atm``.

2. **SEQUENTIAL_GROUP** (panel 2): ice, land, atmosphere run back-to-back on
   one processor group; ocean concurrent on the rest.  Makespan
   ``max(ice + lnd + atm, ocn)``; each of ice/lnd/atm may use up to
   ``N - n_ocn`` nodes.

3. **FULLY_SEQUENTIAL** (panel 3): everything back-to-back across all
   processors.  Makespan ``ice + lnd + atm + ocn``; each component may use up
   to ``N`` nodes.

The ``Tsync`` tolerance of Table I lines 18–19 couples the ice and land
times: ``|T_l(n_l) - T_i(n_i)| <= Tsync``.  This is a *difference of convex*
functions, i.e. genuinely nonconvex — outer approximation would generate
invalid cuts for it.  The formulation states it exactly, and applications
flag such models (``requires_nonconvex_solver``) so the HSLB pipeline
automatically routes them to NLP-based branch-and-bound.  With
``tsync=None`` (the default, and the configuration every Table III number
uses) the model stays convex and OA applies.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping

from repro.cesm.components import COMPONENTS
from repro.cesm.grids import CESMConfiguration
from repro.core.builder import AllocationModelBuilder
from repro.core.spec import Allocation
from repro.minlp.problem import Problem
from repro.minlp.solution import Solution
from repro.perf.model import PerformanceModel


class Layout(enum.Enum):
    """The three component layouts of Figure 1."""

    HYBRID = 1
    SEQUENTIAL_GROUP = 2
    FULLY_SEQUENTIAL = 3


#: Which balanced component hosts each minor component's nodes (§II: "The
#: river model is typically run on the same processors as the CLM model and
#: the coupler is run on the same processors as the atmosphere").
MINOR_HOSTS: Mapping[str, str] = {"rtm": "lnd", "cpl": "atm"}


def layout_total_time(layout: Layout, times: Mapping[str, float]) -> float:
    """Makespan of realized component ``times`` under ``layout``.

    This is the execution-side mirror of the Table I objective rows (13, 21,
    26) — the simulator and the manual baseline both use it.  When the
    fine-tuning extension supplies ``rtm``/``cpl`` entries, they run
    sequentially on their host component's nodes (rtm after lnd, cpl after
    atm) and extend the corresponding side of the makespan.
    """
    ice = times["ice"]
    lnd = times["lnd"] + times.get("rtm", 0.0)
    atm = times["atm"] + times.get("cpl", 0.0)
    ocn = times["ocn"]
    if layout is Layout.HYBRID:
        return max(max(ice, lnd) + atm, ocn)
    if layout is Layout.SEQUENTIAL_GROUP:
        return max(ice + lnd + atm, ocn)
    return ice + lnd + atm + ocn


def formulate_layout(
    models: Mapping[str, PerformanceModel],
    total_nodes: int,
    config: CESMConfiguration,
    *,
    layout: Layout = Layout.HYBRID,
    tsync: float | None = None,
    sos_encoding: str | Mapping[str, str] = "run",
    minor_models: Mapping[str, PerformanceModel] | None = None,
) -> Problem:
    """Build the Table I MINLP for ``layout`` over fitted ``models``.

    ``tsync`` enables the ice/land synchronization tolerance (seconds);
    ``None`` disables it, matching the paper's observation that the extra
    constraint "may actually result in reduced performance".

    ``sos_encoding`` picks the discrete-set formulation: ``"run"`` (the
    compressed default) or ``"value"`` (the paper-literal one-binary-per-
    count of Table I lines 29–31; used by the SOS-branching ablation).  A
    per-component mapping like ``{"ocn": "value"}`` is also accepted.

    ``minor_models`` enables the fine-tuning extension: fitted RTM/CPL7
    curves, evaluated at their host component's node count (rtm on lnd's
    nodes, cpl on atm's), extend the makespan expressions.
    """
    missing = set(COMPONENTS) - set(models)
    if missing:
        raise ValueError(f"missing fitted models for {sorted(missing)}")
    if total_nodes < 2:
        raise ValueError(f"total_nodes must be >= 2, got {total_nodes}")
    if tsync is not None and tsync < 0:
        raise ValueError(f"tsync must be nonnegative, got {tsync}")

    b = AllocationModelBuilder(f"cesm-{config.name}-layout{layout.value}", total_nodes)
    n = {}
    for comp in COMPONENTS:
        allowed = None
        if comp == "atm":
            allowed = config.atm_allowed
        elif comp == "ocn":
            allowed = config.ocean_allowed
        n[comp] = b.add_component(
            comp,
            models[comp],
            min_nodes=config.component_min_nodes(comp),
            max_nodes=total_nodes,
            allowed=allowed,
            encoding=(
                sos_encoding
                if isinstance(sos_encoding, str)
                else sos_encoding.get(comp, "run")
            ),
        )

    t_ub = b.time_upper_bound()
    m = b.model
    T = m.var("T", lb=0.0, ub=t_ub)
    t_ice = b.time_expr("ice")
    t_lnd = b.time_expr("lnd")
    t_atm = b.time_expr("atm")
    t_ocn = b.time_expr("ocn")
    if minor_models:
        unknown = set(minor_models) - set(MINOR_HOSTS)
        if unknown:
            raise ValueError(f"unknown minor components {sorted(unknown)}")
        # The minors ride their hosts' nodes sequentially.
        if "rtm" in minor_models:
            t_lnd = t_lnd + minor_models["rtm"].expression(n["lnd"])
        if "cpl" in minor_models:
            t_atm = t_atm + minor_models["cpl"].expression(n["atm"])

    if layout is Layout.HYBRID:
        T_icelnd = m.var("T_icelnd", lb=0.0, ub=t_ub)
        m.add(T_icelnd >= t_ice, "icelnd_ge_ice")          # Table I line 15
        m.add(T_icelnd >= t_lnd, "icelnd_ge_lnd")          # line 16
        if tsync is not None:
            # Lines 18-19, stated exactly.  Nonconvex: solve with NLP-BB.
            m.add(t_lnd - t_ice <= tsync, "tsync_upper")
            m.add(t_ice - t_lnd <= tsync, "tsync_lower")
        m.add(T >= T_icelnd + t_atm, "makespan_atm_side")   # line 17
        m.add(T >= t_ocn, "makespan_ocn_side")              # line 17b
        m.add(n["atm"] + n["ocn"] <= total_nodes, "nodes_atm_ocn")  # line 20
        m.add(n["ice"] + n["lnd"] <= n["atm"], "nodes_ice_lnd")     # line 21
    elif layout is Layout.SEQUENTIAL_GROUP:
        m.add(T >= t_ice + t_lnd + t_atm, "makespan_group")  # line 22
        m.add(T >= t_ocn, "makespan_ocn_side")               # line 23
        for comp in ("lnd", "ice", "atm"):                   # lines 24-26(paper 23-25)
            m.add(n[comp] + n["ocn"] <= total_nodes, f"nodes_{comp}")
    else:  # FULLY_SEQUENTIAL
        m.add(T >= t_ice + t_lnd + t_atm + t_ocn, "makespan_all")  # line 27
        # Each component may span the whole machine (line 28); already
        # enforced by the variable upper bounds set to total_nodes.

    m.minimize(T)
    return b.build()


def allocation_from_solution(solution: Solution) -> Allocation:
    """Read the integer node allocation back out of a MINLP solution."""
    nodes = {}
    for comp in COMPONENTS:
        key = f"n_{comp}"
        if key not in solution.values:
            raise KeyError(f"solution has no variable {key!r}")
        nodes[comp] = int(round(solution.values[key]))
    return Allocation(nodes)


def footprint(layout: Layout, allocation: Allocation, total_nodes: int) -> int:
    """Machine nodes actually occupied by ``allocation`` under ``layout``."""
    if layout is Layout.HYBRID:
        return allocation["atm"] + allocation["ocn"]
    if layout is Layout.SEQUENTIAL_GROUP:
        group = max(allocation["ice"], allocation["lnd"], allocation["atm"])
        return group + allocation["ocn"]
    return max(allocation[c] for c in COMPONENTS)
