"""CESM component registry and calibrated ground-truth scaling behaviour.

CESM1.1.1 couples six model components; following the paper (§II) we balance
the four that dominate runtime — the runoff (RTM), land-ice (CISM), and
coupler (CPL7) contributions are small and excluded from the models, exactly
as in the paper.

=========  =======================================  ===========================
short      full component                           origin
=========  =======================================  ===========================
``atm``    CAM   — Community Atmosphere Model       NCAR
``ocn``    POP   — Parallel Ocean Program           LANL
``ice``    CICE  — Community Ice Code (sea ice)     LANL
``lnd``    CLM   — Community Land Model             NCAR
=========  =======================================  ===========================

Ground truth
------------
Each component's "machine" behaviour is a :class:`PerformanceModel` whose
parameters were reverse-fitted from the node-count/seconds pairs published
in Table III (derivations in DESIGN.md), plus two realism knobs:

* ``noise`` — multiplicative run-to-run jitter (log-normal sigma).  Sea ice
  gets the largest value: the paper reports CICE's seven decomposition
  strategies made its timings noisy enough to motivate a separate
  machine-learning paper [10].
* ``decomposition_sensitivity`` — an extra deterministic slowdown applied at
  node counts *outside* a component's known-good decomposition list.  This
  reproduces the paper's 1/8° ocean finding: the fit predicted 1129 s at
  9812 nodes but the actual run at 11880 nodes took 1256 s because "the
  ocean scaling curve was not captured well during our fit step".
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.perf.model import PerformanceModel
from repro.util.validation import check_positive

#: Balanced components, in the paper's Table III row order.
COMPONENTS: tuple[str, ...] = ("lnd", "ice", "atm", "ocn")

#: Excluded components (small contributions; kept for documentation and the
#: simulator's optional fine-grained accounting).
EXCLUDED_COMPONENTS: tuple[str, ...] = ("rtm", "glc", "cpl")

FULL_NAMES: Mapping[str, str] = {
    "atm": "CAM (Community Atmosphere Model)",
    "ocn": "POP (Parallel Ocean Program)",
    "ice": "CICE (Community Ice Code)",
    "lnd": "CLM (Community Land Model)",
    "rtm": "RTM (River Transport Model)",
    "glc": "CISM (Community Ice Sheet Model)",
    "cpl": "CPL7 (coupler)",
}


@dataclass(frozen=True)
class GroundTruthComponent:
    """The simulator-side truth for one component at one resolution."""

    name: str
    model: PerformanceModel
    noise: float = 0.02
    decomposition_sensitivity: float = 0.0
    sweet_spots: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.name not in FULL_NAMES:
            raise ValueError(f"unknown CESM component {self.name!r}")
        check_positive("noise", self.noise, strict=False)
        check_positive(
            "decomposition_sensitivity", self.decomposition_sensitivity, strict=False
        )
        if self.decomposition_sensitivity > 0 and not self.sweet_spots:
            raise ValueError(
                f"{self.name}: decomposition sensitivity needs a sweet-spot list"
            )

    def decomposition_penalty(self, nodes: int) -> float:
        """Deterministic slowdown factor (>= 1) at off-sweet-spot counts.

        The draw is keyed on the node count so repeated runs at the same
        count see the same decomposition (as a real machine would) while
        different counts land anywhere in ``[1, 1 + sensitivity]``.
        """
        if self.decomposition_sensitivity == 0.0 or nodes in self.sweet_spots:
            return 1.0
        u = np.random.default_rng(int(nodes) * 2654435761 % 2**32).random()
        return 1.0 + self.decomposition_sensitivity * u

    def true_time(self, nodes: int) -> float:
        """Noise-free ground-truth seconds at ``nodes`` (with decomposition)."""
        return float(self.model.time(nodes)) * self.decomposition_penalty(nodes)

    def sample_time(self, nodes: int, rng: np.random.Generator) -> float:
        """One observed run: ground truth times log-normal jitter."""
        jitter = float(np.exp(rng.normal(0.0, self.noise))) if self.noise else 1.0
        return self.true_time(nodes) * jitter


def one_degree_ground_truth() -> dict[str, GroundTruthComponent]:
    """Calibration for the 1° FV / 1° ocean configuration (Table III top).

    Spot checks against the paper (true_time, no noise):
      atm(104) ~ 307 s, atm(1664) ~ 61 s, ocn(24) ~ 360 s, lnd(24) ~ 64 s,
      lnd(384) ~ 6 s, ice(80) ~ 106 s, ice(1280) ~ 17.5 s.
    """
    return {
        "lnd": GroundTruthComponent(
            "lnd", PerformanceModel(a=1483.0, b=0.0, c=1.0, d=2.1), noise=0.03
        ),
        "ice": GroundTruthComponent(
            "ice",
            PerformanceModel(a=7600.0, b=2.0e-4, c=1.1, d=11.0),
            noise=0.08,  # CICE decomposition variety -> noisiest curve (§IV-A)
        ),
        "atm": GroundTruthComponent(
            "atm", PerformanceModel(a=27380.0, b=1.0e-3, c=1.0, d=43.0), noise=0.015
        ),
        "ocn": GroundTruthComponent(
            "ocn", PerformanceModel(a=7550.0, b=0.0, c=1.0, d=45.0), noise=0.02
        ),
    }


def one_degree_minor_ground_truth() -> dict[str, GroundTruthComponent]:
    """Calibration for the excluded-by-default minor components at 1°.

    §II: "The coupler and the river models take less time to run compared to
    the other components, so these components were not included in our HSLB
    models, but they can be added later for fine tuning the work load
    balance."  This library implements that extension: RTM rides the land
    nodes, CPL7 the atmosphere nodes, each costing a few percent of the
    total.
    """
    return {
        "rtm": GroundTruthComponent(
            "rtm", PerformanceModel(a=200.0, b=0.0, c=1.0, d=0.3), noise=0.05
        ),
        "cpl": GroundTruthComponent(
            "cpl", PerformanceModel(a=500.0, b=2.0e-3, c=1.0, d=2.0), noise=0.04
        ),
    }


def eighth_degree_minor_ground_truth() -> dict[str, GroundTruthComponent]:
    """Minor-component calibration at 1/8° (same ~1-3% share of the total)."""
    return {
        "rtm": GroundTruthComponent(
            "rtm", PerformanceModel(a=6000.0, b=0.0, c=1.0, d=2.0), noise=0.05
        ),
        "cpl": GroundTruthComponent(
            "cpl", PerformanceModel(a=1.5e5, b=0.0, c=1.0, d=10.0), noise=0.04
        ),
    }


def eighth_degree_ground_truth() -> dict[str, GroundTruthComponent]:
    """Calibration for the 1/8° HOMME-SE / 1/10° ocean configuration.

    Spot checks against the paper:
      atm(5836) ~ 2533 s, atm(26644) ~ 787 s, ocn(2356) ~ 3785 s,
      ocn(6124) ~ 1645 s, ice(5350) ~ 476 s, lnd(486) ~ 149 s,
      and ocn at off-sweet-spot counts runs up to ~30% slow (the fit-miss
      the paper observed at 11880 nodes).
    """
    ocean_sweet = (480, 512, 2356, 3136, 4564, 6124, 19460)
    return {
        "lnd": GroundTruthComponent(
            "lnd", PerformanceModel(a=65290.0, b=0.0, c=1.0, d=14.8), noise=0.05
        ),
        "ice": GroundTruthComponent(
            "ice", PerformanceModel(a=1.7907e6, b=0.0, c=1.0, d=140.9), noise=0.06
        ),
        "atm": GroundTruthComponent(
            "atm", PerformanceModel(a=1.305e7, b=0.0, c=1.0, d=297.0), noise=0.02
        ),
        "ocn": GroundTruthComponent(
            "ocn",
            PerformanceModel(a=8.194e6, b=0.0, c=1.0, d=307.0),
            noise=0.02,
            decomposition_sensitivity=0.30,
            sweet_spots=ocean_sweet,
        ),
    }
