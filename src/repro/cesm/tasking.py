"""MPI-task / OpenMP-thread granularity within a node.

§III-C: "On Intrepid, there are 4 cores per node and CESM is run with 1 MPI
task and 4 threads per task on each node.  Other choices could have been
cores or CPUs or even software representations such as threads or MPI
tasks."  §II: "Each component can be run with various MPI task and OpenMP
thread counts."

This module models that degree of freedom.  Each component has a
*threading profile*: an exponent ``alpha`` in (0, 1] describing how well its
OpenMP sections scale (effective threads = threads^alpha; alpha = 1 is
perfect threading, small alpha means the component prefers MPI tasks).  A
:class:`TaskingPolicy` chooses tasks x threads per node; the component's
per-node throughput relative to the calibration policy (1 task x 4 threads
on Intrepid) becomes a time multiplier the simulator can apply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm.grids import CORES_PER_NODE
from repro.util.validation import check_in_range

#: The policy the ground-truth curves were calibrated under (§III-C).
DEFAULT_TASKS_PER_NODE = 1
DEFAULT_THREADS_PER_TASK = 4


@dataclass(frozen=True)
class TaskingPolicy:
    """How each node's cores are carved into MPI tasks and OpenMP threads."""

    tasks_per_node: int = DEFAULT_TASKS_PER_NODE
    threads_per_task: int = DEFAULT_THREADS_PER_TASK

    def __post_init__(self) -> None:
        if self.tasks_per_node < 1 or self.threads_per_task < 1:
            raise ValueError("tasks and threads must be >= 1")
        if self.cores_used > CORES_PER_NODE:
            raise ValueError(
                f"{self.tasks_per_node}x{self.threads_per_task} oversubscribes "
                f"a {CORES_PER_NODE}-core node"
            )

    @property
    def cores_used(self) -> int:
        return self.tasks_per_node * self.threads_per_task

    @property
    def idle_cores(self) -> int:
        return CORES_PER_NODE - self.cores_used

    def mpi_tasks(self, nodes: int) -> int:
        """Total MPI ranks across ``nodes`` nodes."""
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        return nodes * self.tasks_per_node

    def __repr__(self) -> str:
        return f"TaskingPolicy({self.tasks_per_node}x{self.threads_per_task})"


#: Every way to fill a 4-core node exactly.
FULL_NODE_POLICIES: tuple[TaskingPolicy, ...] = (
    TaskingPolicy(1, 4),
    TaskingPolicy(2, 2),
    TaskingPolicy(4, 1),
)


@dataclass(frozen=True)
class ThreadingProfile:
    """A component's OpenMP scaling quality: effective threads = t^alpha."""

    alpha: float

    def __post_init__(self) -> None:
        check_in_range("alpha", self.alpha, 0.05, 1.0)

    def effective_threads(self, threads: int) -> float:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        return float(threads) ** self.alpha

    def throughput(self, policy: TaskingPolicy) -> float:
        """Per-node compute throughput under ``policy`` (arbitrary units)."""
        return policy.tasks_per_node * self.effective_threads(
            policy.threads_per_task
        )

    def time_multiplier(self, policy: TaskingPolicy) -> float:
        """Wall-time factor vs the calibration policy (1 x 4).

        < 1 means the policy beats the default for this component.
        """
        default = TaskingPolicy()
        return self.throughput(default) / self.throughput(policy)

    def best_policy(
        self, policies: tuple[TaskingPolicy, ...] = FULL_NODE_POLICIES
    ) -> TaskingPolicy:
        """The fully-packed policy with maximal throughput."""
        return max(policies, key=self.throughput)


#: Plausible per-component profiles: CAM threads well (its physics loops
#: are OpenMP-friendly); CLM reasonably; POP and CICE prefer MPI ranks
#: (halo-exchange-dominated, modest threading in that era).
DEFAULT_PROFILES: dict[str, ThreadingProfile] = {
    "atm": ThreadingProfile(alpha=0.95),
    "lnd": ThreadingProfile(alpha=0.85),
    "ice": ThreadingProfile(alpha=0.60),
    "ocn": ThreadingProfile(alpha=0.55),
}


def best_tasking(
    profiles: dict[str, ThreadingProfile] | None = None,
) -> dict[str, TaskingPolicy]:
    """Per-component throughput-optimal full-node policies."""
    profiles = profiles or DEFAULT_PROFILES
    return {name: prof.best_policy() for name, prof in profiles.items()}


def tasking_speedup(
    profiles: dict[str, ThreadingProfile] | None = None,
) -> dict[str, float]:
    """Per-component wall-time gain of the best policy vs the default 1x4."""
    profiles = profiles or DEFAULT_PROFILES
    return {
        name: 1.0 / prof.time_multiplier(prof.best_policy())
        for name, prof in profiles.items()
    }
