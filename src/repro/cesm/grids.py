"""CESM configurations: resolution, admissible node-count sets, machine size.

Table I lines 5–6 define the discrete "possible allocations":

* ocean (1°):   ``O = {2, 4, ..., 480, 768}`` — even counts plus one outlier;
* atmosphere (1°): ``A = {1, 2, ..., 1638, 1664}`` — a dense range plus one
  sweet spot, the "large number of discrete choices" that motivated SOS
  branching;
* ocean (1/8°, constrained): the hard-coded list
  ``{480, 512, 2356, 3136, 4564, 6124, 19460}`` from prior decomposition
  testing — §IV-B removes this restriction in the "unconstrained" runs.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.cesm.components import (
    COMPONENTS,
    GroundTruthComponent,
    eighth_degree_ground_truth,
    eighth_degree_minor_ground_truth,
    one_degree_ground_truth,
    one_degree_minor_ground_truth,
)
from repro.core.builder import DiscreteNodeSet

#: Intrepid, the ANL Blue Gene/P: 40,960 quad-core nodes (§I).  CESM runs
#: 1 MPI task x 4 threads per node, so "nodes" is the allocation unit (§III-C).
INTREPID_NODES = 40_960
CORES_PER_NODE = 4

#: The 1/8° ocean node counts validated by prior decomposition testing.
EIGHTH_DEGREE_OCEAN_SPOTS: tuple[int, ...] = (480, 512, 2356, 3136, 4564, 6124, 19460)


@dataclass(frozen=True)
class CESMConfiguration:
    """Everything resolution-specific the formulation and simulator need."""

    name: str
    description: str
    ground_truth: Mapping[str, GroundTruthComponent]
    atm_allowed: DiscreteNodeSet
    ocean_allowed: DiscreteNodeSet | None  # None => unconstrained integer
    min_nodes: Mapping[str, int] = field(default_factory=dict)
    machine_nodes: int = INTREPID_NODES
    #: RTM/CPL7 calibration, consumed when the fine-tuning extension is on.
    minor_ground_truth: Mapping[str, GroundTruthComponent] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        missing = set(COMPONENTS) - set(self.ground_truth)
        if missing:
            raise ValueError(f"{self.name}: missing ground truth for {sorted(missing)}")

    def component_min_nodes(self, name: str) -> int:
        return int(self.min_nodes.get(name, 1))

    def ocean_values_upto(self, cap: int) -> tuple[int, ...]:
        """Admissible ocean counts within a machine of ``cap`` nodes."""
        if self.ocean_allowed is None:
            return tuple(range(self.component_min_nodes("ocn"), cap + 1))
        return tuple(v for v in self.ocean_allowed.values if v <= cap)


def one_degree() -> CESMConfiguration:
    """The 1° FV atmosphere/land + 1° ocean/ice configuration (§II)."""
    return CESMConfiguration(
        name="1deg",
        description=(
            "CESM1.1.1, 1-degree finite-volume grid for atmosphere and land, "
            "1-degree displaced-pole grid for ocean and sea ice"
        ),
        ground_truth=one_degree_ground_truth(),
        atm_allowed=DiscreteNodeSet.contiguous(1, 1638, extras=(1664,)),
        ocean_allowed=DiscreteNodeSet.even_range(2, 480, extras=(768,)),
        min_nodes={"lnd": 1, "ice": 1, "atm": 1, "ocn": 2},
        minor_ground_truth=one_degree_minor_ground_truth(),
    )


def eighth_degree(*, constrained_ocean: bool = True) -> CESMConfiguration:
    """The 1/8° HOMME-SE atmosphere + 1/10° ocean/ice configuration.

    ``constrained_ocean=False`` reproduces §IV-B's "unconstrained ocean
    nodes" variant, where the hard-coded list is dropped and the MINLP may
    pick arbitrary counts (at the cost of decomposition-penalty risk the
    simulator faithfully applies).
    """
    ocean = (
        DiscreteNodeSet(EIGHTH_DEGREE_OCEAN_SPOTS) if constrained_ocean else None
    )
    return CESMConfiguration(
        name="eighth" + ("" if constrained_ocean else "-freeocn"),
        description=(
            "pre-release CESM1.2, 1/8-degree HOMME spectral-element atmosphere, "
            "1/4-degree FV land, 1/10-degree tri-pole ocean and sea ice"
            + ("" if constrained_ocean else " (ocean node constraint removed)")
        ),
        ground_truth=eighth_degree_ground_truth(),
        atm_allowed=DiscreteNodeSet.contiguous(64, 26644, extras=(27000,)),
        ocean_allowed=ocean,
        min_nodes={"lnd": 16, "ice": 64, "atm": 64, "ocn": 256},
        minor_ground_truth=eighth_degree_minor_ground_truth(),
    )
