"""Benchmark-campaign planning: which node counts to gather at.

§III-C: "We propose that CESM should be run on the minimal number of nodes
allowed by memory requirements and on the greatest number of nodes
possible.  In addition, a few simulations should be done in between to
capture the curvature of the scaling ... the number of benchmarking runs
with various number of nodes should be at least greater than four."

:func:`plan_campaign` turns that advice into code: a memory floor sets the
smallest runnable size, the machine (or a queue limit) sets the largest,
and the interior points are geometrically spaced so every octave of the
scaling curve is sampled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cesm.grids import CESMConfiguration
from repro.util.validation import check_positive

#: Memory per node on the target machine (Intrepid: 2 GB/node).
NODE_MEMORY_GB = 2.0


@dataclass(frozen=True)
class MemoryModel:
    """Aggregate application memory that must fit across the nodes.

    ``resident_gb`` is the total working set (grids, state, halos); the
    per-node footprint also includes a replicated share ``replicated_gb``
    (lookup tables, code, buffers) that does not shrink with node count.
    """

    resident_gb: float
    replicated_gb: float = 0.25

    def __post_init__(self) -> None:
        check_positive("resident_gb", self.resident_gb)
        check_positive("replicated_gb", self.replicated_gb, strict=False)

    def min_nodes(self, node_memory_gb: float = NODE_MEMORY_GB) -> int:
        """Smallest node count whose per-node footprint fits in memory."""
        usable = node_memory_gb - self.replicated_gb
        if usable <= 0:
            raise ValueError(
                f"replicated footprint {self.replicated_gb} GB exceeds node "
                f"memory {node_memory_gb} GB"
            )
        return max(1, math.ceil(self.resident_gb / usable))


#: Rough aggregate working sets, scaled so the floors land where the
#: papers' campaigns start (1deg ~ tens of nodes, 1/8deg ~ thousands).
MEMORY_MODELS: dict[str, MemoryModel] = {
    "1deg": MemoryModel(resident_gb=48.0),
    "eighth": MemoryModel(resident_gb=3400.0),
}


def plan_campaign(
    config: CESMConfiguration,
    *,
    max_nodes: int | None = None,
    points: int = 5,
    node_memory_gb: float = NODE_MEMORY_GB,
) -> tuple[int, ...]:
    """Node counts for the gather step, per the §III-C recommendations.

    * smallest = the memory floor for this configuration;
    * largest = ``max_nodes`` (defaults to the full machine);
    * interior = geometric spacing, ``points`` total (>= 5: the paper wants
      "at least greater than four").
    """
    if points < 5:
        raise ValueError(
            f"§III-C: campaigns need at least 5 points, got {points}"
        )
    key = "eighth" if config.name.startswith("eighth") else config.name
    memory = MEMORY_MODELS.get(key)
    if memory is None:
        raise KeyError(f"no memory model for configuration {config.name!r}")
    lo = memory.min_nodes(node_memory_gb)
    hi = int(max_nodes if max_nodes is not None else config.machine_nodes)
    if hi <= lo:
        raise ValueError(
            f"machine cap {hi} does not exceed the memory floor {lo}"
        )
    counts = sorted(
        {
            int(round(lo * (hi / lo) ** (i / (points - 1))))
            for i in range(points)
        }
    )
    # Rounding can merge adjacent points; pad geometrically if needed.
    while len(counts) < points:
        gaps = [
            (counts[i + 1] / counts[i], i) for i in range(len(counts) - 1)
        ]
        _, i = max(gaps)
        counts.insert(i + 1, int(round(math.sqrt(counts[i] * counts[i + 1]))))
        counts = sorted(set(counts))
    return tuple(counts)


def replacement_counts(
    planned: tuple[int, ...] | list[int],
    dropped: tuple[int, ...] | list[int],
    *,
    points: int | None = None,
) -> tuple[int, ...]:
    """Fresh node counts to gather at after some campaign points died.

    When the resilient gather drops a node count for good (a bad midplane,
    a recurring boot failure — see ``GatherReport.dropped_counts``), the
    campaign should not just shrink below the §III-C minimum.  This proposes
    replacements at geometric midpoints of the widest surviving gaps,
    avoiding every count already tried, until the campaign is back to
    ``points`` counts (default: the original size) or no fresh integer
    count fits anywhere.
    """
    planned_sorted = sorted(set(int(n) for n in planned))
    dead = set(int(n) for n in dropped)
    surviving = [n for n in planned_sorted if n not in dead]
    if len(surviving) < 2:
        raise ValueError(
            "fewer than two node counts survived; re-plan the whole campaign"
        )
    target = len(planned_sorted) if points is None else int(points)
    tried = set(planned_sorted)
    counts = list(surviving)
    fresh: list[int] = []
    while len(counts) < target:
        gaps = sorted(
            ((counts[i + 1] / counts[i], i) for i in range(len(counts) - 1)),
            reverse=True,
        )
        cand = None
        for _, i in gaps:
            cand = _fresh_in_gap(counts[i], counts[i + 1], tried)
            if cand is not None:
                break
        if cand is None:
            break  # every gap is saturated with already-tried counts
        tried.add(cand)
        fresh.append(cand)
        counts = sorted(counts + [cand])
    return tuple(sorted(fresh))


def _fresh_in_gap(lo: int, hi: int, tried: set[int]) -> int | None:
    """Best untried integer in the open interval ``(lo, hi)``.

    Log-space bisection, widest sub-gap first: the geometric midpoint is
    ideal, but when it was already tried (typically it *is* the dead
    count) the midpoints of the two half-gaps are the next-best probes,
    and so on down.  Returns ``None`` when the gap holds no fresh integer.
    """
    queue = [(lo, hi)]
    while queue:
        a, b = queue.pop(0)
        cand = int(round(math.sqrt(a * b)))
        if not a < cand < b:
            continue  # gap too narrow to split further
        if cand not in tried:
            return cand
        queue.extend([(a, cand), (cand, b)])
    return None
