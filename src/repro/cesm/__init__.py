"""CESM application layer: the coupled climate model HSLB balances.

The real system (CESM1.1.1 on the Blue Gene/P "Intrepid") is replaced by a
simulator whose observable behaviour — per-component wall-clock seconds as a
function of allocated nodes — is calibrated to the node-count/time pairs the
paper publishes in Table III (see DESIGN.md for the substitution argument).

Modules:

* :mod:`repro.cesm.components` — component registry + calibrated ground truth;
* :mod:`repro.cesm.grids`      — resolutions and admissible node-count sets;
* :mod:`repro.cesm.layouts`    — the Table I mathematical models (layouts 1–3);
* :mod:`repro.cesm.simulator`  — the machine: benchmark and execute;
* :mod:`repro.cesm.app`        — the :class:`repro.core.Application` adapter;
* :mod:`repro.cesm.manual`     — the "human expert" baseline procedure.
"""

from repro.cesm.app import CESMApplication
from repro.cesm.components import COMPONENTS, GroundTruthComponent
from repro.cesm.grids import CESMConfiguration, eighth_degree, one_degree
from repro.cesm.layouts import Layout, layout_total_time
from repro.cesm.manual import manual_optimization
from repro.cesm.simulator import CESMSimulator

__all__ = [
    "CESMApplication",
    "CESMConfiguration",
    "CESMSimulator",
    "COMPONENTS",
    "GroundTruthComponent",
    "Layout",
    "eighth_degree",
    "layout_total_time",
    "manual_optimization",
    "one_degree",
]
