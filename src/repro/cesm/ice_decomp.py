"""Machine-learning selection of sea-ice (CICE) decompositions.

§IV-A: "The ice component supports seven decomposition strategies with
varying block sizes ... The optimal decomposition for a given number of
nodes is not yet known a priori.  In our tests, we used the default
decompositions for CICE which resulted in the tests using varying
decomposition types and block sizes.  This increased the noise in the sea
ice performance curve fit and impacted the timing estimates.  As a result,
a separate effort was begun to determine the optimal sea ice decompositions
using machine learning [10]."

This module reproduces that companion effort in miniature:

* a decomposition space (strategy x block size) whose ground-truth time
  multiplier varies smoothly-but-idiosyncratically with node count, with no
  arm dominating everywhere;
* the CESM *default policy* (a fixed rule of thumb) that lands on mediocre
  decompositions at many node counts — the noise source the paper blames;
* a distance-weighted nearest-neighbour regressor over benchmark samples
  (``DecompositionSelector``) that learns each arm's multiplier curve and
  picks the best arm per node count — the [10] role, implemented on numpy
  only.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.perf.model import PerformanceModel

#: CICE's decomposition strategies (the real set, per the CICE docs the
#: paper alludes to with "seven decomposition strategies").
STRATEGIES: tuple[str, ...] = (
    "cartesian1d",
    "cartesian2d",
    "roundrobin",
    "sectrobin",
    "sectcart",
    "rake",
    "spacecurve",
)

BLOCK_SIZES: tuple[int, ...] = (8, 16, 32, 64)


@dataclass(frozen=True)
class Decomposition:
    """One CICE decomposition choice."""

    strategy: str
    block_size: int

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.block_size not in BLOCK_SIZES:
            raise ValueError(f"unsupported block size {self.block_size}")


#: Every (strategy, block size) arm.
DECOMPOSITIONS: tuple[Decomposition, ...] = tuple(
    Decomposition(s, b) for s in STRATEGIES for b in BLOCK_SIZES
)


def _arm_seed(decomp: Decomposition) -> int:
    # zlib.crc32 rather than hash(): Python string hashing is salted per
    # process, and the ground truth must be identical across runs.
    import zlib

    return zlib.crc32(f"{decomp.strategy}:{decomp.block_size}".encode())


def true_multiplier(decomp: Decomposition, nodes: int) -> float:
    """Ground-truth slowdown factor (>= 1) of ``decomp`` at ``nodes`` nodes.

    Each arm gets a smooth pseudo-random curve over log-node-count: a base
    offset plus two sinusoids with arm-specific frequencies/phases, scaled
    into [1.0, ~1.45].  Curves cross, so the best arm changes with the node
    count — exactly why a per-count selector is worth learning.
    """
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    rng = np.random.default_rng(_arm_seed(decomp))
    base = rng.uniform(0.0, 0.15)
    amp1, amp2 = rng.uniform(0.03, 0.15, size=2)
    freq1, freq2 = rng.uniform(0.4, 2.2, size=2)
    ph1, ph2 = rng.uniform(0.0, 2 * math.pi, size=2)
    x = math.log(float(nodes))
    wiggle = amp1 * (1 + math.sin(freq1 * x + ph1)) / 2 + amp2 * (
        1 + math.sin(freq2 * x + ph2)
    ) / 2
    return 1.0 + base + wiggle


def default_decomposition(nodes: int) -> Decomposition:
    """The CESM default rule of thumb (block size by node count, strategy
    cartesian) — the policy whose hit-or-miss quality made the paper's ice
    curves noisy."""
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    if nodes < 64:
        block = 64
    elif nodes < 512:
        block = 32
    elif nodes < 4096:
        block = 16
    else:
        block = 8
    strategy = "cartesian2d" if nodes >= 128 else "cartesian1d"
    return Decomposition(strategy, block)


def sample_ice_time(
    base_model: PerformanceModel,
    decomp: Decomposition,
    nodes: int,
    rng: np.random.Generator,
    *,
    noise: float = 0.02,
) -> float:
    """One observed CICE timing under a specific decomposition."""
    jitter = float(np.exp(rng.normal(0.0, noise))) if noise else 1.0
    return float(base_model.time(nodes)) * true_multiplier(decomp, nodes) * jitter


@dataclass(frozen=True)
class DecompSample:
    """One training observation: (decomposition, nodes) -> multiplier."""

    decomposition: Decomposition
    nodes: int
    multiplier: float


def collect_training_data(
    base_model: PerformanceModel,
    node_counts: Sequence[int],
    rng: np.random.Generator,
    *,
    arms: Sequence[Decomposition] = DECOMPOSITIONS,
    runs_per_arm: int = 1,
    noise: float = 0.02,
) -> list[DecompSample]:
    """Benchmark every arm at every node count (the [10] training campaign)."""
    samples = []
    for nodes in node_counts:
        for decomp in arms:
            for _ in range(runs_per_arm):
                t = sample_ice_time(base_model, decomp, int(nodes), rng, noise=noise)
                samples.append(
                    DecompSample(
                        decomposition=decomp,
                        nodes=int(nodes),
                        multiplier=t / float(base_model.time(int(nodes))),
                    )
                )
    return samples


class DecompositionSelector:
    """Distance-weighted k-NN regression over log(node count), per arm.

    ``predict(decomp, nodes)`` estimates the arm's multiplier;
    ``best(nodes)`` returns the arm with the smallest estimate.  Simple,
    dependency-free, and honest about what the companion paper's model does
    operationally: map node count -> recommended decomposition.
    """

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._by_arm: dict[Decomposition, list[tuple[float, float]]] = {}

    def fit(self, samples: Iterable[DecompSample]) -> "DecompositionSelector":
        self._by_arm.clear()
        for s in samples:
            self._by_arm.setdefault(s.decomposition, []).append(
                (math.log(float(s.nodes)), float(s.multiplier))
            )
        if not self._by_arm:
            raise ValueError("no training samples")
        return self

    @property
    def arms(self) -> tuple[Decomposition, ...]:
        return tuple(self._by_arm)

    def predict(self, decomp: Decomposition, nodes: int) -> float:
        try:
            points = self._by_arm[decomp]
        except KeyError:
            raise KeyError(f"no training data for {decomp}") from None
        x = math.log(float(nodes))
        nearest = sorted(points, key=lambda p: abs(p[0] - x))[: self.k]
        weights = [1.0 / (abs(px - x) + 1e-6) for px, _ in nearest]
        total = sum(weights)
        return sum(w * m for w, (_, m) in zip(weights, nearest)) / total

    def best(self, nodes: int) -> Decomposition:
        return min(self.arms, key=lambda d: self.predict(d, nodes))


def oracle_best(nodes: int) -> Decomposition:
    """Ground-truth best arm (test oracle; not available in production)."""
    return min(DECOMPOSITIONS, key=lambda d: true_multiplier(d, nodes))
