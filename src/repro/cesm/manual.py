"""The "manual expert optimization" baseline (§II, §IV).

The documented human procedure: run the model at about five core counts,
plot per-component scaling curves, hand-pick node counts (rounding to
comfortable multiples), then iterate trial-and-error submissions until the
layout looks balanced — "five to ten iterations which involves building the
model, submitting to a queue, and waiting".

:func:`manual_optimization` emulates exactly that: a small scaling campaign,
a few human-style candidate splits (ocean fraction guesses, counts rounded
to multiples of 8), one queued execution per candidate, best one wins.  The
cost of the procedure (number of executions burned) is reported so
experiments can quote the person/machine-time saving HSLB provides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cesm.layouts import Layout
from repro.cesm.simulator import CESMSimulator
from repro.core.spec import Allocation, ExecutionResult

#: Humans pick round numbers: candidate ocean fractions an expert would try.
_OCEAN_FRACTIONS = (0.15, 0.19, 0.25, 0.33)

#: and round node counts to a multiple of this (a Blue Gene midplane vibe).
_ROUNDING = 8


@dataclass
class ManualResult:
    """Outcome of the manual procedure, including its cost."""

    allocation: Allocation
    execution: ExecutionResult
    candidates_tried: int
    executions_burned: int


def _round_human(n: float, minimum: int) -> int:
    rounded = max(minimum, int(_ROUNDING * round(n / _ROUNDING)))
    return rounded if rounded > 0 else minimum


def _candidate(sim: CESMSimulator, total_nodes: int, ocean_fraction: float) -> Allocation | None:
    cfg = sim.config
    ocn_values = cfg.ocean_values_upto(max(2, int(0.6 * total_nodes)))
    if not ocn_values:
        return None
    target = ocean_fraction * total_nodes
    ocn = min(ocn_values, key=lambda v: abs(v - target))
    atm_cap = total_nodes - ocn
    if atm_cap < cfg.component_min_nodes("atm"):
        return None
    atm = cfg.atm_allowed.below(_round_human(atm_cap, cfg.component_min_nodes("atm")))
    if atm > atm_cap:
        atm = cfg.atm_allowed.below(atm_cap)
    # The expert splits the atmosphere group roughly 60/40 between the noisy
    # sea ice and the cheap land model, then rounds.
    ice = _round_human(0.6 * atm, cfg.component_min_nodes("ice"))
    lnd = _round_human(atm - ice, cfg.component_min_nodes("lnd"))
    while ice + lnd > atm and ice > cfg.component_min_nodes("ice"):
        ice = max(cfg.component_min_nodes("ice"), ice - _ROUNDING)
    if ice + lnd > atm:
        return None
    return Allocation({"lnd": lnd, "ice": ice, "atm": atm, "ocn": ocn})


def manual_optimization(
    sim: CESMSimulator,
    total_nodes: int,
    rng: np.random.Generator,
    *,
    max_iterations: int = 8,
) -> ManualResult:
    """Emulate the expert's trial-and-error layout tuning.

    Each candidate costs one full queued execution (as it does in real
    life); the search stops after ``max_iterations`` executions, mirroring
    the paper's "five to ten iterations".
    """
    if sim.layout is not Layout.HYBRID:
        raise ValueError("the documented manual procedure targets layout 1")
    best: tuple[Allocation, ExecutionResult] | None = None
    tried = 0
    burned = 0
    seen: set[tuple[int, ...]] = set()
    for frac in _OCEAN_FRACTIONS:
        if burned >= max_iterations:
            break
        allocation = _candidate(sim, total_nodes, frac)
        if allocation is None:
            continue
        key = tuple(allocation.nodes[c] for c in sorted(allocation.nodes))
        if key in seen:
            continue
        seen.add(key)
        tried += 1
        result = sim.execute(allocation, rng)
        burned += 1
        if best is None or result.total_time < best[1].total_time:
            best = (allocation, result)
    if best is None:
        raise RuntimeError(
            f"manual procedure found no feasible candidate at {total_nodes} nodes"
        )
    # Refinement phase: nudge the winner's ocean count one admissible step in
    # each direction — the "resubmit and compare" loop.
    allocation, execution = best
    cfg = sim.config
    ocn_values = list(cfg.ocean_values_upto(total_nodes - cfg.component_min_nodes("atm")))
    idx = ocn_values.index(allocation["ocn"]) if allocation["ocn"] in ocn_values else None
    if idx is not None:
        for step in (-1, 1):
            if burned >= max_iterations:
                break
            j = idx + step
            if not (0 <= j < len(ocn_values)):
                continue
            nudged = _candidate(
                sim, total_nodes, ocn_values[j] / max(total_nodes, 1)
            )
            if nudged is None:
                continue
            key = tuple(nudged.nodes[c] for c in sorted(nudged.nodes))
            if key in seen:
                continue
            seen.add(key)
            tried += 1
            result = sim.execute(nudged, rng)
            burned += 1
            if result.total_time < execution.total_time:
                allocation, execution = nudged, result
    return ManualResult(
        allocation=allocation,
        execution=execution,
        candidates_tried=tried,
        executions_burned=burned,
    )
