"""New-hardware what-ifs: transplanting fitted curves to a different machine.

§IV-C closes with "it might even be possible to do more exotic and less
reliable predictions such as the prediction of CESM scaling on new hardware
(e.g., exascale supercomputers)".  The paper is careful to call this *less
reliable*; this module implements the transformation with the same honesty
— it is a structured extrapolation, not a measurement.

Model: each Table II term is tied to a hardware resource —

* ``a/n``  (scalable compute)          → divides by ``compute_speedup``;
* ``b n^c`` (communication/overheads)  → divides by ``network_speedup``;
* ``d``    (serial floor)              → divides by ``serial_speedup``
  (single-thread performance, the resource exascale designs improve least).

Transforming a fitted model through a :class:`MachineProfile` and re-running
the allocation MINLP answers "how would the balanced job scale over there".
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.perf.model import PerformanceModel
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MachineProfile:
    """Relative speeds of a target machine vs the calibration machine."""

    name: str
    compute_speedup: float = 1.0
    network_speedup: float = 1.0
    serial_speedup: float = 1.0
    nodes: int = 40_960

    def __post_init__(self) -> None:
        check_positive("compute_speedup", self.compute_speedup)
        check_positive("network_speedup", self.network_speedup)
        check_positive("serial_speedup", self.serial_speedup)
        if self.nodes < 1:
            raise ValueError(f"machine needs at least one node, got {self.nodes}")

    def transform(self, model: PerformanceModel) -> PerformanceModel:
        """Re-scale a fitted curve's terms by this machine's resource speeds."""
        return PerformanceModel(
            a=model.a / self.compute_speedup,
            b=model.b / self.network_speedup,
            c=model.c,
            d=model.d / self.serial_speedup,
        )

    def transform_all(
        self, models: Mapping[str, PerformanceModel]
    ) -> dict[str, PerformanceModel]:
        return {name: self.transform(m) for name, m in models.items()}


#: The calibration machine itself (identity transform).
INTREPID = MachineProfile(name="intrepid", nodes=40_960)

#: A plausible 2020s exascale-class profile relative to a 2008 Blue Gene/P:
#: huge per-node compute gains, strong but lagging network, modest
#: single-thread improvement — the classic "serial floor becomes the wall".
EXASCALE_SKETCH = MachineProfile(
    name="exascale-sketch",
    compute_speedup=80.0,
    network_speedup=20.0,
    serial_speedup=6.0,
    nodes=9_000,
)


def amdahl_ceiling(model: PerformanceModel) -> float:
    """Best-case speedup of one component on unlimited nodes: T(1)/d-ish.

    With the serial floor ``d`` untouched by parallelism, the component's
    wall time can never drop below it — the quantity new-hardware what-ifs
    must surface (a machine that multiplies compute by 80x but serial by 6x
    moves the ceiling by 6x, not 80x).
    """
    floor = model.d
    if floor <= 0:
        return float("inf")
    return float(model.time(1)) / floor
