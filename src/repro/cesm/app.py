"""The :class:`repro.core.Application` adapter for CESM.

Glues the simulator (gather/execute) to the Table I formulations
(solve) so :class:`repro.core.HSLBOptimizer` can drive the whole pipeline.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.cesm.components import COMPONENTS
from repro.cesm.grids import CESMConfiguration
from repro.cesm.layouts import (
    Layout,
    allocation_from_solution,
    formulate_layout,
)
from repro.cesm.simulator import CESMSimulator
from repro.core.spec import Allocation, Application, ExecutionResult
from repro.faults.plan import FaultPlan
from repro.minlp.problem import Problem
from repro.minlp.solution import Solution
from repro.perf.data import BenchmarkSuite
from repro.perf.model import PerformanceModel


class CESMApplication(Application):
    """CESM as seen by HSLB: benchmark, formulate, execute."""

    def __init__(
        self,
        config: CESMConfiguration,
        *,
        layout: Layout = Layout.HYBRID,
        tsync: float | None = None,
        benchmark_runs_per_count: int = 1,
        include_minor_components: bool = False,
        outlier_prob: float = 0.0,
        outlier_scale: float = 3.0,
        faults: "FaultPlan | None" = None,
    ) -> None:
        self.config = config
        self.layout = layout
        self.tsync = tsync
        self.benchmark_runs_per_count = int(benchmark_runs_per_count)
        self.include_minor_components = bool(include_minor_components)
        self.fault_plan = faults
        self.simulator = CESMSimulator(
            config,
            layout=layout,
            include_minor=self.include_minor_components,
            outlier_prob=outlier_prob,
            outlier_scale=outlier_scale,
            faults=faults,
        )

    @property
    def component_names(self) -> tuple[str, ...]:
        if self.include_minor_components:
            from repro.cesm.layouts import MINOR_HOSTS

            minors = tuple(
                m for m in MINOR_HOSTS if m in self.config.minor_ground_truth
            )
            return COMPONENTS + minors
        return COMPONENTS

    @property
    def requires_nonconvex_solver(self) -> bool:
        # The exact Tsync coupling (Table I lines 18-19) is nonconvex.
        return self.tsync is not None

    def benchmark(
        self, node_counts: Sequence[int], rng: np.random.Generator
    ) -> BenchmarkSuite:
        return self.simulator.benchmark(
            node_counts, rng, runs_per_count=self.benchmark_runs_per_count
        )

    def benchmark_run(
        self,
        node_count: int,
        rng: np.random.Generator,
        *,
        attempt: int = 0,
        probe_extremes: bool = False,
    ) -> BenchmarkSuite:
        return self.simulator.benchmark(
            [int(node_count)],
            rng,
            runs_per_count=self.benchmark_runs_per_count,
            probe_extremes=probe_extremes,
            attempt=attempt,
        )

    def formulate(
        self, models: Mapping[str, PerformanceModel], total_nodes: int
    ) -> Problem:
        minor_models = None
        if self.include_minor_components:
            from repro.cesm.layouts import MINOR_HOSTS

            minor_models = {m: models[m] for m in MINOR_HOSTS if m in models}
        return formulate_layout(
            models,
            total_nodes,
            self.config,
            layout=self.layout,
            tsync=self.tsync,
            minor_models=minor_models,
        )

    def allocation_from_solution(self, solution: Solution) -> Allocation:
        return allocation_from_solution(solution)

    def execute(
        self, allocation: Allocation, rng: np.random.Generator
    ) -> ExecutionResult:
        return self.simulator.execute(allocation, rng)

    def predicted_times(
        self,
        models: Mapping[str, PerformanceModel],
        allocation: Allocation,
    ) -> dict[str, float]:
        out = super().predicted_times(models, allocation)
        if self.include_minor_components:
            from repro.cesm.layouts import MINOR_HOSTS

            for minor, host in MINOR_HOSTS.items():
                if minor in models:
                    out[minor] = float(models[minor].time(allocation[host]))
        return out

    def fallback_allocation(
        self,
        models: Mapping[str, PerformanceModel],
        total_nodes: int,
    ) -> Allocation:
        """Last-resort tier: the 'typical setup' proportional split (§II).

        The generic greedy cannot see CESM's layout/admissibility
        constraints, but the simulator's benchmark split is feasible by
        construction — exactly what a production operator falls back to
        when the optimizer is unavailable.
        """
        del models  # the heuristic split is model-free
        return self.simulator.default_split(int(total_nodes))

    def predicted_total(
        self,
        models: Mapping[str, PerformanceModel],
        allocation: Allocation,
    ) -> float:
        from repro.cesm.layouts import layout_total_time

        return float(
            layout_total_time(self.layout, self.predicted_times(models, allocation))
        )
