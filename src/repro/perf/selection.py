"""Alternative scaling-model families and information-criterion selection.

§III-B: "Over the years, many performance models have been developed [4],
[8], [9] ... The performance models are often broadly defined and can be
applied to any program running in parallel."  The paper fixes one family
(Table II); this module makes the choice testable:

* ``table2``    — the full ``a/n + b n^c + d`` (4 parameters);
* ``amdahl``    — ``a/n + d`` (2 parameters; solvable by nonnegative linear
  least squares, no multistart needed);
* ``power-law`` — ``a n^(-p) + d`` (3 parameters; sublinear scaling codes).

:func:`select_model` fits all candidates and picks by corrected Akaike
information criterion (AICc), trading fit quality against parameter count —
with four to eight benchmark points, overfitting is a real hazard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares, nnls

from repro.minlp.expr import Expr, ExprLike, VarRef, as_expr
from repro.perf.fitting import FitResult, fit_performance_model
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class PowerLawModel:
    """``T(n) = a * n^(-p) + d`` — sublinear strong scaling."""

    a: float
    p: float
    d: float = 0.0

    def __post_init__(self) -> None:
        check_positive("a", self.a, strict=False)
        check_positive("p", self.p)
        check_positive("d", self.d, strict=False)

    def time(self, n) -> np.ndarray | float:
        n = np.asarray(n, dtype=float)
        if np.any(n <= 0):
            raise ValueError("node counts must be positive")
        out = self.a * n ** (-self.p) + self.d
        return float(out) if out.ndim == 0 else out

    __call__ = time

    def expression(self, n: ExprLike) -> Expr:
        """Symbolic form for MINLP embedding (convex on n > 0 for p > 0)."""
        n = VarRef(n) if isinstance(n, str) else as_expr(n)
        return self.a * n ** (-self.p) + self.d

    @property
    def is_convex(self) -> bool:
        return True  # a, p >= 0 => a*n^-p convex on n > 0

    def __repr__(self) -> str:
        return f"PowerLawModel(a={self.a:.6g}, p={self.p:.6g}, d={self.d:.6g})"


@dataclass(frozen=True)
class CandidateFit:
    """One family's fit with its information-criterion score."""

    family: str
    model: object  # PerformanceModel | PowerLawModel
    rss: float
    n_params: int
    n_points: int

    @property
    def aicc(self) -> float:
        """Corrected AIC; +inf when there are too few points to correct."""
        d, k = self.n_points, self.n_params
        if d <= k + 1:
            return math.inf
        rss = max(self.rss, 1e-300)
        return d * math.log(rss / d) + 2 * k + (2 * k * (k + 1)) / (d - k - 1)

    @property
    def r_squared(self) -> float:
        return 1.0 - self.rss / max(self._tss, 1e-300)

    _tss: float = 1.0  # populated by the selection driver


def fit_amdahl(nodes: np.ndarray, seconds: np.ndarray) -> PerformanceModel:
    """Exact nonnegative least squares for ``a/n + d`` (design [1/n, 1])."""
    n = np.asarray(nodes, dtype=float)
    y = np.asarray(seconds, dtype=float)
    if n.size < 2:
        raise ValueError("need at least 2 observations")
    design = np.column_stack([1.0 / n, np.ones_like(n)])
    coeffs, _ = nnls(design, y)
    return PerformanceModel(a=float(coeffs[0]), b=0.0, c=1.0, d=float(coeffs[1]))


def fit_power_law(
    nodes: np.ndarray,
    seconds: np.ndarray,
    *,
    multistart: int = 4,
    rng: np.random.Generator | None = None,
) -> PowerLawModel:
    """Bounded least squares for ``a n^(-p) + d``."""
    n = np.asarray(nodes, dtype=float)
    y = np.asarray(seconds, dtype=float)
    if n.size < 3:
        raise ValueError("need at least 3 observations for the power law")
    rng = rng or default_rng()

    def residuals(params):
        a, p, d = params
        return y - (a * n ** (-p) + d)

    lower = np.array([0.0, 1e-3, 0.0])
    upper = np.array([np.inf, 2.5, np.inf])
    starts = [np.array([float(y[0] * n[0]), 1.0, 0.5 * float(y.min())])]
    for _ in range(multistart - 1):
        starts.append(
            np.array(
                [
                    rng.uniform(0.1, 2.0) * y[0] * n[0],
                    rng.uniform(0.2, 2.0),
                    rng.uniform(0.0, y.min()),
                ]
            )
        )
    best = None
    best_rss = math.inf
    for x0 in starts:
        try:
            res = least_squares(
                residuals, np.clip(x0, lower, upper), bounds=(lower, upper)
            )
        except (ValueError, FloatingPointError):
            continue
        rss = float(np.sum(residuals(res.x) ** 2))
        if rss < best_rss:
            best_rss = rss
            best = res.x
    if best is None:
        raise RuntimeError("power-law fit failed from every start")
    return PowerLawModel(a=float(best[0]), p=float(best[1]), d=float(best[2]))


@dataclass
class SelectionResult:
    """Outcome of model selection across families."""

    candidates: dict[str, CandidateFit]
    best_family: str

    @property
    def best(self) -> CandidateFit:
        return self.candidates[self.best_family]

    def render(self) -> str:
        from repro.util.tables import format_table

        rows = [
            [c.family, c.n_params, c.rss, c.aicc, "*" if c.family == self.best_family else ""]
            for c in sorted(self.candidates.values(), key=lambda c: c.aicc)
        ]
        return format_table(
            ["family", "k", "RSS", "AICc", "chosen"],
            rows,
            title="scaling-model selection",
            float_fmt=".4g",
        )


def select_model(
    nodes: np.ndarray,
    seconds: np.ndarray,
    *,
    families: tuple[str, ...] = ("amdahl", "table2", "power-law"),
    rng: np.random.Generator | None = None,
) -> SelectionResult:
    """Fit each family and choose by AICc (ties go to fewer parameters)."""
    n = np.asarray(nodes, dtype=float)
    y = np.asarray(seconds, dtype=float)
    rng = rng or default_rng()
    tss = float(np.sum((y - y.mean()) ** 2))

    candidates: dict[str, CandidateFit] = {}
    for family in families:
        if family == "amdahl":
            model = fit_amdahl(n, y)
            rss = float(np.sum((y - model.time(n)) ** 2))
            k = 2
        elif family == "table2":
            fit: FitResult = fit_performance_model(n, y, rng=rng)
            model, rss, k = fit.model, fit.rss, 4
        elif family == "power-law":
            model = fit_power_law(n, y, rng=rng)
            rss = float(np.sum((y - model.time(n)) ** 2))
            k = 3
        else:
            raise ValueError(f"unknown model family {family!r}")
        cand = CandidateFit(
            family=family, model=model, rss=rss, n_params=k, n_points=int(n.size)
        )
        object.__setattr__(cand, "_tss", tss)
        candidates[family] = cand

    best = min(candidates.values(), key=lambda c: (c.aicc, c.n_params))
    return SelectionResult(candidates=candidates, best_family=best.family)
