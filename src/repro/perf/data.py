"""Benchmark-observation containers (the ``(n_ji, y_ji)`` of Table II).

The gather step of HSLB produces, for each component ``j``, a set of
``D_j`` observations of wall-clock time at different node counts.  These
containers keep them tidy, validated, and easy to turn into fitting arrays.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive


#: Observation quality labels: "ok" is a clean run, "straggler" a run that
#: completed but was flagged as anomalously slow (fault injection or a
#: production monitor), fit paths may prune it.
OBSERVATION_STATUSES = ("ok", "straggler")


@dataclass(frozen=True)
class ScalingObservation:
    """One benchmark run: component time ``seconds`` on ``nodes`` nodes.

    ``retries`` records how many failed attempts preceded this successful
    run and ``status`` whether the timing is trustworthy — provenance the
    resilient gather step attaches so downstream fitting (and anyone
    reloading the suite from disk) can see which points came from a
    degraded campaign.
    """

    nodes: int
    seconds: float
    retries: int = 0
    status: str = "ok"

    def __post_init__(self) -> None:
        if int(self.nodes) != self.nodes or self.nodes < 1:
            raise ValueError(f"nodes must be a positive integer, got {self.nodes!r}")
        check_positive("seconds", self.seconds)
        if self.retries < 0 or int(self.retries) != self.retries:
            raise ValueError(f"retries must be a nonnegative integer, got {self.retries!r}")
        if self.status not in OBSERVATION_STATUSES:
            raise ValueError(f"unknown observation status {self.status!r}")

    @property
    def clean(self) -> bool:
        return self.status == "ok"


class ComponentBenchmark:
    """All observations for one component, ordered by node count."""

    def __init__(
        self,
        component: str,
        observations: Iterable[ScalingObservation] = (),
    ) -> None:
        if not component:
            raise ValueError("component name must be non-empty")
        self.component = component
        self._obs: list[ScalingObservation] = []
        for obs in observations:
            self.add(obs)

    def add(self, obs: ScalingObservation) -> None:
        """Append an observation (replicates at the same node count are fine)."""
        if not isinstance(obs, ScalingObservation):
            raise TypeError(f"expected ScalingObservation, got {type(obs).__name__}")
        self._obs.append(obs)
        self._obs.sort(key=lambda o: (o.nodes, o.seconds))

    @classmethod
    def from_pairs(
        cls, component: str, pairs: Iterable[tuple[int, float]]
    ) -> "ComponentBenchmark":
        return cls(component, (ScalingObservation(n, t) for n, t in pairs))

    # -- views ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._obs)

    def __iter__(self) -> Iterator[ScalingObservation]:
        return iter(self._obs)

    @property
    def nodes(self) -> np.ndarray:
        return np.array([o.nodes for o in self._obs], dtype=float)

    @property
    def seconds(self) -> np.ndarray:
        return np.array([o.seconds for o in self._obs], dtype=float)

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The fitting arrays ``(n, y)``."""
        return self.nodes, self.seconds

    @property
    def node_range(self) -> tuple[int, int]:
        if not self._obs:
            raise ValueError(f"no observations for {self.component}")
        return int(self._obs[0].nodes), int(self._obs[-1].nodes)

    def covers(self, nodes: float) -> bool:
        """True when predictions at ``nodes`` would be interpolation.

        §III-C argues benchmarks should bracket the target so the fitted
        curve is interpolated, not extrapolated.
        """
        lo, hi = self.node_range
        return lo <= nodes <= hi

    def aggregate(self) -> list[tuple[int, float, float, int]]:
        """Group replicates by node count: ``(nodes, mean, std, count)`` rows.

        ``std`` is the sample standard deviation (ddof=1), 0.0 for single
        observations.  Feeds the variance-weighted fitting path.
        """
        by_nodes: dict[int, list[float]] = {}
        for obs in self._obs:
            by_nodes.setdefault(int(obs.nodes), []).append(float(obs.seconds))
        out = []
        for nodes in sorted(by_nodes):
            ys = np.array(by_nodes[nodes])
            std = float(ys.std(ddof=1)) if ys.size > 1 else 0.0
            out.append((nodes, float(ys.mean()), std, int(ys.size)))
        return out

    def relative_noise(self) -> float:
        """Pooled relative run-to-run scatter across replicated node counts.

        Returns 0.0 when no node count has replicates — callers fall back
        to unweighted fitting then.
        """
        ratios = [
            std / mean
            for _, mean, std, count in self.aggregate()
            if count > 1 and mean > 0
        ]
        return float(np.sqrt(np.mean(np.square(ratios)))) if ratios else 0.0

    def flagged_count(self) -> int:
        """Observations whose status is not "ok" (e.g. flagged stragglers)."""
        return sum(1 for o in self._obs if not o.clean)

    def pruned(self, *, min_points: int = 2) -> "ComponentBenchmark":
        """Drop flagged observations, but never below ``min_points``.

        Suite pruning for degraded campaigns: straggler-tagged timings are
        outliers by construction, so the fit is better off without them —
        unless dropping them would leave too few points to fit at all, in
        which case the flagged data (plus a robust loss) beats no data.
        """
        clean = [o for o in self._obs if o.clean]
        if len(clean) >= min_points and len(clean) < len(self._obs):
            return ComponentBenchmark(self.component, clean)
        return self

    def merged_with(self, other: "ComponentBenchmark") -> "ComponentBenchmark":
        if other.component != self.component:
            raise ValueError(
                f"cannot merge {other.component!r} into {self.component!r}"
            )
        return ComponentBenchmark(self.component, list(self._obs) + list(other._obs))

    def __repr__(self) -> str:
        return f"<ComponentBenchmark {self.component!r}: {len(self)} points>"


class BenchmarkSuite(Mapping[str, ComponentBenchmark]):
    """The full gather-step output: one :class:`ComponentBenchmark` per component."""

    def __init__(self, benchmarks: Iterable[ComponentBenchmark] = ()) -> None:
        self._by_component: dict[str, ComponentBenchmark] = {}
        for bench in benchmarks:
            self.add(bench)

    def add(self, bench: ComponentBenchmark) -> None:
        if bench.component in self._by_component:
            self._by_component[bench.component] = self._by_component[
                bench.component
            ].merged_with(bench)
        else:
            self._by_component[bench.component] = bench

    def __getitem__(self, component: str) -> ComponentBenchmark:
        return self._by_component[component]

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_component)

    def __len__(self) -> int:
        return len(self._by_component)

    @property
    def components(self) -> tuple[str, ...]:
        return tuple(self._by_component)

    def min_points(self) -> int:
        """Smallest per-component observation count (fit-quality guardrail)."""
        if not self._by_component:
            return 0
        return min(len(b) for b in self._by_component.values())

    def pruned(self, *, min_points: int = 2) -> "BenchmarkSuite":
        """Per-component straggler pruning (see :meth:`ComponentBenchmark.pruned`)."""
        return BenchmarkSuite(
            b.pruned(min_points=min_points) for b in self._by_component.values()
        )

    def degenerate_components(self, *, min_points: int = 2) -> dict[str, str]:
        """Components too thin to fit, with a human-readable reason each."""
        out: dict[str, str] = {}
        for name, bench in self._by_component.items():
            if len(bench) < min_points:
                out[name] = (
                    f"{len(bench)} usable observation(s); fitting needs "
                    f">= {min_points}"
                )
        return out

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}:{len(b)}" for name, b in self._by_component.items()
        )
        return f"<BenchmarkSuite {inner}>"
