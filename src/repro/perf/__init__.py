"""Performance-model substrate: the paper's Table II.

* :mod:`repro.perf.model` — the performance function
  ``T_j(n) = a_j/n + b_j n^{c_j} + d_j`` and its algebra;
* :mod:`repro.perf.data` — containers for benchmark observations
  ``(n_ji, y_ji)``;
* :mod:`repro.perf.fitting` — the constrained nonlinear least-squares fit
  (Table II line 10) with multistart and fit diagnostics.
"""

from repro.perf.data import BenchmarkSuite, ComponentBenchmark, ScalingObservation
from repro.perf.fitting import FitResult, fit_performance_model, fit_suite
from repro.perf.io import load_models, load_suite, save_models, save_suite
from repro.perf.model import PerformanceModel
from repro.perf.selection import (
    PowerLawModel,
    SelectionResult,
    fit_amdahl,
    fit_power_law,
    select_model,
)

__all__ = [
    "BenchmarkSuite",
    "ComponentBenchmark",
    "FitResult",
    "PerformanceModel",
    "PowerLawModel",
    "ScalingObservation",
    "SelectionResult",
    "fit_amdahl",
    "fit_performance_model",
    "fit_power_law",
    "fit_suite",
    "load_models",
    "load_suite",
    "save_models",
    "save_suite",
    "select_model",
]
