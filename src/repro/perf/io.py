"""JSON persistence for benchmark data and fitted models.

§III-F: "The data gathering step (1) can be avoided altogether if reliable
benchmarks are already available, for example, from previous experiments."
That only works if campaigns survive the session — this module gives
benchmark suites and fitted models a stable on-disk JSON form so a cluster's
timing history can accumulate across runs.

Format (versioned)::

    {
      "format": "hslb-benchmarks-v1",
      "components": {
        "atm": [[104, 306.95], [512, 98.81], ...],
        ...
      }
    }

    {
      "format": "hslb-models-v1",
      "models": {"atm": {"a": ..., "b": ..., "c": ..., "d": ...}, ...}
    }
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Mapping

from repro.perf.data import BenchmarkSuite, ComponentBenchmark, ScalingObservation
from repro.perf.model import PerformanceModel

BENCHMARKS_FORMAT = "hslb-benchmarks-v1"
MODELS_FORMAT = "hslb-models-v1"


def _observation_row(obs: ScalingObservation) -> list:
    """One JSON row: ``[nodes, seconds]``, plus an annotation object when the
    observation carries non-default failure/retry provenance.  Keeping the
    annotation optional (and the format id unchanged) makes the extension
    forward-compatible: files written before annotations existed still load,
    and old readers that only look at the first two entries still work."""
    row: list = [int(obs.nodes), float(obs.seconds)]
    note: dict = {}
    if obs.retries:
        note["retries"] = int(obs.retries)
    if obs.status != "ok":
        note["status"] = obs.status
    if note:
        row.append(note)
    return row


def suite_to_dict(suite: BenchmarkSuite) -> dict:
    """Serialize a benchmark suite to a plain JSON-ready dict."""
    return {
        "format": BENCHMARKS_FORMAT,
        "components": {
            name: [_observation_row(o) for o in suite[name]] for name in suite
        },
    }


def suite_from_dict(payload: Mapping) -> BenchmarkSuite:
    """Inverse of :func:`suite_to_dict`, with format validation."""
    fmt = payload.get("format")
    if fmt != BENCHMARKS_FORMAT:
        raise ValueError(
            f"expected format {BENCHMARKS_FORMAT!r}, got {fmt!r}"
        )
    components = payload.get("components")
    if not isinstance(components, Mapping):
        raise ValueError("missing 'components' mapping")
    suite = BenchmarkSuite()
    for name, rows in components.items():
        observations = []
        for row in rows:
            if not 2 <= len(row) <= 3:
                raise ValueError(f"{name}: malformed observation row {row!r}")
            nodes, seconds = row[0], row[1]
            ann = row[2] if len(row) == 3 else {}
            if not isinstance(ann, Mapping):
                raise ValueError(f"{name}: malformed annotation {ann!r}")
            observations.append(
                ScalingObservation(
                    int(nodes),
                    float(seconds),
                    retries=int(ann.get("retries", 0)),
                    status=str(ann.get("status", "ok")),
                )
            )
        suite.add(ComponentBenchmark(name, observations))
    return suite


def save_suite(suite: BenchmarkSuite, path: str | pathlib.Path) -> pathlib.Path:
    """Write a suite to ``path`` (pretty-printed JSON)."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(suite_to_dict(suite), indent=2, sort_keys=True) + "\n")
    return path


def load_suite(path: str | pathlib.Path) -> BenchmarkSuite:
    """Read a suite written by :func:`save_suite`."""
    return suite_from_dict(json.loads(pathlib.Path(path).read_text()))


def models_to_dict(models: Mapping[str, PerformanceModel]) -> dict:
    """Serialize fitted performance models."""
    return {
        "format": MODELS_FORMAT,
        "models": {
            name: {"a": m.a, "b": m.b, "c": m.c, "d": m.d}
            for name, m in models.items()
        },
    }


def models_from_dict(payload: Mapping) -> dict[str, PerformanceModel]:
    """Inverse of :func:`models_to_dict`, with format validation."""
    fmt = payload.get("format")
    if fmt != MODELS_FORMAT:
        raise ValueError(f"expected format {MODELS_FORMAT!r}, got {fmt!r}")
    models = payload.get("models")
    if not isinstance(models, Mapping):
        raise ValueError("missing 'models' mapping")
    return {
        name: PerformanceModel(
            a=float(p["a"]), b=float(p["b"]), c=float(p["c"]), d=float(p["d"])
        )
        for name, p in models.items()
    }


def save_models(
    models: Mapping[str, PerformanceModel], path: str | pathlib.Path
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(models_to_dict(models), indent=2, sort_keys=True) + "\n")
    return path


def load_models(path: str | pathlib.Path) -> dict[str, PerformanceModel]:
    return models_from_dict(json.loads(pathlib.Path(path).read_text()))
