"""The paper's performance function (Table II, line 1).

``T_j(n_j) = T^sca + T^nln + T^ser = a_j / n_j + b_j n_j^{c_j} + d_j`` where

* ``a/n``      — the perfectly-scalable contribution (Amdahl's parallel part);
* ``b n^c``    — the "everything else" term (communication, initialization,
  partially parallel code); on Intrepid this term was increasing, with
  ``b, c`` fitted "almost equal to zero";
* ``d``        — the serial floor that dominates at large ``n``.

All parameters are constrained nonnegative (Table II, line 11), which makes
each term — hence the sum — convex for ``c >= 1`` and guarantees the MINLP's
nonlinear constraints are convex (§III-E).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.minlp.expr import Expr, ExprLike, VarRef, as_expr
from repro.util.validation import check_positive


@dataclass(frozen=True)
class PerformanceModel:
    """Fitted (or ground-truth) parameters of ``T(n) = a/n + b n^c + d``."""

    a: float
    b: float = 0.0
    c: float = 1.0
    d: float = 0.0

    def __post_init__(self) -> None:
        check_positive("a", self.a, strict=False)
        check_positive("b", self.b, strict=False)
        check_positive("c", self.c, strict=False)
        check_positive("d", self.d, strict=False)

    @classmethod
    def amdahl(cls, parallel_time: float, serial_time: float) -> "PerformanceModel":
        """Pure Amdahl's-law model: ``T(n) = parallel/n + serial`` (b = 0)."""
        return cls(a=parallel_time, b=0.0, c=1.0, d=serial_time)

    # -- evaluation ------------------------------------------------------

    def time(self, n) -> np.ndarray | float:
        """Predicted wall-clock seconds on ``n`` nodes (scalar or array)."""
        n = np.asarray(n, dtype=float)
        if np.any(n <= 0):
            raise ValueError("node counts must be positive")
        out = self.a / n + self.b * n**self.c + self.d
        return float(out) if out.ndim == 0 else out

    __call__ = time

    def derivative(self, n) -> np.ndarray | float:
        """dT/dn — used by tests to confirm the symbolic path."""
        n = np.asarray(n, dtype=float)
        out = -self.a / n**2 + self.b * self.c * n ** (self.c - 1.0)
        return float(out) if out.ndim == 0 else out

    # -- algebra -------------------------------------------------------------

    def expression(self, n: ExprLike) -> Expr:
        """The model as a symbolic expression over node-count expression ``n``.

        This is how the HSLB formulation embeds fitted curves into the MINLP
        constraints of Table I.
        """
        n = as_expr(n) if not isinstance(n, str) else VarRef(n)
        terms: Expr = as_expr(self.d)
        if self.a:
            terms = terms + self.a / n
        if self.b:
            terms = terms + self.b * n**self.c
        return terms

    @property
    def is_convex(self) -> bool:
        """True when every term is convex on n > 0 (requires c >= 1 or b = 0)."""
        return self.b == 0.0 or self.c >= 1.0

    # -- analysis -------------------------------------------------------------

    def optimal_nodes(self, n_max: float = 1e9) -> float:
        """Continuous ``n`` minimizing T(n) (the cost-efficiency sweet spot).

        With ``b = 0`` the model is monotone decreasing, so the minimum sits
        at ``n_max``; otherwise solve ``T'(n) = 0``:
        ``n* = (a / (b c))^(1/(c+1))``.
        """
        if self.b == 0.0 or self.c == 0.0:
            return float(n_max)
        n_star = (self.a / (self.b * self.c)) ** (1.0 / (self.c + 1.0))
        return float(min(n_star, n_max))

    def efficiency(self, n) -> np.ndarray | float:
        """Parallel efficiency vs a single node: ``T(1) / (n T(n))``."""
        n = np.asarray(n, dtype=float)
        out = self.time(1.0) / (n * self.time(n))
        return float(out) if out.ndim == 0 else out

    def serial_fraction(self) -> float:
        """Amdahl serial fraction implied at n = 1: ``(b + d) / T(1)``."""
        total = self.time(1.0)
        return (self.b + self.d) / total if total > 0 else 0.0

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.a, self.b, self.c, self.d)

    def __repr__(self) -> str:
        return (
            f"PerformanceModel(a={self.a:.6g}, b={self.b:.6g}, "
            f"c={self.c:.6g}, d={self.d:.6g})"
        )
