"""Constrained nonlinear least squares for the performance model.

Implements Table II line 10::

    min_{a,b,c,d >= 0}  sum_i ( y_i - a/n_i - b n_i^{c} - d )^2

with an analytic Jacobian and multistart (the paper notes the problem "is,
in general, not convex, and there may be several locally optimal solutions
... selecting a different starting point may lead the solver to a different
local solution", and that different local optima "led to similar quality
node allocations" — tests pin both behaviours).

``convex=True`` additionally constrains ``c >= 1`` so the fitted model is
certifiably convex, which the outer-approximation solver needs for global
optimality (§III-E).  On well-scaling codes like CESM the fitted ``b`` is
nearly zero, so this restriction costs essentially nothing — a benchmark
quantifies that claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.obs.trace import span
from repro.perf.data import BenchmarkSuite, ComponentBenchmark
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng

#: Upper bound for the exponent c.  The paper's T^nln is a gentle correction
#: term; anything steeper than cubic is certainly noise amplification.
_C_MAX = 3.0


@dataclass(frozen=True)
class FitResult:
    """A fitted model plus the diagnostics the paper reports (notably R²)."""

    model: PerformanceModel
    r_squared: float
    rss: float
    n_points: int
    starts_tried: int

    @property
    def degrees_of_freedom(self) -> int:
        return max(0, self.n_points - 4)

    def __repr__(self) -> str:
        return (
            f"FitResult({self.model!r}, R^2={self.r_squared:.5f}, "
            f"rss={self.rss:.4g}, D={self.n_points})"
        )


def _residuals(params: np.ndarray, n: np.ndarray, y: np.ndarray) -> np.ndarray:
    a, b, c, d = params
    return y - (a / n + b * n**c + d)


def _jacobian(params: np.ndarray, n: np.ndarray, y: np.ndarray) -> np.ndarray:
    a, b, c, d = params
    nc = n**c
    J = np.empty((n.size, 4))
    J[:, 0] = -1.0 / n
    J[:, 1] = -nc
    J[:, 2] = -b * np.log(n) * nc
    J[:, 3] = -1.0
    return J


def _heuristic_start(n: np.ndarray, y: np.ndarray, c_min: float) -> np.ndarray:
    """A physically-motivated initial point.

    ``d`` starts at a fraction of the fastest time (the serial floor is at
    most the best time seen); ``a`` from the smallest-node observation with
    that floor removed; ``b`` tiny with the flattest admissible exponent —
    matching the paper's observation that b, c fit to "almost zero".
    """
    d0 = 0.5 * float(y.min())
    a0 = max((float(y[0]) - d0) * float(n[0]), 1e-6)
    b0 = 1e-6
    c0 = max(1.0, c_min)
    return np.array([a0, b0, c0, d0])


def fit_performance_model(
    nodes: np.ndarray,
    seconds: np.ndarray,
    *,
    convex: bool = True,
    multistart: int = 5,
    rng: np.random.Generator | None = None,
    weights: np.ndarray | None = None,
    loss: str = "linear",
) -> FitResult:
    """Fit ``T(n) = a/n + b n^c + d`` to observations by least squares.

    Parameters
    ----------
    nodes, seconds:
        Observation arrays (``D_j`` entries each, D >= 2 required; the paper
        recommends >= 4 and a benchmark quantifies why).
    convex:
        Constrain ``c >= 1`` so the fitted curve is convex (default, required
        by the OA solver).  ``False`` reproduces the paper's raw Table II
        bounds (``c >= 0``).
    multistart:
        Number of optimizer starts: one heuristic start plus random restarts.
    weights:
        Optional per-observation weights (1/sigma_i); residuals are scaled.
    loss:
        ``"linear"`` is the paper's plain least squares (Table II line 10).
        ``"huber"`` or ``"soft_l1"`` give robust fits that shrug off outlier
        benchmark runs (a node hiccup during the gather campaign) — §IV's
        "the weakest part of the HSLB algorithm is obtaining the actual
        performance data" risk, mitigated.  Residuals are scaled relative to
        the observed times so the robust threshold is resolution-independent.
    """
    if loss not in ("linear", "huber", "soft_l1"):
        raise ValueError(f"unknown loss {loss!r}")
    n = np.asarray(nodes, dtype=float)
    y = np.asarray(seconds, dtype=float)
    if n.shape != y.shape or n.ndim != 1:
        raise ValueError("nodes and seconds must be 1-D arrays of equal length")
    if n.size < 2:
        raise ValueError(f"need at least 2 observations to fit, got {n.size}")
    if np.any(n <= 0) or np.any(y <= 0):
        raise ValueError("node counts and times must be positive")
    if weights is not None:
        w = np.asarray(weights, dtype=float)
        if w.shape != n.shape or np.any(w <= 0):
            raise ValueError("weights must be positive and match observations")
    else:
        w = None
    if multistart < 1:
        raise ValueError("multistart must be >= 1")

    order = np.argsort(n)
    n, y = n[order], y[order]
    if w is not None:
        w = w[order]

    c_min = 1.0 if convex else 0.0
    lower = np.array([0.0, 0.0, c_min, 0.0])
    upper = np.array([np.inf, np.inf, _C_MAX, np.inf])

    def objective(params: np.ndarray) -> np.ndarray:
        r = _residuals(params, n, y)
        return r * w if w is not None else r

    def jac(params: np.ndarray) -> np.ndarray:
        J = _jacobian(params, n, y)
        return J * w[:, None] if w is not None else J

    rng = rng or default_rng()
    starts = [_heuristic_start(n, y, c_min)]
    y_scale = float(y.max())
    for _ in range(multistart - 1):
        starts.append(
            np.array(
                [
                    rng.uniform(0.0, 2.0 * y_scale * n[0]),
                    rng.uniform(0.0, 0.1 * y_scale / max(n[-1] ** c_min, 1.0)),
                    rng.uniform(c_min, _C_MAX),
                    rng.uniform(0.0, y.min()),
                ]
            )
        )

    # Robust losses need a residual scale: ~5% of the typical time means a
    # benchmark run more than a few percent off the curve stops dominating.
    f_scale = 0.05 * float(np.median(y)) if loss != "linear" else 1.0

    best_params: np.ndarray | None = None
    best_cost = math.inf
    best_rss = math.inf
    tried = 0
    for x0 in starts:
        tried += 1
        try:
            res = least_squares(
                objective,
                np.clip(x0, lower, upper),
                jac=jac,
                bounds=(lower, upper),
                method="trf",
                max_nfev=2000,
                loss=loss,
                f_scale=f_scale,
            )
        except (ValueError, FloatingPointError):
            continue
        cost = float(res.cost)
        if cost < best_cost:
            best_cost = cost
            best_rss = float(np.sum(_residuals(res.x, n, y) ** 2))
            best_params = res.x

    if best_params is None:
        raise RuntimeError("performance-model fit failed from every start")

    tss = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - best_rss / tss if tss > 0 else 1.0
    a, b, c, d = (float(v) for v in best_params)
    return FitResult(
        model=PerformanceModel(a=a, b=b, c=c, d=d),
        r_squared=r2,
        rss=best_rss,
        n_points=int(n.size),
        starts_tried=tried,
    )


def fit_component(
    bench: ComponentBenchmark,
    *,
    convex: bool = True,
    multistart: int = 5,
    rng: np.random.Generator | None = None,
    loss: str = "linear",
    weighted: bool = False,
) -> FitResult:
    """Fit one component's benchmark data.

    ``weighted=True`` aggregates replicates per node count and performs
    variance-weighted least squares: each mean observation is weighted by
    ``sqrt(count) / sigma`` with ``sigma`` the replicate standard deviation
    (falling back to the pooled relative scatter for un-replicated counts).
    With multiplicative timing noise this prevents the slow small-node runs
    from dominating the residual purely by magnitude.
    """
    if not weighted:
        n, y = bench.arrays()
        return fit_performance_model(
            n, y, convex=convex, multistart=multistart, rng=rng, loss=loss
        )
    rows = bench.aggregate()
    pooled = bench.relative_noise()
    n = np.array([r[0] for r in rows], dtype=float)
    y = np.array([r[1] for r in rows], dtype=float)
    sigmas = []
    for _, mean, std, count in rows:
        if std > 0:
            sigmas.append(std / math.sqrt(count))
        elif pooled > 0:
            sigmas.append(pooled * mean)
        else:
            sigmas.append(0.02 * mean)  # generic 2% prior scatter
    weights = 1.0 / np.maximum(np.array(sigmas), 1e-12)
    return fit_performance_model(
        n, y, convex=convex, multistart=multistart, rng=rng, loss=loss,
        weights=weights,
    )


def fit_suite(
    suite: BenchmarkSuite,
    *,
    convex: bool = True,
    multistart: int = 5,
    rng: np.random.Generator | None = None,
    loss: str = "linear",
    workers: int | None = None,
    skip_degenerate: bool = False,
    skipped: dict[str, str] | None = None,
) -> dict[str, FitResult]:
    """Fit every component in a suite (step 2 of the HSLB algorithm).

    ``skip_degenerate`` controls what happens when a component's benchmark
    data is degenerate (fewer than 2 usable points — e.g. after a degraded
    gather campaign pruned its failures): by default the first such
    component aborts the whole suite with ``ValueError``; with
    ``skip_degenerate=True`` the component is skipped and reported (in the
    optional ``skipped`` out-mapping, name -> reason) while every healthy
    component still gets its fit.

    ``workers`` fans the per-component fits out over a process pool —
    components are independent least-squares problems, so this is
    embarrassingly parallel.  Irrelevant for CESM's four components;
    worthwhile for FMO systems with dozens of fragments.  The parallel path
    spawns one child RNG per component (ordered by name) so results are
    deterministic regardless of scheduling.
    """
    rng = rng or default_rng()
    degenerate = suite.degenerate_components(min_points=2)
    if degenerate:
        if not skip_degenerate:
            name, reason = next(iter(sorted(degenerate.items())))
            raise ValueError(f"component {name!r} is unfittable: {reason}")
        if skipped is not None:
            skipped.update(degenerate)
    fittable = [name for name in suite if name not in degenerate]
    if workers is not None and workers > 1 and len(fittable) > 1:
        from concurrent.futures import ProcessPoolExecutor

        from repro.util.rng import spawn_rng

        names = sorted(fittable)
        streams = spawn_rng(rng, len(names))
        with span("fit.pool", workers=workers, components=len(names)):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    name: pool.submit(
                        fit_component,
                        suite[name],
                        convex=convex,
                        multistart=multistart,
                        rng=stream,
                        loss=loss,
                    )
                    for name, stream in zip(names, streams)
                }
                return {name: fut.result() for name, fut in futures.items()}
    fits: dict[str, FitResult] = {}
    for name in fittable:
        with span("fit.component", component=name) as sp:
            fit = fit_component(
                suite[name], convex=convex, multistart=multistart, rng=rng, loss=loss
            )
            sp.set_tag("r_squared", round(fit.r_squared, 6))
            sp.set_tag("points", fit.n_points)
        fits[name] = fit
    return fits


def leave_one_out_rmse(
    bench: ComponentBenchmark,
    *,
    convex: bool = True,
    rng: np.random.Generator | None = None,
) -> float:
    """Leave-one-out prediction RMSE — a sharper fit-quality diagnostic than
    in-sample R² when deciding whether more benchmark points are needed."""
    n, y = bench.arrays()
    if n.size < 3:
        raise ValueError("leave-one-out needs at least 3 observations")
    errors = []
    for i in range(n.size):
        mask = np.arange(n.size) != i
        fit = fit_performance_model(n[mask], y[mask], convex=convex, rng=rng)
        errors.append(float(fit.model.time(n[i])) - y[i])
    return float(np.sqrt(np.mean(np.square(errors))))
