"""Algebraic expression trees with evaluation and symbolic differentiation.

This module is the foundation of the MINLP toolkit (the stand-in for the
automatic-differentiation service AMPL provided to MINOTAUR in the paper).
Expressions are immutable trees built with ordinary Python operators::

    x = VarRef("x")
    f = 3.0 / x + 2.0 * x ** 1.5 + 1.0   # a/n + b*n^c + d
    f.evaluate({"x": 4.0})
    g = f.diff("x")                       # symbolic derivative, also an Expr

Design notes
------------
* Nodes are hashable and structurally comparable, which lets callers
  de-duplicate cuts and lets tests assert on simplified forms.
* ``evaluate`` accepts scalars **or numpy arrays** in the value mapping, so
  a single expression vectorizes over a sweep of points for free (this is
  the numpy-broadcasting idiom: no per-point Python loop).
* Constant folding happens at construction time (``x*0 -> 0``, ``x+0 -> x``
  etc.), keeping derivative trees small without a separate simplifier pass.
* ``linear_coefficients`` extracts ``(coeffs, constant)`` when an expression
  is affine; LP/MILP layers use it to route linear constraints away from the
  nonlinear machinery.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from typing import Union

import numpy as np

Number = Union[int, float]
ExprLike = Union["Expr", Number]

_EVAL_FUNCS = {
    "log": np.log,
    "exp": np.exp,
    "sqrt": np.sqrt,
}


def as_expr(value: ExprLike) -> "Expr":
    """Coerce a Python number into a :class:`Constant`; pass through Exprs."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return Constant(float(value))
    raise TypeError(f"cannot interpret {value!r} as an expression")


class Expr:
    """Base class for immutable expression nodes."""

    __slots__ = ()

    # -- construction via operators ------------------------------------

    def __add__(self, other: ExprLike) -> "Expr":
        return _add(self, as_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return _add(as_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return _add(self, _neg(as_expr(other)))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return _add(as_expr(other), _neg(self))

    def __mul__(self, other: ExprLike) -> "Expr":
        return _mul(self, as_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return _mul(as_expr(other), self)

    def __truediv__(self, other: ExprLike) -> "Expr":
        return _div(self, as_expr(other))

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return _div(as_expr(other), self)

    def __pow__(self, other: ExprLike) -> "Expr":
        return _pow(self, as_expr(other))

    def __rpow__(self, other: ExprLike) -> "Expr":
        return _pow(as_expr(other), self)

    def __neg__(self) -> "Expr":
        return _neg(self)

    def __pos__(self) -> "Expr":
        return self

    # -- relations (used by the modeling layer) -------------------------

    def __le__(self, other: ExprLike) -> "Relation":
        return Relation(self - as_expr(other), lb=-math.inf, ub=0.0)

    def __ge__(self, other: ExprLike) -> "Relation":
        return Relation(self - as_expr(other), lb=0.0, ub=math.inf)

    # NOTE: __eq__ stays structural equality (below); use Relation.equals /
    # ``Model.add(expr, eq=rhs)`` for equality constraints.

    # -- core protocol ---------------------------------------------------

    def evaluate(self, values: Mapping[str, Number | np.ndarray]):
        """Evaluate with variable values from ``values`` (scalars or arrays)."""
        raise NotImplementedError

    def diff(self, var: str) -> "Expr":
        """Return the partial derivative with respect to variable ``var``."""
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """Names of all variables appearing in the tree."""
        raise NotImplementedError

    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def children(self) -> tuple["Expr", ...]:
        return ()

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expr) and self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self._key())

    # -- analysis ----------------------------------------------------------

    def is_linear(self) -> bool:
        """True if the expression is affine in its variables."""
        try:
            self.linear_coefficients()
        except NonlinearExpressionError:
            return False
        return True

    def linear_coefficients(self) -> tuple[dict[str, float], float]:
        """Decompose an affine expression into ``(coeffs, constant)``.

        Raises :class:`NonlinearExpressionError` for nonlinear trees.
        """
        raise NotImplementedError

    def gradient(self, values: Mapping[str, Number]) -> dict[str, float]:
        """Evaluate all partial derivatives at ``values``."""
        return {v: float(self.diff(v).evaluate(values)) for v in self.variables()}

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Return a copy with variables replaced by expressions."""
        raise NotImplementedError


class NonlinearExpressionError(ValueError):
    """Raised when linear coefficients are requested from a nonlinear tree."""


class Constant(Expr):
    """A literal floating-point value."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        if isinstance(value, bool) or not isinstance(
            value, (int, float, np.integer, np.floating)
        ):
            raise TypeError(f"Constant requires a number, got {value!r}")
        object.__setattr__(self, "value", float(value))

    def __setattr__(self, *a):  # immutability guard
        raise AttributeError("Expr nodes are immutable")

    def evaluate(self, values):
        return self.value

    def diff(self, var: str) -> Expr:
        return ZERO

    def variables(self) -> frozenset[str]:
        return frozenset()

    def linear_coefficients(self):
        return {}, self.value

    def substitute(self, mapping):
        return self

    def _key(self):
        return ("const", self.value)

    def __repr__(self) -> str:
        return f"{self.value:g}"


class VarRef(Expr):
    """A reference to a decision variable, identified by name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"variable name must be a non-empty string: {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, *a):
        raise AttributeError("Expr nodes are immutable")

    def evaluate(self, values):
        try:
            return values[self.name]
        except KeyError:
            raise KeyError(f"no value provided for variable {self.name!r}") from None

    def diff(self, var: str) -> Expr:
        return ONE if var == self.name else ZERO

    def variables(self) -> frozenset[str]:
        return frozenset((self.name,))

    def linear_coefficients(self):
        return {self.name: 1.0}, 0.0

    def substitute(self, mapping):
        return mapping.get(self.name, self)

    def _key(self):
        return ("var", self.name)

    def __repr__(self) -> str:
        return self.name


class _NAry(Expr):
    __slots__ = ("terms",)

    def __init__(self, terms: tuple[Expr, ...]) -> None:
        object.__setattr__(self, "terms", terms)

    def __setattr__(self, *a):
        raise AttributeError("Expr nodes are immutable")

    def children(self):
        return self.terms

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for t in self.terms:
            out |= t.variables()
        return out


class Add(_NAry):
    """Sum of two or more terms (flattened at construction)."""

    __slots__ = ()

    def evaluate(self, values):
        total = self.terms[0].evaluate(values)
        for t in self.terms[1:]:
            total = total + t.evaluate(values)
        return total

    def diff(self, var: str) -> Expr:
        return sum_exprs([t.diff(var) for t in self.terms])

    def linear_coefficients(self):
        coeffs: dict[str, float] = {}
        const = 0.0
        for t in self.terms:
            c, k = t.linear_coefficients()
            const += k
            for name, v in c.items():
                coeffs[name] = coeffs.get(name, 0.0) + v
        return coeffs, const

    def substitute(self, mapping):
        return sum_exprs([t.substitute(mapping) for t in self.terms])

    def _key(self):
        return ("add",) + tuple(t._key() for t in self.terms)

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.terms)) + ")"


class Mul(_NAry):
    """Product of two or more factors (flattened at construction)."""

    __slots__ = ()

    def evaluate(self, values):
        total = self.terms[0].evaluate(values)
        for t in self.terms[1:]:
            total = total * t.evaluate(values)
        return total

    def diff(self, var: str) -> Expr:
        # Product rule over n factors.
        parts = []
        for i, t in enumerate(self.terms):
            dt = t.diff(var)
            if dt == ZERO:
                continue
            others = [f for j, f in enumerate(self.terms) if j != i]
            parts.append(prod_exprs([dt] + others))
        return sum_exprs(parts)

    def linear_coefficients(self):
        # Affine only when at most one factor is non-constant and that factor
        # is itself affine.
        const_part = 1.0
        nonconst: list[Expr] = []
        for t in self.terms:
            if isinstance(t, Constant):
                const_part *= t.value
            else:
                nonconst.append(t)
        if not nonconst:
            return {}, const_part
        if len(nonconst) > 1:
            raise NonlinearExpressionError(f"nonlinear product: {self!r}")
        coeffs, k = nonconst[0].linear_coefficients()
        return {n: v * const_part for n, v in coeffs.items()}, k * const_part

    def substitute(self, mapping):
        return prod_exprs([t.substitute(mapping) for t in self.terms])

    def _key(self):
        return ("mul",) + tuple(t._key() for t in self.terms)

    def __repr__(self) -> str:
        return "(" + " * ".join(map(repr, self.terms)) + ")"


class Div(Expr):
    """Quotient ``num / den``."""

    __slots__ = ("num", "den")

    def __init__(self, num: Expr, den: Expr) -> None:
        object.__setattr__(self, "num", num)
        object.__setattr__(self, "den", den)

    def __setattr__(self, *a):
        raise AttributeError("Expr nodes are immutable")

    def children(self):
        return (self.num, self.den)

    def evaluate(self, values):
        den = self.den.evaluate(values)
        return self.num.evaluate(values) / den

    def diff(self, var: str) -> Expr:
        # (u/v)' = u'/v - u v'/v^2
        du = self.num.diff(var)
        dv = self.den.diff(var)
        terms = []
        if du != ZERO:
            terms.append(_div(du, self.den))
        if dv != ZERO:
            terms.append(_neg(_div(_mul(self.num, dv), _pow(self.den, Constant(2.0)))))
        return sum_exprs(terms)

    def variables(self) -> frozenset[str]:
        return self.num.variables() | self.den.variables()

    def linear_coefficients(self):
        if isinstance(self.den, Constant):
            if self.den.value == 0.0:
                raise ZeroDivisionError(f"constant division by zero in {self!r}")
            coeffs, k = self.num.linear_coefficients()
            return {n: v / self.den.value for n, v in coeffs.items()}, k / self.den.value
        raise NonlinearExpressionError(f"nonlinear quotient: {self!r}")

    def substitute(self, mapping):
        return _div(self.num.substitute(mapping), self.den.substitute(mapping))

    def _key(self):
        return ("div", self.num._key(), self.den._key())

    def __repr__(self) -> str:
        return f"({self.num!r} / {self.den!r})"


class Pow(Expr):
    """Power ``base ** exponent`` (either side may contain variables)."""

    __slots__ = ("base", "exponent")

    def __init__(self, base: Expr, exponent: Expr) -> None:
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "exponent", exponent)

    def __setattr__(self, *a):
        raise AttributeError("Expr nodes are immutable")

    def children(self):
        return (self.base, self.exponent)

    def evaluate(self, values):
        base = self.base.evaluate(values)
        exponent = self.exponent.evaluate(values)
        return np.power(base, exponent) if isinstance(
            base, np.ndarray
        ) or isinstance(exponent, np.ndarray) else math.pow(base, exponent)

    def diff(self, var: str) -> Expr:
        db = self.base.diff(var)
        de = self.exponent.diff(var)
        if de == ZERO:
            if db == ZERO:
                return ZERO
            # d/dx b(x)^k = k * b^(k-1) * b'
            return prod_exprs(
                [self.exponent, _pow(self.base, self.exponent - 1.0), db]
            )
        if db == ZERO:
            # d/dx k^e(x) = k^e * ln(k) * e'
            return prod_exprs([self, log(self.base), de])
        # General case: b^e = exp(e ln b)
        return _mul(self, _add(_mul(de, log(self.base)), _div(_mul(self.exponent, db), self.base)))

    def variables(self) -> frozenset[str]:
        return self.base.variables() | self.exponent.variables()

    def linear_coefficients(self):
        if not self.variables():
            return {}, float(self.evaluate({}))
        if isinstance(self.exponent, Constant) and self.exponent.value == 1.0:
            return self.base.linear_coefficients()
        raise NonlinearExpressionError(f"nonlinear power: {self!r}")

    def substitute(self, mapping):
        return _pow(self.base.substitute(mapping), self.exponent.substitute(mapping))

    def _key(self):
        return ("pow", self.base._key(), self.exponent._key())

    def __repr__(self) -> str:
        return f"({self.base!r} ** {self.exponent!r})"


class Unary(Expr):
    """Elementary transcendental function applied to a sub-expression."""

    __slots__ = ("func", "arg")

    _DERIVS = {
        # f -> lambda arg: f'(arg) as an Expr factory
        "log": lambda arg: _div(ONE, arg),
        "exp": lambda arg: Unary("exp", arg),
        "sqrt": lambda arg: _div(Constant(0.5), Unary("sqrt", arg)),
    }

    def __init__(self, func: str, arg: Expr) -> None:
        if func not in _EVAL_FUNCS:
            raise ValueError(f"unsupported function {func!r}")
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "arg", arg)

    def __setattr__(self, *a):
        raise AttributeError("Expr nodes are immutable")

    def children(self):
        return (self.arg,)

    def evaluate(self, values):
        arg = self.arg.evaluate(values)
        if isinstance(arg, np.ndarray):
            return _EVAL_FUNCS[self.func](arg)
        return float(_EVAL_FUNCS[self.func](arg))

    def diff(self, var: str) -> Expr:
        da = self.arg.diff(var)
        if da == ZERO:
            return ZERO
        return _mul(self._DERIVS[self.func](self.arg), da)

    def variables(self) -> frozenset[str]:
        return self.arg.variables()

    def linear_coefficients(self):
        if not self.variables():
            return {}, float(self.evaluate({}))
        raise NonlinearExpressionError(f"nonlinear function: {self!r}")

    def substitute(self, mapping):
        return Unary(self.func, self.arg.substitute(mapping))

    def _key(self):
        return ("unary", self.func, self.arg._key())

    def __repr__(self) -> str:
        return f"{self.func}({self.arg!r})"


class Relation:
    """A one- or two-sided constraint ``lb <= body <= ub`` on an expression.

    Produced by ``expr <= rhs`` / ``expr >= rhs`` comparisons, or explicitly
    for equalities and ranges.  Consumed by the modeling layer.
    """

    __slots__ = ("body", "lb", "ub")

    def __init__(self, body: Expr, lb: float, ub: float) -> None:
        if lb > ub:
            raise ValueError(f"infeasible relation bounds: lb={lb} > ub={ub}")
        self.body = body
        self.lb = float(lb)
        self.ub = float(ub)

    @classmethod
    def equals(cls, lhs: ExprLike, rhs: ExprLike) -> "Relation":
        """Build the equality constraint ``lhs == rhs``."""
        body = as_expr(lhs) - as_expr(rhs)
        return cls(body, 0.0, 0.0)

    def __repr__(self) -> str:
        return f"Relation({self.lb} <= {self.body!r} <= {self.ub})"


# ---------------------------------------------------------------------------
# Simplifying constructors
# ---------------------------------------------------------------------------

ZERO = Constant(0.0)
ONE = Constant(1.0)


def _add(a: Expr, b: Expr) -> Expr:
    terms: list[Expr] = []
    const = 0.0
    for t in (a, b):
        if isinstance(t, Add):
            sub = t.terms
        else:
            sub = (t,)
        for s in sub:
            if isinstance(s, Constant):
                const += s.value
            else:
                terms.append(s)
    if const != 0.0 or not terms:
        terms.append(Constant(const))
    if len(terms) == 1:
        return terms[0]
    return Add(tuple(terms))


def _neg(a: Expr) -> Expr:
    if isinstance(a, Constant):
        return Constant(-a.value)
    return _mul(Constant(-1.0), a)


def _mul(a: Expr, b: Expr) -> Expr:
    factors: list[Expr] = []
    const = 1.0
    for t in (a, b):
        if isinstance(t, Mul):
            sub = t.terms
        else:
            sub = (t,)
        for s in sub:
            if isinstance(s, Constant):
                const *= s.value
            else:
                factors.append(s)
    if const == 0.0:
        return ZERO
    if const != 1.0 or not factors:
        factors.insert(0, Constant(const))
    if len(factors) == 1:
        return factors[0]
    return Mul(tuple(factors))


def _div(a: Expr, b: Expr) -> Expr:
    if isinstance(b, Constant):
        if b.value == 0.0:
            raise ZeroDivisionError("division by constant zero")
        if b.value == 1.0:
            return a
        if isinstance(a, Constant):
            return Constant(a.value / b.value)
        return _mul(Constant(1.0 / b.value), a)
    if isinstance(a, Constant) and a.value == 0.0:
        return ZERO
    return Div(a, b)


def _pow(a: Expr, b: Expr) -> Expr:
    if isinstance(b, Constant):
        if b.value == 0.0:
            return ONE
        if b.value == 1.0:
            return a
        if isinstance(a, Constant):
            return Constant(math.pow(a.value, b.value))
    return Pow(a, b)


def sum_exprs(terms: list[Expr]) -> Expr:
    """Sum a list of expressions (ZERO for an empty list)."""
    out: Expr = ZERO
    for t in terms:
        out = _add(out, t)
    return out


def prod_exprs(factors: list[Expr]) -> Expr:
    """Multiply a list of expressions (ONE for an empty list)."""
    out: Expr = ONE
    for f in factors:
        out = _mul(out, f)
    return out


def log(arg: ExprLike) -> Expr:
    """Natural logarithm node (constant-folds a constant argument)."""
    arg = as_expr(arg)
    if isinstance(arg, Constant):
        return Constant(math.log(arg.value))
    return Unary("log", arg)


def exp(arg: ExprLike) -> Expr:
    """Exponential node (constant-folds a constant argument)."""
    arg = as_expr(arg)
    if isinstance(arg, Constant):
        return Constant(math.exp(arg.value))
    return Unary("exp", arg)


def sqrt(arg: ExprLike) -> Expr:
    """Square-root node (constant-folds a constant argument)."""
    arg = as_expr(arg)
    if isinstance(arg, Constant):
        return Constant(math.sqrt(arg.value))
    return Unary("sqrt", arg)


def linearize(expr: Expr, point: Mapping[str, float]) -> Expr:
    """First-order Taylor expansion of ``expr`` around ``point``.

    This is the outer-approximation cut generator (paper eq. (4)):
    ``f(x0) + ∇f(x0)ᵀ (x − x0)`` returned as an affine :class:`Expr`.
    """
    f0 = float(expr.evaluate(point))
    terms: list[Expr] = [Constant(f0)]
    for name in sorted(expr.variables()):
        g = float(expr.diff(name).evaluate(point))
        if g != 0.0:
            terms.append(Constant(g) * (VarRef(name) - float(point[name])))
    return sum_exprs(terms)
