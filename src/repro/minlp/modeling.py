"""AMPL/Pyomo-style algebraic modeling layer.

The paper writes its optimization models in AMPL.  This module plays that
role: you declare variables, state constraints with ordinary ``<=``/``>=``
comparisons, and :meth:`Model.build` compiles the result into a flat
:class:`repro.minlp.problem.Problem` with automatic derivatives available
through the expression trees.

Example — the fitting problem of Table II would read::

    m = Model("fit")
    a, b, c, d = (m.var(s, lb=0.0) for s in "abcd")
    residuals = [y - (a / n + b * n ** c + d) for n, y in data]
    m.minimize(sum(r * r for r in residuals))
    problem = m.build()
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.minlp.expr import Expr, ExprLike, Relation, VarRef, as_expr
from repro.minlp.problem import Domain, Problem, Sense


class Model:
    """A declarative optimization model that compiles to a :class:`Problem`."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._vars: dict[str, tuple[float, float, Domain]] = {}
        self._cons: list[tuple[str, Relation]] = []
        self._sos1: list[tuple[str, tuple[str, ...], tuple[float, ...]]] = []
        self._objective: Expr = as_expr(0.0)
        self._sense = Sense.MINIMIZE
        self._auto_con = 0

    # -- variables -----------------------------------------------------

    def var(
        self,
        name: str,
        lb: float = -math.inf,
        ub: float = math.inf,
        *,
        domain: Domain = Domain.CONTINUOUS,
    ) -> VarRef:
        """Declare a continuous/integer variable and return a reference to it."""
        if name in self._vars:
            raise ValueError(f"duplicate variable {name!r}")
        self._vars[name] = (float(lb), float(ub), domain)
        return VarRef(name)

    def integer_var(self, name: str, lb: float = 0.0, ub: float = math.inf) -> VarRef:
        """Declare an integer variable."""
        return self.var(name, lb, ub, domain=Domain.INTEGER)

    def binary_var(self, name: str) -> VarRef:
        """Declare a 0/1 variable."""
        return self.var(name, 0.0, 1.0, domain=Domain.BINARY)

    def var_list(
        self,
        prefix: str,
        count: int,
        lb: float = -math.inf,
        ub: float = math.inf,
        *,
        domain: Domain = Domain.CONTINUOUS,
    ) -> list[VarRef]:
        """Declare ``count`` variables named ``prefix[0] .. prefix[count-1]``."""
        return [self.var(f"{prefix}[{i}]", lb, ub, domain=domain) for i in range(count)]

    # -- constraints ------------------------------------------------------

    def add(self, relation: Relation, name: str | None = None) -> str:
        """Add a constraint built from a comparison, e.g. ``m.add(x + y <= 5)``."""
        if not isinstance(relation, Relation):
            raise TypeError(
                "Model.add expects a Relation (build one with `expr <= rhs`, "
                "`expr >= rhs`, or Relation.equals)"
            )
        if name is None:
            name = f"c{self._auto_con}"
            self._auto_con += 1
        if any(n == name for n, _ in self._cons):
            raise ValueError(f"duplicate constraint name {name!r}")
        self._cons.append((name, relation))
        return name

    def add_equals(self, lhs: ExprLike, rhs: ExprLike, name: str | None = None) -> str:
        """Add an equality constraint ``lhs == rhs``."""
        return self.add(Relation.equals(lhs, rhs), name)

    def sos1(
        self,
        members: Sequence[VarRef],
        weights: Sequence[float] | None = None,
        name: str | None = None,
    ) -> str:
        """Declare a special-ordered set of type 1 over ``members``.

        ``weights`` default to 1..len(members); they give the branching order
        used by the SOS-aware branch-and-bound (paper §III-E).
        """
        names = tuple(v.name for v in members)
        if weights is None:
            weights = tuple(float(i + 1) for i in range(len(names)))
        if name is None:
            name = f"sos1_{len(self._sos1)}"
        self._sos1.append((name, names, tuple(float(w) for w in weights)))
        return name

    # -- objective --------------------------------------------------------

    def minimize(self, expr: ExprLike) -> None:
        """Set a minimization objective."""
        self._objective = as_expr(expr)
        self._sense = Sense.MINIMIZE

    def maximize(self, expr: ExprLike) -> None:
        """Set a maximization objective."""
        self._objective = as_expr(expr)
        self._sense = Sense.MAXIMIZE

    # -- compilation ---------------------------------------------------------

    def build(self) -> Problem:
        """Compile the model into a solver-ready :class:`Problem`.

        Constant terms in a relation body are folded into the bounds so the
        flat problem's constraint bodies always reference at least one
        variable.
        """
        prob = Problem(self.name)
        for name, (lb, ub, domain) in self._vars.items():
            prob.add_variable(name, lb, ub, domain)
        for name, rel in self._cons:
            body = rel.body
            lb, ub = rel.lb, rel.ub
            if body.is_constant():
                value = float(body.evaluate({}))
                if not (lb <= value <= ub):
                    raise ValueError(
                        f"constraint {name!r} is constant and infeasible: "
                        f"{lb} <= {value} <= {ub}"
                    )
                continue  # trivially true; drop
            prob.add_constraint(name, body, lb, ub)
        for name, members, weights in self._sos1:
            prob.add_sos1(name, members, weights)
        prob.set_objective(self._objective, self._sense)
        return prob

    def __repr__(self) -> str:
        return (
            f"<Model {self.name!r}: {len(self._vars)} vars, "
            f"{len(self._cons)} cons, {len(self._sos1)} SOS1>"
        )
