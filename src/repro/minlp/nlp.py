"""Nonlinear-programming layer: continuous relaxation / subproblem solves.

Plays the role filterSQP plays inside MINOTAUR: given a (continuous)
:class:`Problem`, find a KKT point.  Objective/constraint gradients come from
the symbolic differentiation in :mod:`repro.minlp.expr` — no finite
differencing.  Because the load-balancing models in this library are convex
(all fitted coefficients nonnegative, exponents >= 1), a local solution is
global; for general use a ``multistart`` option restarts from random interior
points and keeps the best feasible result.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import minimize

from repro.minlp.expr import Expr
from repro.minlp.problem import Problem, vector_to_values
from repro.minlp.solution import Solution, SolveStats, Status
from repro.util.rng import default_rng
from repro.util.timing import Timer

#: Fallback half-width of the sampling box for unbounded variables.
_BIG = 1e4


class _Compiled:
    """Expression compiled against a fixed variable ordering.

    Affine expressions get a constant gradient straight from their
    coefficients — no symbolic differentiation.  This matters: HSLB masters
    carry sum-over-hundreds-of-binaries rows whose term-by-term product-rule
    walk would dominate solve time.
    """

    def __init__(self, expr: Expr, names: tuple[str, ...]) -> None:
        self.expr = expr
        self.names = names
        self._const_grad: np.ndarray | None = None
        self.grad_exprs: list[Expr] | None = None
        try:
            coeffs, _ = expr.linear_coefficients()
        except Exception:
            active = expr.variables()
            # Only differentiate w.r.t. variables that actually appear.
            self.grad_exprs = [
                expr.diff(n) if n in active else None for n in names
            ]
        else:
            self._const_grad = np.array(
                [coeffs.get(n, 0.0) for n in names], dtype=float
            )

    def value(self, x: np.ndarray) -> float:
        return float(self.expr.evaluate(dict(zip(self.names, x))))

    def grad(self, x: np.ndarray) -> np.ndarray:
        if self._const_grad is not None:
            return self._const_grad.copy()
        values = dict(zip(self.names, x))
        return np.array(
            [0.0 if g is None else g.evaluate(values) for g in self.grad_exprs],
            dtype=float,
        )


def _sample_box(problem: Problem, rng: np.random.Generator) -> np.ndarray:
    lo = np.array([max(v.lb, -_BIG) for v in problem.variables])
    hi = np.array([min(v.ub, _BIG) for v in problem.variables])
    return rng.uniform(lo, hi)


def _initial_point(problem: Problem) -> np.ndarray:
    """Deterministic starting point: the box midpoint, clipped to finite."""
    x0 = []
    for v in problem.variables:
        lb = v.lb if math.isfinite(v.lb) else -_BIG
        ub = v.ub if math.isfinite(v.ub) else _BIG
        x0.append(0.5 * (lb + ub))
    return np.array(x0)


def solve_nlp(
    problem: Problem,
    x0: np.ndarray | dict[str, float] | None = None,
    *,
    multistart: int = 1,
    method: str = "SLSQP",
    tol: float = 1e-9,
    feas_tol: float = 1e-6,
    max_iter: int = 300,
    rng: np.random.Generator | None = None,
) -> Solution:
    """Solve the continuous problem, ignoring integrality and SOS1 sets.

    Parameters mirror a classical NLP driver: optional warm start ``x0``,
    ``multistart`` extra random restarts, and scipy ``method`` selection
    (``SLSQP`` or ``trust-constr``).  Returns the best feasible KKT point
    found; ``Status.INFEASIBLE`` when every start ends infeasible.
    """
    if method not in ("SLSQP", "trust-constr"):
        raise ValueError(f"unsupported NLP method {method!r}")

    # Substitute out variables pinned by equal bounds.  SLSQP mishandles
    # degenerate lb == ub box constraints (it can declare success at an
    # arbitrary feasible point), and branch-and-bound produces exactly such
    # problems constantly — so the reduction is done here, once, for every
    # caller.
    reduced = problem.reduce_fixed()
    if reduced is None:
        return Solution(
            Status.INFEASIBLE,
            stats=SolveStats(nlp_solves=1),
            message="fixed variables violate a constraint",
        )
    small, pinned = reduced
    if pinned:
        if small.num_variables == 0:
            values = dict(pinned)
            viol = max((c.violation(values) for c in problem.constraints), default=0.0)
            if viol > feas_tol:
                return Solution(
                    Status.INFEASIBLE,
                    stats=SolveStats(nlp_solves=1),
                    message="fully pinned and infeasible",
                )
            return Solution(
                Status.OPTIMAL,
                values=values,
                objective=problem.objective_value(values),
                stats=SolveStats(nlp_solves=1),
            )
        if isinstance(x0, dict):
            x0 = {k: v for k, v in x0.items() if k in small.variable_names}
        elif x0 is not None:
            full = dict(zip(problem.variable_names, np.asarray(x0, dtype=float)))
            x0 = {k: v for k, v in full.items() if k in small.variable_names}
        inner = solve_nlp(
            small,
            x0,
            multistart=multistart,
            method=method,
            tol=tol,
            feas_tol=feas_tol,
            max_iter=max_iter,
            rng=rng,
        )
        if inner.status.is_ok:
            inner.values = {**inner.values, **pinned}
        return inner

    names = problem.variable_names
    sign = -1.0 if problem.sense.value == "maximize" else 1.0

    obj = _Compiled(problem.objective, names)
    lo = np.array([v.lb for v in problem.variables])
    hi = np.array([v.ub for v in problem.variables])

    def fun(x: np.ndarray) -> float:
        return sign * obj.value(np.clip(x, lo, hi))

    def jac(x: np.ndarray) -> np.ndarray:
        return sign * obj.grad(np.clip(x, lo, hi))

    # scipy's dict-constraint convention: ineq means g(x) >= 0.
    cons = []
    for con in problem.constraints:
        comp = _Compiled(con.body, names)
        if con.is_equality:
            cons.append(
                {
                    "type": "eq",
                    "fun": (lambda x, c=comp, b=con.lb: c.value(np.clip(x, lo, hi)) - b),
                    "jac": (lambda x, c=comp: c.grad(np.clip(x, lo, hi))),
                }
            )
            continue
        if math.isfinite(con.ub):
            cons.append(
                {
                    "type": "ineq",
                    "fun": (lambda x, c=comp, b=con.ub: b - c.value(np.clip(x, lo, hi))),
                    "jac": (lambda x, c=comp: -c.grad(np.clip(x, lo, hi))),
                }
            )
        if math.isfinite(con.lb):
            cons.append(
                {
                    "type": "ineq",
                    "fun": (lambda x, c=comp, b=con.lb: c.value(np.clip(x, lo, hi)) - b),
                    "jac": (lambda x, c=comp: c.grad(np.clip(x, lo, hi))),
                }
            )

    bounds = [
        (v.lb if math.isfinite(v.lb) else None, v.ub if math.isfinite(v.ub) else None)
        for v in problem.variables
    ]

    starts: list[np.ndarray] = []
    if x0 is not None:
        if isinstance(x0, dict):
            # Partial warm starts are fine: unnamed variables begin at the
            # default midpoint, and out-of-bounds donor values are clipped.
            defaults = _initial_point(problem)
            point = np.array(
                [float(x0.get(n, d)) for n, d in zip(names, defaults)]
            )
            starts.append(np.clip(point, lo, hi))
        else:
            starts.append(np.asarray(x0, dtype=float))
    else:
        starts.append(_initial_point(problem))
    if multistart > 1:
        rng = rng or default_rng()
        starts.extend(_sample_box(problem, rng) for _ in range(multistart - 1))

    stats = SolveStats()
    best: Solution | None = None
    timer = Timer().start()
    for start in starts:
        stats.nlp_solves += 1
        try:
            res = minimize(
                fun,
                np.clip(start, lo, hi),
                jac=jac,
                bounds=bounds,
                constraints=cons,
                method=method,
                tol=tol,
                options={"maxiter": max_iter},
            )
        except (ValueError, FloatingPointError, ZeroDivisionError, OverflowError):
            continue
        x = np.clip(np.asarray(res.x, dtype=float), lo, hi)
        values = vector_to_values(problem, x)
        viol = max(
            (c.violation(values) for c in problem.constraints), default=0.0
        )
        if viol > feas_tol:
            continue
        objective = problem.objective_value(values)
        better = best is None or (
            sign * objective < sign * best.objective - 1e-12
        )
        if better:
            best = Solution(
                Status.OPTIMAL if res.success else Status.FEASIBLE,
                values=values,
                objective=objective,
                bound=-math.inf if sign > 0 else math.inf,
                message=str(res.message),
            )
    stats.wall_time = timer.stop()
    if best is None:
        return Solution(Status.INFEASIBLE, stats=stats, message="no feasible KKT point")
    best.stats = stats
    return best
