"""Reference pure-Python two-phase primal simplex (per-row loops, Bland).

This is the original loop-based implementation, retained verbatim as a
**validation oracle**: property-based tests solve random LPs with three
independent backends — HiGHS (:func:`repro.minlp.linprog.solve_lp`), the
vectorized simplex (:func:`repro.minlp.simplex.solve_lp_simplex`), and this
module — and assert they agree.  A regression in the vectorized pivot or in
the standard-form translation shows up as a three-way disagreement.

It is deliberately slow and simple (dense tableau, per-row Python loops,
pure Bland's rule); do not use it on a hot path.

Transformation to standard form ``min c·y  s.t.  Ay = b, y >= 0``:

1. shift variables with a finite lower bound (``x = lb + y``); mirror
   variables with only a finite upper bound (``x = ub − y``); split free
   variables (``x = y⁺ − y⁻``);
2. re-emit finite upper bounds of shifted variables as explicit ``<=`` rows;
3. split each two-sided row into ``<=`` / ``>=`` rows, add slack/surplus
   columns, flip rows until ``b >= 0``;
4. phase 1 minimizes the sum of artificials; phase 2 the true objective.
"""

from __future__ import annotations

import math

import numpy as np

from repro.minlp.linprog import LinearProgram, LPResult
from repro.minlp.solution import Status

_TOL = 1e-9


class _StandardForm:
    """Bookkeeping for the original-variable -> standard-form mapping."""

    def __init__(self, lp: LinearProgram) -> None:
        n = lp.num_vars
        # Per original variable: (kind, data) where kind in
        # {"shift": y-index & lb, "mirror": y-index & ub, "free": (+idx, -idx)}
        self.recipe: list[tuple[str, tuple]] = []
        cols: list[np.ndarray] = []  # column of each y in terms of original A
        cost: list[float] = []
        extra_rows: list[tuple[np.ndarray, float]] = []  # (row over y, rhs) for <= rows
        self.const_shift = lp.c0

        y_count = 0
        col_of_orig = []  # map original var -> list of (y index, sign, offset)
        for j in range(n):
            lb, ub = lp.var_lb[j], lp.var_ub[j]
            if math.isfinite(lb):
                self.recipe.append(("shift", (y_count, lb)))
                col_of_orig.append([(y_count, 1.0, lb)])
                cost.append(lp.c[j])
                self.const_shift += lp.c[j] * lb
                if math.isfinite(ub):
                    row = np.zeros(0)  # fill later once width known
                    extra_rows.append((np.array([y_count]), ub - lb))
                y_count += 1
            elif math.isfinite(ub):
                # x = ub - y, y >= 0
                self.recipe.append(("mirror", (y_count, ub)))
                col_of_orig.append([(y_count, -1.0, ub)])
                cost.append(-lp.c[j])
                self.const_shift += lp.c[j] * ub
                y_count += 1
            else:
                self.recipe.append(("free", (y_count, y_count + 1)))
                col_of_orig.append([(y_count, 1.0, 0.0), (y_count + 1, -1.0, 0.0)])
                cost.extend([lp.c[j], -lp.c[j]])
                y_count += 2

        self.num_y = y_count
        self.cost = np.array(cost)
        self.col_of_orig = col_of_orig
        self.upper_rows = extra_rows  # (array([y_idx]), rhs)

    def original_x(self, y: np.ndarray, lp: LinearProgram) -> np.ndarray:
        x = np.empty(lp.num_vars)
        for j, (kind, data) in enumerate(self.recipe):
            if kind == "shift":
                idx, lb = data
                x[j] = lb + y[idx]
            elif kind == "mirror":
                idx, ub = data
                x[j] = ub - y[idx]
            else:
                ip, im = data
                x[j] = y[ip] - y[im]
        return x

    def row_over_y(self, row: np.ndarray) -> tuple[np.ndarray, float]:
        """Express ``row · x`` as ``r · y + const``."""
        r = np.zeros(self.num_y)
        const = 0.0
        for j, terms in enumerate(self.col_of_orig):
            if row[j] == 0.0:
                continue
            for idx, sign, offset in terms:
                r[idx] += row[j] * sign
            const += row[j] * (terms[0][2] if len(terms) == 1 else 0.0)
        return r, const


def _pivot(T: np.ndarray, basis: list[int], row: int, col: int) -> None:
    T[row] /= T[row, col]
    for r in range(T.shape[0]):
        if r != row and abs(T[r, col]) > 0.0:
            T[r] -= T[r, col] * T[row]
    basis[row] = col


def _simplex_phase(
    T: np.ndarray, basis: list[int], ncols: int, max_iter: int
) -> Status:
    """Run simplex iterations on tableau ``T`` (last row = objective).

    Columns ``0..ncols-1`` are eligible to enter; Bland's rule prevents
    cycling.  Returns OPTIMAL, UNBOUNDED, or ITERATION_LIMIT.
    """
    m = T.shape[0] - 1
    for _ in range(max_iter):
        obj = T[-1, :ncols]
        entering = -1
        for j in range(ncols):  # Bland: smallest index with negative reduced cost
            if obj[j] < -_TOL:
                entering = j
                break
        if entering < 0:
            return Status.OPTIMAL
        # Ratio test (Bland: smallest basis index breaks ties).
        best_ratio = math.inf
        leaving = -1
        for i in range(m):
            a = T[i, entering]
            if a > _TOL:
                ratio = T[i, -1] / a
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return Status.UNBOUNDED
        _pivot(T, basis, leaving, entering)
    return Status.ITERATION_LIMIT


def solve_lp_simplex_reference(lp: LinearProgram, max_iter: int = 20000) -> LPResult:
    """Solve ``lp`` with the loop-based reference two-phase simplex."""
    sf = _StandardForm(lp)

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    senses: list[str] = []  # "le", "ge", "eq" over y

    for i in range(lp.num_rows):
        r, const = sf.row_over_y(lp.A[i])
        lo = lp.row_lb[i] - const
        hi = lp.row_ub[i] - const
        if lo == hi:
            rows.append(r)
            rhs.append(lo)
            senses.append("eq")
            continue
        if math.isfinite(hi):
            rows.append(r)
            rhs.append(hi)
            senses.append("le")
        if math.isfinite(lo):
            rows.append(r)
            rhs.append(lo)
            senses.append("ge")
    for idx_arr, ub in sf.upper_rows:
        r = np.zeros(sf.num_y)
        r[idx_arr[0]] = 1.0
        rows.append(r)
        rhs.append(ub)
        senses.append("le")

    m = len(rows)
    n = sf.num_y
    if m == 0:
        # Pure bound problem: minimize over the box; each y at 0 unless its
        # cost is negative, in which case the LP is unbounded above y.
        if np.any(sf.cost < -_TOL):
            return LPResult(Status.UNBOUNDED, None, -math.inf, "unbounded box LP")
        y = np.zeros(n)
        x = sf.original_x(y, lp)
        return LPResult(Status.OPTIMAL, x, float(lp.c @ x) + lp.c0)

    # Assemble [A | slacks | artificials | rhs]; count slack columns first.
    num_slack = sum(1 for s in senses if s != "eq")
    width = n + num_slack + m  # artificials on every row keeps phase 1 trivial
    A = np.zeros((m, width))
    b = np.array(rhs, dtype=float)
    slack_j = n
    for i, (row, sense) in enumerate(zip(rows, senses)):
        A[i, :n] = row
        if sense == "le":
            A[i, slack_j] = 1.0
            slack_j += 1
        elif sense == "ge":
            A[i, slack_j] = -1.0
            slack_j += 1
    # Make rhs nonnegative, then install artificial identity columns.
    for i in range(m):
        if b[i] < 0.0:
            A[i] *= -1.0
            b[i] *= -1.0
    art0 = n + num_slack
    for i in range(m):
        A[i, art0 + i] = 1.0

    # Phase 1 tableau.
    T = np.zeros((m + 1, width + 1))
    T[:m, :width] = A
    T[:m, -1] = b
    T[-1, art0 : art0 + m] = 1.0
    basis = [art0 + i for i in range(m)]
    for i in range(m):  # price out artificials from the phase-1 objective row
        T[-1] -= T[i]
    status = _simplex_phase(T, basis, ncols=art0, max_iter=max_iter)
    if status is Status.ITERATION_LIMIT:
        return LPResult(status, None, math.inf, "phase-1 iteration limit")
    if -T[-1, -1] > 1e-7:
        return LPResult(Status.INFEASIBLE, None, math.inf, "phase 1 positive")

    # Drive any artificial still in the basis out (or drop its row if zero).
    for i in range(m):
        if basis[i] >= art0:
            pivot_col = -1
            for j in range(art0):
                if abs(T[i, j]) > _TOL:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(T, basis, i, pivot_col)
            # else: redundant row; leave the artificial at value 0.

    # Phase 2: replace objective row.
    T[-1, :] = 0.0
    T[-1, :n] = sf.cost
    for i in range(m):
        j = basis[i]
        if j < art0 and abs(T[-1, j]) > 0.0:
            T[-1] -= T[-1, j] * T[i]
    status = _simplex_phase(T, basis, ncols=art0, max_iter=max_iter)
    if status is Status.UNBOUNDED:
        return LPResult(Status.UNBOUNDED, None, -math.inf, "phase 2 unbounded")
    if status is Status.ITERATION_LIMIT:
        return LPResult(status, None, math.inf, "phase-2 iteration limit")

    y = np.zeros(width)
    for i in range(m):
        y[basis[i]] = T[i, -1]
    x = sf.original_x(y[:n], lp)
    return LPResult(Status.OPTIMAL, x, float(lp.c @ x) + lp.c0)
