"""MINLP toolkit: modeling, LP/NLP layers, and branch-and-bound solvers.

This subpackage is the library's stand-in for the AMPL + MINOTAUR stack the
paper uses: :mod:`repro.minlp.modeling` plays AMPL (declarative models with
automatic derivatives), and the solver modules play MINOTAUR's LP/NLP-based
branch-and-bound (§III-E).

Typical use::

    from repro.minlp import Model, solve

    m = Model("demo")
    x = m.integer_var("x", 1, 10)
    t = m.var("t", lb=0.0)
    m.add(t >= 100.0 / x + 2.0 * x)
    m.minimize(t)
    solution = solve(m.build())
"""

from __future__ import annotations

import numpy as np

from repro.minlp.ampl_export import problem_to_ampl
from repro.minlp.bnb import BnBOptions, BranchAndBound
from repro.minlp.brute import solve_brute_force
from repro.minlp.cutpool import OACutPool
from repro.minlp.ecp import solve_minlp_ecp
from repro.minlp.expr import (
    Constant,
    Expr,
    Relation,
    VarRef,
    exp,
    linearize,
    log,
    sqrt,
    sum_exprs,
)
from repro.minlp.heuristics import (
    diving_heuristic,
    rounding_heuristic,
    warm_start_incumbent,
)
from repro.minlp.linprog import LinearProgram, solve_lp, solve_problem_lp
from repro.minlp.milp import solve_milp
from repro.minlp.modeling import Model
from repro.minlp.nlp import solve_nlp
from repro.minlp.nlpbb import solve_minlp_nlpbb
from repro.minlp.oa import solve_minlp_oa, solve_minlp_oa_multitree
from repro.minlp.presolve import presolve
from repro.minlp.problem import Constraint, Domain, Problem, Sense, SOS1, Variable
from repro.minlp.simplex import solve_lp_simplex
from repro.minlp.solution import Solution, SolveStats, Status

__all__ = [
    "BnBOptions",
    "BranchAndBound",
    "Constant",
    "Constraint",
    "Domain",
    "diving_heuristic",
    "Expr",
    "LinearProgram",
    "Model",
    "OACutPool",
    "Problem",
    "Relation",
    "SOS1",
    "Sense",
    "Solution",
    "SolveStats",
    "Status",
    "VarRef",
    "exp",
    "linearize",
    "log",
    "presolve",
    "problem_to_ampl",
    "rounding_heuristic",
    "solve",
    "solve_brute_force",
    "solve_lp",
    "solve_lp_simplex",
    "solve_milp",
    "solve_minlp_ecp",
    "solve_minlp_nlpbb",
    "solve_minlp_oa",
    "solve_minlp_oa_multitree",
    "solve_nlp",
    "solve_problem_lp",
    "sqrt",
    "sum_exprs",
    "warm_start_incumbent",
]


def solve(
    problem: Problem,
    options: BnBOptions | None = None,
    *,
    algorithm: str = "auto",
    rng: np.random.Generator | None = None,
    x0: dict[str, float] | None = None,
    cut_pool: OACutPool | None = None,
) -> Solution:
    """Solve ``problem`` with an automatically (or explicitly) chosen algorithm.

    ``auto`` routes: pure LP -> HiGHS; MILP -> branch-and-bound over LP
    relaxations; continuous NLP -> SLSQP; convex MINLP -> LP/NLP-based
    branch-and-bound (falling back to NLP-based B&B when the model has
    nonlinear lower-bounded constraints OA cannot relax safely).
    Explicit choices: ``"milp"``, ``"nlp"``, ``"oa"``, ``"oa-multitree"``,
    ``"nlpbb"``, ``"brute"``.

    ``x0`` is an optional (possibly partial) warm-start point, honored by
    the NLP, OA, and NLP-B&B routes and ignored by the rest.  ``cut_pool``
    shares an :class:`OACutPool` across successive OA solves (see
    :func:`repro.minlp.oa.solve_minlp_oa`); other routes ignore it.
    """
    if algorithm == "auto":
        if problem.is_linear():
            return solve_milp(problem, options) if problem.is_mip() else solve_problem_lp(problem)
        if not problem.is_mip():
            return solve_nlp(problem, x0=x0, rng=rng)
        try:
            return solve_minlp_oa(problem, options, rng=rng, x0=x0, cut_pool=cut_pool)
        except ValueError:
            return solve_minlp_nlpbb(problem, options, rng=rng, x0=x0)
    dispatch = {
        "milp": lambda: solve_milp(problem, options),
        "lp": lambda: solve_problem_lp(problem),
        "nlp": lambda: solve_nlp(problem, x0=x0, rng=rng),
        "oa": lambda: solve_minlp_oa(problem, options, rng=rng, x0=x0, cut_pool=cut_pool),
        "oa-multitree": lambda: solve_minlp_oa_multitree(
            problem, options, rng=rng, cut_pool=cut_pool
        ),
        "ecp": lambda: solve_minlp_ecp(problem, options),
        "nlpbb": lambda: solve_minlp_nlpbb(problem, options, rng=rng, x0=x0),
        "brute": lambda: solve_brute_force(problem, rng=rng),
    }
    try:
        return dispatch[algorithm]()
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(dispatch)} or 'auto'"
        ) from None
