"""Mixed-integer *linear* programming via branch-and-bound over LP relaxations.

This is the master-problem solver for the multi-tree outer-approximation
algorithm and a standalone MILP solver in its own right (the CLP-plus-tree
role in the paper's MINOTAUR stack).
"""

from __future__ import annotations

from repro.minlp.bnb import BnBOptions, BranchAndBound
from repro.minlp.problem import Problem
from repro.minlp.solution import Solution


def solve_milp(problem: Problem, options: BnBOptions | None = None) -> Solution:
    """Solve a mixed-integer linear problem to proven optimality.

    Raises ``ValueError`` if the problem has nonlinear pieces — route those
    through :mod:`repro.minlp.oa` or :mod:`repro.minlp.nlpbb` instead.
    """
    if not problem.is_linear():
        raise ValueError(
            f"{problem.name!r} is nonlinear; use solve_minlp_oa / solve_minlp_nlpbb"
        )
    engine = BranchAndBound(problem, "lp", options)
    return engine.solve()
