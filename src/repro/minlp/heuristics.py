"""Primal heuristics: cheap feasible points for warm starts and gap closing.

Two classics:

* :func:`rounding_heuristic` — round the relaxation, fix, re-optimize the
  continuous rest (how a practitioner hand-rounds a fractional allocation);
* :func:`diving_heuristic` — repeatedly fix the *most integral* fractional
  variable to its nearest value and re-solve the relaxation, diving down a
  single root-to-leaf path of the branch-and-bound tree.  Slower than
  rounding, feasible more often on tightly coupled models.

Plus the glue that makes external warm starts usable:

* :func:`warm_start_incumbent` — complete a (possibly partial) point — a
  greedy allocation, a neighboring cached solution — into a certified
  feasible incumbent the branch-and-bound engines can prune against.
"""

from __future__ import annotations

import math

import numpy as np

from repro.minlp.nlp import solve_nlp
from repro.minlp.problem import Problem
from repro.minlp.solution import Solution, Status


def _nearest_sos_choice(problem: Problem, values: dict[str, float]) -> dict[str, tuple[float, float]]:
    """For each SOS1 set, keep only the member with the largest magnitude."""
    fixes: dict[str, tuple[float, float]] = {}
    for sos in problem.sos1_sets:
        best = max(sos.members, key=lambda m: abs(values.get(m, 0.0)))
        for m in sos.members:
            if m != best:
                fixes[m] = (0.0, 0.0)
    return fixes


def rounding_heuristic(
    problem: Problem,
    relaxation_values: dict[str, float],
    *,
    feas_tol: float = 1e-6,
    rng: np.random.Generator | None = None,
) -> Solution:
    """Round a relaxation point to a discrete-feasible candidate.

    Discrete variables are rounded to the nearest integer inside their
    bounds; SOS1 sets are resolved to their largest member; the remaining
    continuous variables are re-optimized with an NLP solve.  Returns
    ``Status.INFEASIBLE`` when the rounded assignment admits no feasible
    continuous completion.
    """
    fixes: dict[str, tuple[float, float]] = {}
    for var in problem.discrete_variables():
        x = float(np.clip(round(relaxation_values[var.name]), var.lb, var.ub))
        fixes[var.name] = (x, x)
    fixes.update(_nearest_sos_choice(problem, relaxation_values))

    sub = solve_nlp(problem.with_bounds(fixes), x0=relaxation_values, rng=rng)
    if not sub.status.is_ok:
        return Solution(Status.INFEASIBLE, message="rounding produced no feasible point")
    if problem.max_violation(sub.values) > feas_tol:
        return Solution(Status.INFEASIBLE, message="rounded point violates the model")
    return Solution(
        Status.FEASIBLE,
        values=sub.values,
        objective=problem.objective_value(sub.values),
        bound=-math.inf,
        message="rounding heuristic",
    )


def warm_start_incumbent(
    problem: Problem,
    point: dict[str, float],
    *,
    nlp_multistart: int = 1,
    feas_tol: float = 1e-6,
    rng: np.random.Generator | None = None,
) -> Solution:
    """Turn a warm-start ``point`` into a certified feasible incumbent.

    ``point`` may be partial (e.g. only the ``n_<component>`` counts of a
    greedy allocation) and may omit auxiliary binaries or epigraph
    variables.  Discrete variables present in the point are pinned at their
    rounded values, the continuous relaxation is re-optimized under those
    pins, and any remaining discrete freedom is resolved by the rounding
    heuristic.  Returns ``Status.INFEASIBLE`` when the point admits no
    feasible completion — callers then simply solve cold.
    """
    fixes: dict[str, tuple[float, float]] = {}
    for var in problem.discrete_variables():
        if var.name in point:
            x = float(np.clip(round(point[var.name]), var.lb, var.ub))
            fixes[var.name] = (x, x)
    rel = solve_nlp(
        problem.with_bounds(fixes),
        x0={k: v for k, v in point.items()},
        multistart=nlp_multistart,
        rng=rng,
    )
    if not rel.status.is_ok:
        return Solution(
            Status.INFEASIBLE, message="warm-start point admits no completion"
        )
    out = rounding_heuristic(problem, rel.values, feas_tol=feas_tol, rng=rng)
    # The completion cost (pinned relaxation + rounding's re-optimize) must
    # show up in the caller's accounting or warm solves look cheaper than
    # they are.
    out.stats.nlp_solves += rel.stats.nlp_solves + 1
    return out


def diving_heuristic(
    problem: Problem,
    *,
    feas_tol: float = 1e-6,
    int_tol: float = 1e-6,
    max_dives: int | None = None,
    rng: np.random.Generator | None = None,
) -> Solution:
    """Fractional diving: fix one variable per relaxation solve.

    Each round solves the continuous relaxation under the accumulated
    fixings, then fixes the fractional discrete variable *closest* to an
    integer at its rounded value (least-damage-first).  SOS1 sets are
    resolved the same way: once every member is integral, the largest is
    kept.  Terminates with a feasible incumbent or ``Status.INFEASIBLE``
    when a dive renders the relaxation infeasible.
    """
    fixes: dict[str, tuple[float, float]] = {}
    discrete = [v.name for v in problem.discrete_variables()]
    budget = max_dives if max_dives is not None else len(discrete) + len(problem.sos1_sets)

    for _ in range(budget + 1):
        rel = solve_nlp(problem.with_bounds(fixes), rng=rng)
        if not rel.status.is_ok:
            return Solution(Status.INFEASIBLE, message="dive hit an infeasible fixing")
        fractional = [
            (name, rel.values[name])
            for name in discrete
            if name not in fixes
            and abs(rel.values[name] - round(rel.values[name])) > int_tol
        ]
        if not fractional:
            # Integrality done; resolve any SOS sets, then certify.
            sos_fixes = _nearest_sos_choice(problem, rel.values)
            new_sos = {k: v for k, v in sos_fixes.items() if k not in fixes}
            if new_sos:
                fixes.update(new_sos)
                continue
            if problem.max_violation(rel.values) > feas_tol:
                return Solution(
                    Status.INFEASIBLE, message="dive converged to an invalid point"
                )
            return Solution(
                Status.FEASIBLE,
                values=rel.values,
                objective=problem.objective_value(rel.values),
                bound=-math.inf,
                message="diving heuristic",
            )
        # Fix the most integral fractional variable at its nearest value.
        name, value = min(
            fractional, key=lambda nv: abs(nv[1] - round(nv[1]))
        )
        var = problem.variable(name)
        target = float(np.clip(round(value), var.lb, var.ub))
        fixes[name] = (target, target)
    return Solution(Status.ITERATION_LIMIT, message="dive budget exhausted")
