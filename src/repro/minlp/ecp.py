"""Extended cutting plane (ECP) solver for convex MINLPs.

The third classic algorithm family next to OA and NLP-BB (Westerlund &
Pettersson): **no NLP subproblems at all** — iterate a MILP master, and
whenever its solution violates a nonlinear constraint, linearize the
violated constraints *at that point* and re-solve.  Convexity makes every
such cut valid, and the master values converge to the MINLP optimum from
below.

Slower per instance than LP/NLP-BB on problems where NLP solves are cheap,
but structurally simpler and a useful cross-check: the test suite requires
OA, NLP-BB, ECP, and brute force to agree on convex models.
"""

from __future__ import annotations

import itertools
import math

from repro.minlp.bnb import BnBOptions
from repro.minlp.milp import solve_milp
from repro.minlp.oa import _check_convex_form, _cut_for, _epigraph_form, _linear_master, _strip_eta
from repro.minlp.problem import Problem
from repro.minlp.solution import Solution, SolveStats, Status
from repro.util.timing import Timer


def solve_minlp_ecp(
    problem: Problem,
    options: BnBOptions | None = None,
    *,
    max_rounds: int = 200,
    feas_tol: float = 1e-6,
) -> Solution:
    """Solve a convex MINLP by the extended cutting plane method."""
    opts = options or BnBOptions()
    work, has_eta = _epigraph_form(problem)
    _check_convex_form(work)
    nonlin = work.nonlinear_constraints()
    if not nonlin:
        return _strip_eta(solve_milp(work, opts), problem, has_eta)

    stats = SolveStats()
    timer = Timer().start()
    master = _linear_master(work)
    counter = itertools.count()
    status = Status.ITERATION_LIMIT
    best: Solution | None = None

    # Seed cuts at the variable-box midpoint so the first master is bounded
    # (an epigraph variable has no lower bound until a cut supplies one).
    seed_point = {}
    for v in work.variables:
        lo = v.lb if math.isfinite(v.lb) else -1e4
        hi = v.ub if math.isfinite(v.ub) else 1e4
        seed_point[v.name] = 0.5 * (lo + hi)
    for con in nonlin:
        name, body, lb, ub = _cut_for(con, seed_point, f"ecp{next(counter)}")
        master.add_constraint(name, body, lb, ub)
        stats.cuts_added += 1

    for _ in range(max_rounds):
        msol = solve_milp(master, opts)
        stats.lp_solves += msol.stats.lp_solves
        stats.nodes_explored += msol.stats.nodes_explored
        if msol.status is Status.INFEASIBLE:
            stats.wall_time = timer.stop()
            return Solution(
                Status.INFEASIBLE, stats=stats, message="ECP master infeasible"
            )
        if not msol.status.is_ok:
            status = msol.status
            break

        violated = [c for c in nonlin if c.violation(msol.values) > feas_tol]
        if not violated:
            # Master point satisfies the true constraints: since the master
            # is a relaxation, this point is MINLP-optimal.
            best = msol
            status = Status.OPTIMAL
            break
        for con in violated:
            name, body, lb, ub = _cut_for(con, msol.values, f"ecp{next(counter)}")
            master.add_constraint(name, body, lb, ub)
            stats.cuts_added += 1

    stats.wall_time = timer.stop()
    if best is None:
        return Solution(status, stats=stats, message="ECP round limit reached")
    best.status = Status.OPTIMAL
    best.objective = work.objective_value(best.values)
    best.bound = best.objective
    best.stats = stats
    return _strip_eta(best, problem, has_eta)
