"""Flat MINLP problem representation consumed by the solvers.

A :class:`Problem` is the solver-facing form of a model: an ordered set of
variables with bounds and domains, a list of (possibly nonlinear) constraints
``lb <= g(x) <= ub``, an objective, and SOS1 sets.  It is deliberately dumb —
all algebra lives in :mod:`repro.minlp.expr`, all convenience in
:mod:`repro.minlp.modeling`.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.minlp.expr import Expr, as_expr


class Domain(enum.Enum):
    """Variable domain classification."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Sense(enum.Enum):
    """Optimization direction."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


@dataclass(frozen=True)
class Variable:
    """A decision variable: name, bounds, and domain."""

    name: str
    lb: float = -math.inf
    ub: float = math.inf
    domain: Domain = Domain.CONTINUOUS

    def __post_init__(self) -> None:
        if self.lb > self.ub:
            raise ValueError(f"variable {self.name}: lb {self.lb} > ub {self.ub}")
        if self.domain is Domain.BINARY and (self.lb < 0.0 or self.ub > 1.0):
            raise ValueError(f"binary variable {self.name} must have bounds in [0,1]")

    @property
    def is_discrete(self) -> bool:
        return self.domain in (Domain.INTEGER, Domain.BINARY)


@dataclass(frozen=True)
class Constraint:
    """A constraint ``lb <= body <= ub`` on an expression body."""

    name: str
    body: Expr
    lb: float = -math.inf
    ub: float = math.inf

    def __post_init__(self) -> None:
        if self.lb > self.ub:
            raise ValueError(f"constraint {self.name}: lb {self.lb} > ub {self.ub}")
        if math.isinf(self.lb) and math.isinf(self.ub):
            raise ValueError(f"constraint {self.name} is unbounded on both sides")

    @property
    def is_equality(self) -> bool:
        return self.lb == self.ub

    def is_linear(self) -> bool:
        return self.body.is_linear()

    def violation(self, values: Mapping[str, float]) -> float:
        """Amount by which ``values`` violates this constraint (0 if satisfied)."""
        g = float(self.body.evaluate(values))
        return max(0.0, self.lb - g, g - self.ub)


@dataclass(frozen=True)
class SOS1:
    """A special-ordered set of type 1: at most one member may be nonzero.

    The paper models the discrete atmosphere/ocean node-count choices as SOS1
    sets over selection binaries (Table I, lines 29–31) and reports that
    branching on the set rather than on individual binaries speeds the solver
    by two orders of magnitude.
    """

    name: str
    members: tuple[str, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.members) != len(self.weights):
            raise ValueError(f"SOS1 {self.name}: members/weights length mismatch")
        if len(self.members) < 2:
            raise ValueError(f"SOS1 {self.name}: needs at least two members")
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"SOS1 {self.name}: duplicate members")
        if list(self.weights) != sorted(self.weights):
            raise ValueError(f"SOS1 {self.name}: weights must be nondecreasing")


class Problem:
    """An ordered MINLP: variables, constraints, SOS1 sets, objective."""

    def __init__(self, name: str = "problem") -> None:
        self.name = name
        self._variables: dict[str, Variable] = {}
        self._constraints: dict[str, Constraint] = {}
        self._sos1: dict[str, SOS1] = {}
        self.objective: Expr = as_expr(0.0)
        self.sense: Sense = Sense.MINIMIZE

    # -- construction ----------------------------------------------------

    def add_variable(
        self,
        name: str,
        lb: float = -math.inf,
        ub: float = math.inf,
        domain: Domain = Domain.CONTINUOUS,
    ) -> Variable:
        if name in self._variables:
            raise ValueError(f"duplicate variable {name!r}")
        var = Variable(name, float(lb), float(ub), domain)
        self._variables[name] = var
        return var

    def add_constraint(
        self,
        name: str,
        body: Expr,
        lb: float = -math.inf,
        ub: float = math.inf,
    ) -> Constraint:
        if name in self._constraints:
            raise ValueError(f"duplicate constraint {name!r}")
        unknown = body.variables() - self._variables.keys()
        if unknown:
            raise ValueError(f"constraint {name!r} uses undeclared variables {sorted(unknown)}")
        con = Constraint(name, body, float(lb), float(ub))
        self._constraints[name] = con
        return con

    def add_sos1(self, name: str, members: Sequence[str], weights: Sequence[float]) -> SOS1:
        unknown = set(members) - self._variables.keys()
        if unknown:
            raise ValueError(f"SOS1 {name!r} uses undeclared variables {sorted(unknown)}")
        if name in self._sos1:
            raise ValueError(f"duplicate SOS1 {name!r}")
        sos = SOS1(name, tuple(members), tuple(float(w) for w in weights))
        self._sos1[name] = sos
        return sos

    def set_objective(self, expr: Expr, sense: Sense = Sense.MINIMIZE) -> None:
        unknown = expr.variables() - self._variables.keys()
        if unknown:
            raise ValueError(f"objective uses undeclared variables {sorted(unknown)}")
        self.objective = expr
        self.sense = sense

    # -- views -------------------------------------------------------------

    @property
    def variables(self) -> tuple[Variable, ...]:
        return tuple(self._variables.values())

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints.values())

    @property
    def sos1_sets(self) -> tuple[SOS1, ...]:
        return tuple(self._sos1.values())

    @property
    def variable_names(self) -> tuple[str, ...]:
        return tuple(self._variables)

    def variable(self, name: str) -> Variable:
        return self._variables[name]

    def constraint(self, name: str) -> Constraint:
        return self._constraints[name]

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def discrete_variables(self) -> tuple[Variable, ...]:
        return tuple(v for v in self._variables.values() if v.is_discrete)

    def is_mip(self) -> bool:
        return bool(self.discrete_variables()) or bool(self._sos1)

    def is_linear(self) -> bool:
        return self.objective.is_linear() and all(
            c.is_linear() for c in self._constraints.values()
        )

    def nonlinear_constraints(self) -> tuple[Constraint, ...]:
        return tuple(c for c in self._constraints.values() if not c.is_linear())

    # -- point queries -------------------------------------------------------

    def objective_value(self, values: Mapping[str, float]) -> float:
        return float(self.objective.evaluate(values))

    def max_violation(self, values: Mapping[str, float]) -> float:
        """Largest constraint/bound/integrality violation at ``values``."""
        worst = 0.0
        for con in self._constraints.values():
            worst = max(worst, con.violation(values))
        for var in self._variables.values():
            x = float(values[var.name])
            worst = max(worst, var.lb - x, x - var.ub)
            if var.is_discrete:
                worst = max(worst, abs(x - round(x)))
        for sos in self._sos1.values():
            nonzero = [m for m in sos.members if abs(float(values[m])) > 1e-9]
            if len(nonzero) > 1:
                worst = max(
                    worst, sorted(abs(float(values[m])) for m in nonzero)[-2]
                )
        return worst

    def is_feasible(self, values: Mapping[str, float], tol: float = 1e-6) -> bool:
        return self.max_violation(values) <= tol

    # -- transforms -------------------------------------------------------

    def relaxed(self) -> "Problem":
        """Return a copy with all integrality and SOS1 requirements dropped."""
        out = Problem(f"{self.name}:relaxed")
        for v in self._variables.values():
            out.add_variable(v.name, v.lb, v.ub, Domain.CONTINUOUS)
        for c in self._constraints.values():
            out.add_constraint(c.name, c.body, c.lb, c.ub)
        out.set_objective(self.objective, self.sense)
        return out

    def with_bounds(self, bounds: Mapping[str, tuple[float, float]]) -> "Problem":
        """Return a copy with per-variable bound overrides (used by B&B)."""
        out = Problem(self.name)
        for v in self._variables.values():
            lb, ub = bounds.get(v.name, (v.lb, v.ub))
            if lb > ub:
                raise ValueError(f"override for {v.name}: lb {lb} > ub {ub}")
            out.add_variable(v.name, max(lb, v.lb), min(ub, v.ub), v.domain)
        for c in self._constraints.values():
            out.add_constraint(c.name, c.body, c.lb, c.ub)
        for s in self._sos1.values():
            out.add_sos1(s.name, s.members, s.weights)
        out.set_objective(self.objective, self.sense)
        return out

    def reduce_fixed(
        self, tol: float = 1e-9
    ) -> tuple["Problem", dict[str, float]] | None:
        """Substitute out variables whose bounds pin them to a single value.

        Returns ``(reduced_problem, fixed_values)``, or ``None`` when a
        constraint that became constant under the substitution is violated —
        i.e. the fixing is provably infeasible.  Used by the OA subproblem
        path: once branch-and-bound fixes the integers, the NLP only needs
        the handful of genuinely free variables.
        """
        from repro.minlp.expr import Constant  # local import to avoid cycle

        fixed: dict[str, float] = {}
        for v in self._variables.values():
            if math.isfinite(v.lb) and v.ub - v.lb <= tol:
                fixed[v.name] = 0.5 * (v.lb + v.ub)
        if not fixed:
            return self, {}
        mapping = {name: Constant(val) for name, val in fixed.items()}

        out = Problem(f"{self.name}:reduced")
        for v in self._variables.values():
            if v.name not in fixed:
                out.add_variable(v.name, v.lb, v.ub, v.domain)
        for c in self._constraints.values():
            body = c.body.substitute(mapping)
            if body.is_constant():
                value = float(body.evaluate({}))
                if value < c.lb - 1e-6 or value > c.ub + 1e-6:
                    return None  # fixing violates this constraint
                continue
            out.add_constraint(c.name, body, c.lb, c.ub)
        # SOS1 sets: members fixed to zero drop out; if one member is fixed
        # nonzero the rest must be zero, which the caller's bounds already
        # encode, so remaining free members keep the (trimmed) set.
        for s in self._sos1.values():
            free = [
                (m, w)
                for m, w in zip(s.members, s.weights)
                if m not in fixed
            ]
            if len(free) >= 2:
                out.add_sos1(s.name, [m for m, _ in free], [w for _, w in free])
        out.set_objective(self.objective.substitute(mapping), self.sense)
        return out, fixed

    # -- linear extraction (for LP/MILP backends) ---------------------------

    def linear_matrix_form(self):
        """Extract ``(c, c0, A, lb_row, ub_row, var_lb, var_ub)`` if fully linear.

        Rows of ``A`` follow constraint order; columns follow variable order.
        Raises :class:`NonlinearExpressionError` if any piece is nonlinear.
        """
        names = self.variable_names
        index = {n: j for j, n in enumerate(names)}
        nvar = len(names)

        obj_coeffs, c0 = self.objective.linear_coefficients()
        c = np.zeros(nvar)
        for n, v in obj_coeffs.items():
            c[index[n]] = v

        ncon = len(self._constraints)
        A = np.zeros((ncon, nvar))
        row_lb = np.empty(ncon)
        row_ub = np.empty(ncon)
        for i, con in enumerate(self._constraints.values()):
            coeffs, k = con.body.linear_coefficients()
            for n, v in coeffs.items():
                A[i, index[n]] = v
            row_lb[i] = con.lb - k
            row_ub[i] = con.ub - k

        var_lb = np.array([v.lb for v in self._variables.values()])
        var_ub = np.array([v.ub for v in self._variables.values()])
        return c, c0, A, row_lb, row_ub, var_lb, var_ub

    def __repr__(self) -> str:
        kind = "MINLP" if not self.is_linear() else "MILP"
        if not self.is_mip():
            kind = "NLP" if not self.is_linear() else "LP"
        return (
            f"<Problem {self.name!r}: {kind}, {self.num_variables} vars "
            f"({len(self.discrete_variables())} discrete), "
            f"{self.num_constraints} cons, {len(self._sos1)} SOS1>"
        )


def values_to_vector(problem: Problem, values: Mapping[str, float]) -> np.ndarray:
    """Order a name->value mapping into the problem's variable order."""
    return np.array([float(values[n]) for n in problem.variable_names])


def vector_to_values(problem: Problem, x: Iterable[float]) -> dict[str, float]:
    """Inverse of :func:`values_to_vector`."""
    x = list(x)
    names = problem.variable_names
    if len(x) != len(names):
        raise ValueError(f"vector length {len(x)} != {len(names)} variables")
    return {n: float(v) for n, v in zip(names, x)}
