"""Classic NLP-based branch-and-bound for MINLPs.

Each tree node solves the node's continuous NLP relaxation.  Slower per node
than the LP/NLP scheme in :mod:`repro.minlp.oa`, but it does not require
convexity for *correct feasible* answers (only for proven global optimality),
so it doubles as the fallback when a performance model is fitted without the
convexity restriction (exponent < 1).
"""

from __future__ import annotations

import numpy as np

from repro.minlp.bnb import BnBOptions, BranchAndBound
from repro.minlp.nlp import solve_nlp
from repro.minlp.problem import Problem
from repro.minlp.solution import Solution
from repro.obs import telemetry
from repro.obs.trace import span


def solve_minlp_nlpbb(
    problem: Problem,
    options: BnBOptions | None = None,
    *,
    multistart: int = 1,
    rng: np.random.Generator | None = None,
    time_limit: float | None = None,
    x0: dict[str, float] | None = None,
) -> Solution:
    """Solve ``problem`` by branch-and-bound with NLP relaxations.

    ``multistart > 1`` restarts each node's NLP from extra random points,
    which guards against local minima on nonconvex instances at the price of
    proportionally more NLP solves.  ``time_limit`` caps the wall budget
    below whatever ``options`` carries (see the solver degradation chain in
    :mod:`repro.core.hslb`).

    ``x0`` warm-starts the tree: the (possibly partial) point is completed
    into a feasible incumbent before the search (finite primal bound from
    node one) and seeds every node relaxation's NLP solve.
    """
    with span("minlp.nlpbb", problem=problem.name):
        sol = _solve_minlp_nlpbb_impl(
            problem, options, multistart=multistart, rng=rng,
            time_limit=time_limit, x0=x0,
        )
        telemetry.record_warm_start(x0 is not None)
        telemetry.record_solve("nlpbb", sol.stats, sol.status.value)
    return sol


def _solve_minlp_nlpbb_impl(
    problem: Problem,
    options: BnBOptions | None,
    *,
    multistart: int,
    rng: np.random.Generator | None,
    time_limit: float | None,
    x0: dict[str, float] | None,
) -> Solution:
    if time_limit is not None:
        options = (options or BnBOptions()).with_budget(wall_seconds=time_limit)

    incumbent: tuple[dict[str, float], float] | None = None
    if x0 is not None:
        from repro.minlp.heuristics import warm_start_incumbent

        warm = warm_start_incumbent(problem, x0, nlp_multistart=multistart, rng=rng)
        if warm.status.is_ok:
            incumbent = (dict(warm.values), float(warm.objective))

    def relax(node_problem: Problem) -> Solution:
        return solve_nlp(node_problem, x0=x0, multistart=multistart, rng=rng)

    engine = BranchAndBound(problem, relax, options, incumbent=incumbent)
    return engine.solve()
