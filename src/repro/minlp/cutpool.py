"""Aged pool of outer-approximation linearization cuts.

Building an OA cut means linearizing a nonlinear constraint body at a point
— a symbolic differentiation plus expression assembly that the profiler
shows dominating master construction once instances grow (hundreds of cuts
per solve, most of them re-derived at previously-seen points).  The pool
memoizes cuts by **constraint + quantized linearization point** so:

* within one solve, a repeated expansion point returns the cached cut (the
  stable digest name then makes :meth:`BranchAndBound.add_global_cut`'s
  duplicate check a no-op, which correctly fathoms the node instead of
  re-queuing it);
* across solves sharing a pool (successive multi-tree masters, warm-started
  service re-solves on the same model family), surviving cuts are
  *reactivated* into the fresh master instead of being rediscovered one
  lazy callback at a time.

Lifecycle: :meth:`begin_solve` opens an epoch, :meth:`cut_for` serves cut
tuples (recording pool hits/misses), :meth:`end_solve` ages every cut —
cuts that were **binding** at the final point stay young, **slack** cuts
age and are evicted after :attr:`max_age` epochs, and an LRU size cap
bounds the pool.  All events land on the ``solver_cut_pool_total`` metric
and, when tracing is on, ``oa.cut_pool`` events.

Determinism: a pool is keyed only by exact constraint names and quantized
points and its iteration order is insertion order, so two processes feeding
the same solve sequence build identical pools.  Sharing a pool *across*
solves changes which cuts a master starts with — callers that guarantee
bit-identical replays (the allocation service) must keep per-solve pools
unless cross-solve sharing is explicitly requested.
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass

from repro.minlp.expr import Expr, linearize
from repro.minlp.problem import Constraint
from repro.obs import telemetry

#: Linearization points are quantized to this many decimals for keying; two
#: points closer than 1e-9 per coordinate produce the same first-order cut
#: to well below solver tolerances.
_POINT_DECIMALS = 9


@dataclass
class _PooledCut:
    """One memoized linearization with its ageing state."""

    name: str
    body: Expr
    lb: float
    ub: float
    born_epoch: int
    idle_epochs: int = 0  # consecutive end-of-solve checks where it was slack


@dataclass
class CutPoolStats:
    hits: int = 0
    misses: int = 0
    reactivated: int = 0
    evicted: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "reactivated": self.reactivated,
            "evicted": self.evicted,
        }


class OACutPool:
    """Pool of OA cuts keyed by (constraint name, quantized point).

    ``max_cuts`` caps the pool LRU-style (oldest untouched entry evicted
    first); ``max_age`` evicts cuts slack for that many consecutive solve
    epochs; ``slack_tol`` decides binding vs. slack at :meth:`end_solve`.
    """

    def __init__(
        self,
        max_cuts: int = 2048,
        max_age: int = 8,
        slack_tol: float = 1e-6,
    ) -> None:
        if max_cuts < 1:
            raise ValueError("max_cuts must be positive")
        self.max_cuts = int(max_cuts)
        self.max_age = int(max_age)
        self.slack_tol = float(slack_tol)
        self._cuts: OrderedDict[tuple, _PooledCut] = OrderedDict()
        self._epoch = 0
        self.stats = CutPoolStats()

    # -- keying ------------------------------------------------------------

    @staticmethod
    def _key(con: Constraint, point: Mapping[str, float]) -> tuple:
        coords = tuple(
            (v, round(float(point[v]), _POINT_DECIMALS))
            for v in sorted(con.body.variables())
        )
        return (con.name, coords)

    @staticmethod
    def _name(key: tuple) -> str:
        digest = hashlib.blake2b(repr(key).encode(), digest_size=8).hexdigest()
        return f"oa_{key[0]}_{digest}"

    # -- lifecycle ---------------------------------------------------------

    def begin_solve(self) -> int:
        """Open a solve epoch; returns the epoch index (useful in traces)."""
        self._epoch += 1
        return self._epoch

    def cut_for(
        self, con: Constraint, point: Mapping[str, float]
    ) -> tuple[str, Expr, float, float]:
        """The linearization cut of ``con`` at ``point`` (memoized).

        Returns the same ``(name, body, lb, ub)`` tuple shape that
        :func:`repro.minlp.oa._cut_for` produced, but with a stable
        content-derived name: re-requesting a cut yields the identical name,
        so downstream duplicate checks dedup it naturally.
        """
        key = self._key(con, point)
        entry = self._cuts.get(key)
        if entry is not None:
            self._cuts.move_to_end(key)
            entry.idle_epochs = 0
            self.stats.hits += 1
            telemetry.record_cut_pool("hit")
            return (entry.name, entry.body, entry.lb, entry.ub)
        name = self._name(key)
        if math.isfinite(con.ub):
            body, lb, ub = linearize(con.body, point), -math.inf, con.ub
        else:
            body, lb, ub = linearize(-con.body, point), -math.inf, -con.lb
        self._cuts[key] = _PooledCut(name, body, lb, ub, born_epoch=self._epoch)
        self.stats.misses += 1
        telemetry.record_cut_pool("miss")
        self._enforce_cap()
        return (name, body, lb, ub)

    def active_cuts(self) -> list[tuple[str, Expr, float, float]]:
        """Every live cut, insertion-ordered — preinstalled into new masters.

        Cuts born in *earlier* epochs count as reactivations (work a fresh
        solve did not have to redo); current-epoch cuts are simply live.
        """
        out = []
        reactivated = 0
        for entry in self._cuts.values():
            if entry.born_epoch < self._epoch:
                reactivated += 1
            out.append((entry.name, entry.body, entry.lb, entry.ub))
        if reactivated:
            self.stats.reactivated += reactivated
            telemetry.record_cut_pool("reactivated", reactivated)
        return out

    def end_solve(self, point: Mapping[str, float] | None = None) -> int:
        """Close the epoch: age slack cuts, evict the expired; returns evictions.

        ``point`` is the solve's final solution.  Cuts binding there (body
        within :attr:`slack_tol` of a bound) reset their idle counter; slack
        cuts — and every cut when no point is available — age by one epoch.
        """
        expired: list[tuple] = []
        for key, entry in self._cuts.items():
            slack = True
            if point is not None:
                try:
                    g = float(entry.body.evaluate(point))
                except (KeyError, TypeError):  # point lacks a cut variable
                    g = None
                if g is not None:
                    slack = (
                        g < entry.ub - self.slack_tol
                        and g > entry.lb + self.slack_tol
                    )
            if slack:
                entry.idle_epochs += 1
                if entry.idle_epochs >= self.max_age:
                    expired.append(key)
            else:
                entry.idle_epochs = 0
        for key in expired:
            del self._cuts[key]
        if expired:
            self.stats.evicted += len(expired)
            telemetry.record_cut_pool("evicted", len(expired))
        return len(expired)

    def _enforce_cap(self) -> None:
        evicted = 0
        while len(self._cuts) > self.max_cuts:
            self._cuts.popitem(last=False)
            evicted += 1
        if evicted:
            self.stats.evicted += evicted
            telemetry.record_cut_pool("evicted", evicted)

    def __len__(self) -> int:
        return len(self._cuts)

    @property
    def epoch(self) -> int:
        return self._epoch
