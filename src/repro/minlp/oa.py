"""Outer-approximation MINLP solvers.

Implements the two classic OA schemes for convex MINLPs:

* :func:`solve_minlp_oa` — the **LP/NLP-based branch-and-bound** of Quesada &
  Grossmann, the algorithm §III-E of the paper describes MINOTAUR running: a
  single branch-and-bound tree over a mixed-integer *linear* master; whenever
  a node's LP solution is discrete-feasible, an NLP subproblem is solved with
  the integers fixed, linearization cuts (paper eq. (4)) are added globally,
  and the node is re-solved.

* :func:`solve_minlp_oa_multitree` — the original Duran–Grossmann /
  Fletcher–Leyffer **multi-tree** alternation between a MILP master and NLP
  subproblems, kept as an independent cross-check of the single-tree code.

Both require the nonlinear constraints to be of convex ``g(x) <= ub`` form —
exactly what the paper's positivity constraints on the fitted coefficients
guarantee (§III-E: "The positivity of the coefficients a_j, b_j, d_j implies
that the nonlinear functions are convex, which ensures that MINOTAUR finds a
global solution").  A nonlinear constraint with a finite *lower* bound would
make the linearized master a non-relaxation, so it is rejected loudly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.minlp.bnb import BnBOptions, BranchAndBound
from repro.minlp.cutpool import OACutPool
from repro.minlp.expr import Expr, VarRef, linearize
from repro.obs import telemetry
from repro.obs.trace import span, trace_event
from repro.minlp.milp import solve_milp
from repro.minlp.nlp import solve_nlp
from repro.minlp.problem import Constraint, Problem, Sense
from repro.minlp.solution import Solution, SolveStats, Status
from repro.util.timing import Timer

_OBJ_VAR = "_oa_eta"


def _check_convex_form(problem: Problem) -> None:
    """Reject nonlinear constraints OA cannot relax as a single convex side.

    Single-sided constraints are fine either way round: ``g(x) >= lb`` is
    normalized to ``-g(x) <= -lb`` by :func:`_cut_for`, and — as in every
    practical OA solver — the *user asserts* the normalized body is convex
    (the paper's positivity constraints guarantee it for HSLB models).  A
    nonlinear equality or range constraint can never be convex on both sides,
    so those are rejected outright.
    """
    for con in problem.nonlinear_constraints():
        if math.isfinite(con.lb) and math.isfinite(con.ub):
            raise ValueError(
                f"constraint {con.name!r} is a nonlinear equality/range "
                "constraint; outer approximation requires single-sided convex "
                "constraints. Use solve_minlp_nlpbb for this model."
            )


def _epigraph_form(problem: Problem) -> tuple[Problem, bool]:
    """Return an equivalent problem with a linear objective.

    A nonlinear objective ``min f(x)`` becomes ``min eta  s.t. f(x)-eta <= 0``
    (for maximize, ``max eta  s.t. eta - f(x) <= 0``; validity then requires
    concave f, which the convex-form check will enforce via the sign).
    """
    if problem.objective.is_linear():
        return problem, False
    out = Problem(f"{problem.name}:epigraph")
    for v in problem.variables:
        out.add_variable(v.name, v.lb, v.ub, v.domain)
    out.add_variable(_OBJ_VAR)
    for c in problem.constraints:
        out.add_constraint(c.name, c.body, c.lb, c.ub)
    eta = VarRef(_OBJ_VAR)
    if problem.sense is Sense.MINIMIZE:
        out.add_constraint("_oa_epigraph", problem.objective - eta, ub=0.0)
    else:
        out.add_constraint("_oa_epigraph", eta - problem.objective, ub=0.0)
    for s in problem.sos1_sets:
        out.add_sos1(s.name, s.members, s.weights)
    out.set_objective(eta, problem.sense)
    return out, True


def _linear_master(work: Problem) -> Problem:
    """Master skeleton: every variable, only the linear constraints."""
    master = Problem(f"{work.name}:master")
    for v in work.variables:
        master.add_variable(v.name, v.lb, v.ub, v.domain)
    for c in work.constraints:
        if c.is_linear():
            master.add_constraint(c.name, c.body, c.lb, c.ub)
    for s in work.sos1_sets:
        master.add_sos1(s.name, s.members, s.weights)
    master.set_objective(work.objective, work.sense)
    return master


def _cut_for(con: Constraint, point: dict[str, float], name: str):
    """Linearization cut of a single-sided nonlinear constraint at ``point``.

    ``g(x) <= ub`` linearizes directly; ``g(x) >= lb`` is first normalized to
    ``-g(x) <= -lb`` (the caller has asserted that side is convex).
    """
    if math.isfinite(con.ub):
        return (name, linearize(con.body, point), -math.inf, con.ub)
    return (name, linearize(-con.body, point), -math.inf, -con.lb)


def _fix_discrete(work: Problem, values: dict[str, float]) -> dict[str, tuple[float, float]]:
    fixes: dict[str, tuple[float, float]] = {}
    for v in work.discrete_variables():
        x = float(round(values[v.name]))
        fixes[v.name] = (x, x)
    return fixes


def _solve_fixed_subproblem(
    work: Problem,
    values: dict[str, float],
    *,
    nlp_multistart: int,
    rng: np.random.Generator | None,
) -> Solution:
    """NLP subproblem at a fixed integer assignment, on the reduced space.

    Substituting the fixed integers out before calling the NLP solver keeps
    the subproblem tiny (for HSLB layouts: the epigraph variables only) —
    the full-space version spends most of its time differentiating constant
    rows and moving pinned variables.
    """
    fixed_problem = work.with_bounds(_fix_discrete(work, values))
    reduced = fixed_problem.reduce_fixed()
    if reduced is None:
        return Solution(Status.INFEASIBLE, message="fixing violates a constraint")
    small, fixed_values = reduced
    if small.num_variables == 0:
        merged = dict(fixed_values)
        if work.max_violation(merged) > 1e-6:
            return Solution(Status.INFEASIBLE, message="fully fixed, infeasible")
        return Solution(
            Status.OPTIMAL, values=merged, objective=work.objective_value(merged)
        )
    x0 = {n: values[n] for n in small.variable_names if n in values}
    sub = solve_nlp(
        small,
        x0=x0 if len(x0) == small.num_variables else None,
        multistart=nlp_multistart,
        rng=rng,
    )
    if sub.status.is_ok:
        sub.values = {**sub.values, **fixed_values}
    return sub


def solve_minlp_oa(
    problem: Problem,
    options: BnBOptions | None = None,
    *,
    feas_tol: float = 1e-6,
    nlp_multistart: int = 1,
    rng: np.random.Generator | None = None,
    time_limit: float | None = None,
    x0: dict[str, float] | None = None,
    cut_pool: OACutPool | None = None,
) -> Solution:
    """Solve a convex MINLP with single-tree LP/NLP branch-and-bound.

    ``time_limit`` caps the wall budget below whatever ``options`` carries —
    the hook the fault-tolerant pipeline uses to hand each solver tier only
    the remaining share of its overall budget.

    ``x0`` warm-starts the search: the (possibly partial) point seeds the
    root relaxation, is completed into a feasible incumbent (so the tree
    prunes against a finite primal bound from node one), and contributes OA
    cuts at the incumbent before the first master solve.  An infeasible or
    useless ``x0`` costs two small NLP solves and is otherwise ignored.

    ``cut_pool`` optionally shares an :class:`OACutPool` across solves:
    cuts surviving earlier solves on the same model family are preinstalled
    into this master, and cuts built here stay available to later solves.
    Without one, a private per-solve pool still dedups repeated
    linearization points within this tree.  Sharing a pool changes which
    cuts a master starts with, so callers that promise bit-identical
    replays must keep it per-solve.
    """
    with span("minlp.oa", problem=problem.name):
        sol = _solve_minlp_oa_impl(
            problem,
            options,
            feas_tol=feas_tol,
            nlp_multistart=nlp_multistart,
            rng=rng,
            time_limit=time_limit,
            x0=x0,
            cut_pool=cut_pool,
        )
        telemetry.record_warm_start(x0 is not None)
        telemetry.record_solve("oa", sol.stats, sol.status.value)
    return sol


def _solve_minlp_oa_impl(
    problem: Problem,
    options: BnBOptions | None,
    *,
    feas_tol: float,
    nlp_multistart: int,
    rng: np.random.Generator | None,
    time_limit: float | None,
    x0: dict[str, float] | None,
    cut_pool: OACutPool | None,
) -> Solution:
    opts = options or BnBOptions()
    if time_limit is not None:
        opts = opts.with_budget(wall_seconds=time_limit)
    work, has_eta = _epigraph_form(problem)
    _check_convex_form(work)
    nonlin = work.nonlinear_constraints()
    if not nonlin:
        sol = solve_milp(work, opts)
        return _strip_eta(sol, problem, has_eta)

    stats = SolveStats()
    timer = Timer().start()
    pool = cut_pool if cut_pool is not None else OACutPool()
    epoch = pool.begin_solve()

    # Root relaxation: continuous NLP over the full model.  Its solution
    # seeds the initial linearizations so the first master is meaningful.
    root = solve_nlp(work, x0=x0, multistart=nlp_multistart, rng=rng)
    stats.merge(root.stats)
    if root.status is Status.INFEASIBLE:
        # The continuous relaxation is infeasible => the MINLP is infeasible
        # (for convex models; NLP multistart covers solver failures).
        stats.wall_time = timer.stop()
        return Solution(Status.INFEASIBLE, stats=stats, message="NLP relaxation infeasible")

    master = _linear_master(work)
    installed: set[str] = set()

    def install(cut: tuple[str, Expr, float, float]) -> None:
        name, body, lb, ub = cut
        if name not in installed:
            installed.add(name)
            master.add_constraint(name, body, lb, ub)
            stats.cuts_added += 1

    # Reactivate cuts surviving from earlier solves sharing this pool, then
    # linearize at the root relaxation (pool misses become fresh cuts).
    reactivated = pool.active_cuts()
    for cut in reactivated:
        install(cut)
    for con in nonlin:
        install(pool.cut_for(con, root.values))
    trace_event(
        "oa.cut_pool.master",
        epoch=epoch,
        reactivated=len(reactivated),
        installed=len(installed),
    )

    incumbent: tuple[dict[str, float], float] | None = None
    if x0 is not None:
        from repro.minlp.heuristics import warm_start_incumbent

        warm = warm_start_incumbent(
            work,
            {**root.values, **x0},
            nlp_multistart=nlp_multistart,
            feas_tol=feas_tol,
            rng=rng,
        )
        stats.nlp_solves += warm.stats.nlp_solves
        if warm.status.is_ok:
            warm_values = dict(warm.values)
            warm_obj = problem.objective_value(warm_values)
            if has_eta:
                warm_values[_OBJ_VAR] = warm_obj
            incumbent = (warm_values, warm_obj)
            # Linearize at the incumbent too: the cuts make the first master
            # tight around the warm-start's neighborhood.
            for con in nonlin:
                install(pool.cut_for(con, warm.values))

    def lazy(master_prob: Problem, values: dict[str, float]):
        cuts: list[tuple[str, Expr, float, float]] = []
        candidate = None

        sub = _solve_fixed_subproblem(
            work, values, nlp_multistart=nlp_multistart, rng=rng
        )
        stats.nlp_solves += sub.stats.nlp_solves
        if sub.status.is_ok:
            cand_values = dict(sub.values)
            cand_obj = problem.objective_value(cand_values)
            if has_eta:
                cand_values[_OBJ_VAR] = cand_obj
            candidate = (cand_values, cand_obj)
            for con in nonlin:
                cuts.append(pool.cut_for(con, sub.values))

        # Guarantee progress: if the master point itself violates any true
        # nonlinear constraint, linearizing there cuts it off (convexity:
        # the cut equals g at the expansion point).  Without this, a failed
        # NLP subproblem could let an infeasible point be accepted.
        violated = [c for c in nonlin if c.violation(values) > feas_tol]
        for con in violated:
            cuts.append(pool.cut_for(con, values))
        if violated and candidate is None and sub.status is Status.INFEASIBLE:
            pass  # feasibility cuts above already exclude this assignment's point
        trace_event(
            "oa.iteration",
            cuts=len(cuts),
            subproblem=sub.status.value,
            incumbent=candidate is not None,
        )
        return cuts, candidate

    engine = BranchAndBound(
        master, "lp", opts, lazy_cuts=lazy, incumbent=incumbent, known_cuts=installed
    )
    sol = engine.solve()
    stats.merge(sol.stats)
    stats.wall_time = timer.stop()
    sol.stats = stats
    pool.end_solve(sol.values if sol.status.is_ok else None)
    return _strip_eta(sol, problem, has_eta)


def _strip_eta(sol: Solution, original: Problem, has_eta: bool) -> Solution:
    if sol.status.is_ok:
        values = {k: v for k, v in sol.values.items() if k != _OBJ_VAR}
        sol.values = values
        sol.objective = original.objective_value(values)
    return sol


def solve_minlp_oa_multitree(
    problem: Problem,
    options: BnBOptions | None = None,
    *,
    max_rounds: int = 50,
    feas_tol: float = 1e-6,
    gap_tol: float = 1e-6,
    nlp_multistart: int = 1,
    rng: np.random.Generator | None = None,
    cut_pool: OACutPool | None = None,
) -> Solution:
    """Solve a convex MINLP by alternating MILP masters and NLP subproblems.

    Kept as an algorithmic cross-check for :func:`solve_minlp_oa`; both must
    agree on convex instances (a test enforces this).  Successive masters in
    one run share the (given or per-solve) :class:`OACutPool`, so a round
    revisiting a linearization point re-installs nothing.
    """
    opts = options or BnBOptions()
    work, has_eta = _epigraph_form(problem)
    _check_convex_form(work)
    nonlin = work.nonlinear_constraints()
    if not nonlin:
        return _strip_eta(solve_milp(work, opts), problem, has_eta)

    sign = -1.0 if problem.sense is Sense.MAXIMIZE else 1.0
    stats = SolveStats()
    timer = Timer().start()
    pool = cut_pool if cut_pool is not None else OACutPool()
    pool.begin_solve()

    root = solve_nlp(work, multistart=nlp_multistart, rng=rng)
    stats.merge(root.stats)
    if root.status is Status.INFEASIBLE:
        stats.wall_time = timer.stop()
        return Solution(Status.INFEASIBLE, stats=stats, message="NLP relaxation infeasible")

    master = _linear_master(work)
    installed: set[str] = set()

    def install(cut: tuple[str, Expr, float, float]) -> None:
        name, body, lb, ub = cut
        if name not in installed:
            installed.add(name)
            master.add_constraint(name, body, lb, ub)
            stats.cuts_added += 1

    def add_cuts_at(point: dict[str, float]) -> None:
        for con in nonlin:
            install(pool.cut_for(con, point))

    for cut in pool.active_cuts():
        install(cut)
    add_cuts_at(root.values)

    best: Solution | None = None
    best_signed = math.inf
    lower_signed = -math.inf
    status = Status.ITERATION_LIMIT

    for _ in range(max_rounds):
        msol = solve_milp(master, opts)
        stats.lp_solves += msol.stats.lp_solves
        stats.nodes_explored += msol.stats.nodes_explored
        if msol.status is Status.INFEASIBLE:
            status = Status.OPTIMAL if best is not None else Status.INFEASIBLE
            break
        if not msol.status.is_ok:
            status = msol.status
            break
        lower_signed = max(lower_signed, sign * msol.objective)
        if best is not None and lower_signed >= best_signed - gap_tol:
            status = Status.OPTIMAL
            break

        sub = _solve_fixed_subproblem(
            work, msol.values, nlp_multistart=nlp_multistart, rng=rng
        )
        stats.merge(sub.stats)
        if sub.status.is_ok:
            obj = problem.objective_value(sub.values)
            if sign * obj < best_signed:
                best_signed = sign * obj
                values = dict(sub.values)
                if has_eta:
                    values[_OBJ_VAR] = obj
                best = Solution(Status.FEASIBLE, values=values, objective=obj)
                stats.incumbent_updates += 1
            add_cuts_at(sub.values)
        else:
            # Infeasible integer assignment: cut off the master point.
            add_cuts_at(msol.values)
        # Integer no-good is implied by the new cuts for convex models; the
        # epsilon below keeps the master from returning the same assignment
        # with an unchanged bound forever on degenerate instances.
        if best is not None and abs(lower_signed - best_signed) <= gap_tol:
            status = Status.OPTIMAL
            break

    stats.wall_time = timer.stop()
    pool.end_solve(best.values if best is not None else None)
    if best is None:
        return Solution(
            status if status is Status.INFEASIBLE else Status.ERROR,
            stats=stats,
            message="multi-tree OA found no feasible point",
        )
    best.status = Status.OPTIMAL if status is Status.OPTIMAL else Status.FEASIBLE
    best.bound = sign * max(
        lower_signed, -math.inf
    ) if math.isfinite(lower_signed) else best.objective
    best.stats = stats
    return _strip_eta(best, problem, has_eta)
