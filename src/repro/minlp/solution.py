"""Solver results: status codes, solutions, and search statistics."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Status(enum.Enum):
    """Termination status shared by every solver in the toolkit."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    TIME_LIMIT = "time_limit"
    NODE_LIMIT = "node_limit"
    FEASIBLE = "feasible"  # a feasible incumbent exists but optimality unproven
    ERROR = "error"

    @property
    def is_ok(self) -> bool:
        """True when a usable point is attached (optimal or merely feasible)."""
        return self in (Status.OPTIMAL, Status.FEASIBLE)


@dataclass
class SolveStats:
    """Search statistics reported by tree-search solvers."""

    nodes_explored: int = 0
    nodes_pruned: int = 0
    nlp_solves: int = 0
    lp_solves: int = 0
    cuts_added: int = 0
    incumbent_updates: int = 0
    wall_time: float = 0.0

    def merge(self, other: "SolveStats") -> None:
        """Accumulate another phase's statistics into this one."""
        self.nodes_explored += other.nodes_explored
        self.nodes_pruned += other.nodes_pruned
        self.nlp_solves += other.nlp_solves
        self.lp_solves += other.lp_solves
        self.cuts_added += other.cuts_added
        self.incumbent_updates += other.incumbent_updates
        self.wall_time += other.wall_time


@dataclass
class Solution:
    """A solver outcome: status, best point, objective, bound, statistics."""

    status: Status
    values: dict[str, float] = field(default_factory=dict)
    objective: float = float("nan")
    bound: float = float("-inf")
    stats: SolveStats = field(default_factory=SolveStats)
    message: str = ""

    @property
    def gap(self) -> float:
        """Relative optimality gap between incumbent and bound (0 if proven)."""
        if self.status is Status.OPTIMAL:
            return 0.0
        if not self.status.is_ok:
            return float("inf")
        denom = max(1.0, abs(self.objective))
        return abs(self.objective - self.bound) / denom

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def require_ok(self) -> "Solution":
        """Return self, raising if no usable point was found."""
        if not self.status.is_ok:
            raise RuntimeError(f"solve failed: {self.status.value} ({self.message})")
        return self
