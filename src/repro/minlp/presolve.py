"""Presolve: bound tightening over linear constraints.

A miniature version of the reformulation routines the paper credits to
MINOTAUR ("includes advanced routines to reformulate MINLPs").  Only safe,
feasibility-preserving reductions are applied:

* **activity-based bound propagation** on linear rows — for a row
  ``lb <= sum a_j x_j <= ub``, each variable's implied bounds from the other
  variables' activities tighten its explicit bounds;
* **integer bound rounding** — integer variables get ceil/floor'ed bounds.

Propagation iterates to a fixed point (with an iteration cap, as the
tightening is monotone but can converge asymptotically).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.minlp.problem import Domain, Problem


@dataclass
class PresolveReport:
    """What presolve did, for logging and tests."""

    rounds: int = 0
    bounds_tightened: int = 0
    infeasible: bool = False
    fixed_variables: tuple[str, ...] = field(default_factory=tuple)


def _round_integer_bounds(lb: float, ub: float) -> tuple[float, float]:
    new_lb = math.ceil(lb - 1e-9) if math.isfinite(lb) else lb
    new_ub = math.floor(ub + 1e-9) if math.isfinite(ub) else ub
    return float(new_lb), float(new_ub)


def presolve(
    problem: Problem, *, max_rounds: int = 20, tol: float = 1e-9
) -> tuple[Problem, PresolveReport]:
    """Return a bound-tightened copy of ``problem`` plus a report.

    If propagation proves infeasibility, the returned problem is the input
    and ``report.infeasible`` is set — callers decide how to surface it.
    """
    report = PresolveReport()
    bounds = {v.name: [v.lb, v.ub] for v in problem.variables}
    domains = {v.name: v.domain for v in problem.variables}

    # Initial integer rounding.
    for name, b in bounds.items():
        if domains[name] in (Domain.INTEGER, Domain.BINARY):
            new_lb, new_ub = _round_integer_bounds(b[0], b[1])
            if new_lb > b[0] + tol or new_ub < b[1] - tol:
                report.bounds_tightened += 1
            b[0], b[1] = new_lb, new_ub
            if b[0] > b[1]:
                report.infeasible = True
                return problem, report

    linear_rows = []
    for con in problem.constraints:
        if con.is_linear():
            coeffs, k = con.body.linear_coefficients()
            coeffs = {n: c for n, c in coeffs.items() if c != 0.0}
            if coeffs:
                linear_rows.append((coeffs, con.lb - k, con.ub - k))
            elif not (con.lb - tol <= k <= con.ub + tol):
                report.infeasible = True
                return problem, report

    for _ in range(max_rounds):
        changed = False
        report.rounds += 1
        for coeffs, row_lb, row_ub in linear_rows:
            # Row activity bounds from current variable bounds.
            act_lo = 0.0
            act_hi = 0.0
            for n, c in coeffs.items():
                lo, hi = bounds[n]
                if c > 0:
                    act_lo += c * lo
                    act_hi += c * hi
                else:
                    act_lo += c * hi
                    act_hi += c * lo
            for n, c in coeffs.items():
                lo, hi = bounds[n]
                # Activity of the row excluding variable n.
                if c > 0:
                    rest_lo = act_lo - c * lo
                    rest_hi = act_hi - c * hi
                else:
                    rest_lo = act_lo - c * hi
                    rest_hi = act_hi - c * lo
                # row_lb <= c*x + rest <= row_ub
                new_lo, new_hi = lo, hi
                if c > 0:
                    if math.isfinite(row_ub) and math.isfinite(rest_lo):
                        new_hi = min(new_hi, (row_ub - rest_lo) / c)
                    if math.isfinite(row_lb) and math.isfinite(rest_hi):
                        new_lo = max(new_lo, (row_lb - rest_hi) / c)
                else:
                    if math.isfinite(row_ub) and math.isfinite(rest_lo):
                        new_lo = max(new_lo, (row_ub - rest_lo) / c)
                    if math.isfinite(row_lb) and math.isfinite(rest_hi):
                        new_hi = min(new_hi, (row_lb - rest_hi) / c)
                if domains[n] in (Domain.INTEGER, Domain.BINARY):
                    new_lo, new_hi = _round_integer_bounds(new_lo, new_hi)
                if new_lo > lo + tol or new_hi < hi - tol:
                    bounds[n][0] = max(lo, new_lo)
                    bounds[n][1] = min(hi, new_hi)
                    report.bounds_tightened += 1
                    changed = True
                    if bounds[n][0] > bounds[n][1] + tol:
                        report.infeasible = True
                        return problem, report
        if not changed:
            break

    fixed = tuple(
        n for n, (lo, hi) in bounds.items() if math.isfinite(lo) and abs(hi - lo) <= tol
    )
    report.fixed_variables = fixed
    tightened = problem.with_bounds({n: (lo, hi) for n, (lo, hi) in bounds.items()})
    return tightened, report
