"""Generic branch-and-bound engine.

This is the tree search at the heart of the toolkit (paper §III-E).  It is
parameterized by a *relaxation solver* so the same engine drives:

* **MILP** — LP relaxations (:mod:`repro.minlp.milp`);
* **NLP-based B&B** — NLP relaxations (:mod:`repro.minlp.nlpbb`);
* **LP/NLP-based B&B** (Quesada–Grossmann) — LP relaxations of an
  outer-approximation master, plus *lazy cuts*: when a node produces a
  discrete-feasible point that violates the nonlinear constraints, the
  callback returns linearization cuts that are added globally and the node
  is re-solved instead of accepted (:mod:`repro.minlp.oa`).

Two branching mechanisms are supported:

* classic variable dichotomy on a fractional integer variable;
* **SOS1 branching**: a violated special-ordered set is split around its
  weighted midpoint and each child forbids one half of the set.  The paper
  reports this is what made the atmosphere sweet-spot sets tractable
  ("improved the runtime of the MINLP solver by two orders of magnitude").
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.minlp.expr import Expr
from repro.minlp.problem import Problem, SOS1, Sense
from repro.minlp.solution import Solution, SolveStats, Status
from repro.obs.trace import get_tracer
from repro.util.timing import Timer

_TRACER = get_tracer()

#: A relaxation solver maps a bounded problem to a Solution.
RelaxSolver = Callable[[Problem], Solution]

#: A lazy-cut callback receives the master problem and a discrete-feasible
#: point; it returns (cuts, candidate) where cuts is a list of
#: ``(name, body, lb, ub)`` tuples to add globally and candidate is an
#: optional incumbent ``(values, objective)`` discovered along the way
#: (e.g. from the NLP subproblem solved at that integer assignment).
LazyCutCallback = Callable[
    [Problem, dict[str, float]],
    tuple[list[tuple[str, Expr, float, float]], tuple[dict[str, float], float] | None],
]


@dataclass
class _Node:
    bounds: dict[str, tuple[float, float]]
    sos_allowed: dict[str, tuple[int, ...]]
    parent_bound: float
    depth: int
    # Pseudocost bookkeeping: how this node was created.
    branch_var: str | None = None
    branch_frac: float = 0.0  # fractional distance moved by the branching
    # Parent node's final simplex basis (a SimplexBasis), inherited so the
    # child LP warm-starts via dual-simplex restoration instead of a cold
    # two-phase solve.  None at the root or when the LP backend is HiGHS.
    basis: object | None = None


@dataclass
class BnBOptions:
    """Knobs for the tree search."""

    int_tol: float = 1e-6
    gap_abs: float = 1e-7
    gap_rel: float = 1e-7
    node_limit: int = 100_000
    time_limit: float = 120.0
    branch_rule: str = "most_fractional"  # or "first_fractional"/"pseudocost"
    sos_branching: bool = True  # False: branch SOS members as plain binaries
    #: LP relaxation backend: "highs" (scipy), "simplex" (built-in vectorized
    #: simplex with basis reuse), or "auto" (simplex while the instance fits
    #: its dense-tableau sweet spot, HiGHS beyond).  Default stays "highs":
    #: on degenerate allocation LPs the two backends legitimately return
    #: different optimal vertices, and downstream experiments pin their
    #: expectations to HiGHS's choice.
    lp_backend: str = "highs"
    #: Hand each child node its parent's final basis (simplex backend only).
    #: Node solutions are bit-identical with this on or off; off forces a
    #: cold two-phase solve per node (the baseline the benchmarks compare).
    basis_reuse: bool = True
    log: Callable[[str], None] | None = None

    def with_budget(
        self, wall_seconds: float | None = None, node_limit: int | None = None
    ) -> "BnBOptions":
        """A copy capped to a remaining wall/node budget (never loosened).

        The solver degradation chain hands each tier whatever is left of the
        pipeline's overall budget; limits only ever shrink so a caller's own
        tighter settings survive.
        """
        from dataclasses import replace

        out = replace(self)
        if wall_seconds is not None:
            out.time_limit = max(0.0, min(self.time_limit, float(wall_seconds)))
        if node_limit is not None:
            out.node_limit = max(0, min(self.node_limit, int(node_limit)))
        return out


class BranchAndBound:
    """Best-first branch-and-bound over a :class:`Problem`.

    The engine minimizes internally; a maximize sense is handled by sign
    flips at the comparison points.
    """

    def __init__(
        self,
        problem: Problem,
        relax_solver: RelaxSolver | str,
        options: BnBOptions | None = None,
        lazy_cuts: LazyCutCallback | None = None,
        incumbent: tuple[dict[str, float], float] | None = None,
        known_cuts: set[str] | None = None,
    ) -> None:
        self.problem = problem
        self.opts = options or BnBOptions()
        self.lazy_cuts = lazy_cuts
        #: Optional warm-start incumbent ``(values, objective)``.  The point
        #: must be feasible for ``problem`` (callers certify it, e.g. via
        #: :func:`repro.minlp.heuristics.warm_start_incumbent`); the tree
        #: then starts with a finite primal bound and prunes from node one.
        self.initial_incumbent = incumbent
        self._sign = -1.0 if problem.sense is Sense.MAXIMIZE else 1.0
        self._cuts: list[tuple[str, Expr, float, float]] = []
        # Cut names already present in ``problem`` itself (e.g. pooled OA
        # cuts preinstalled into the master): a lazy callback re-proposing
        # one is a duplicate, and the node fathoms instead of re-queuing.
        self._cut_names: set[str] = set(known_cuts or ())
        self._incremental = None
        if relax_solver == "lp":
            # Fast path: cache the LP matrix once; nodes only tweak bounds
            # and cuts only append rows (no symbolic rebuilds).
            from repro.minlp.linprog import IncrementalLPSolver

            self._incremental = IncrementalLPSolver(problem, backend=self.opts.lp_backend)
            self.relax = None
        elif callable(relax_solver):
            self.relax = relax_solver
        else:
            raise TypeError(f"relax_solver must be callable or 'lp', got {relax_solver!r}")
        # Pseudocosts: per variable, (degradation sum, observation count) —
        # the average objective worsening per unit of fractional distance
        # removed, learned from solved child nodes.
        self._pseudo: dict[str, list[float]] = {}

    # -- helpers -----------------------------------------------------------

    def _node_problem(self, node: _Node) -> Problem:
        prob = self.problem.with_bounds(node.bounds)
        for name, body, lb, ub in self._cuts:
            prob.add_constraint(name, body, lb, ub)
        return prob

    def _fractional_vars(self, values: dict[str, float]) -> list[tuple[str, float]]:
        out = []
        for var in self.problem.discrete_variables():
            x = values[var.name]
            frac = abs(x - round(x))
            if frac > self.opts.int_tol:
                out.append((var.name, frac))
        return out

    def _violated_sos(
        self, values: dict[str, float], node: _Node
    ) -> tuple[SOS1, tuple[int, ...]] | None:
        for sos in self.problem.sos1_sets:
            allowed = node.sos_allowed.get(sos.name, tuple(range(len(sos.members))))
            nonzero = [
                k
                for k in allowed
                if abs(values[sos.members[k]]) > self.opts.int_tol
            ]
            if len(nonzero) > 1:
                return sos, allowed
        return None

    def _select_branch_var(self, fracs: list[tuple[str, float]]) -> str:
        if self.opts.branch_rule == "first_fractional":
            return fracs[0][0]
        if self.opts.branch_rule == "pseudocost":
            return self._select_pseudocost(fracs)
        # most fractional: distance to nearest integer closest to 0.5
        return max(fracs, key=lambda nf: min(nf[1], 1.0 - nf[1]))[0]

    def _pseudocost(self, name: str) -> float:
        """Learned per-unit degradation; global average before any history."""
        entry = self._pseudo.get(name)
        if entry and entry[1] > 0:
            return entry[0] / entry[1]
        totals = [s / c for s, c in self._pseudo.values() if c > 0]
        return sum(totals) / len(totals) if totals else 1.0

    def _select_pseudocost(self, fracs: list[tuple[str, float]]) -> str:
        # Score each candidate by its expected objective movement weighted by
        # how much fractionality the dichotomy removes (product rule over
        # the min of the two directions — the standard reliability proxy).
        def score(nf: tuple[str, float]) -> float:
            name, frac = nf
            per_unit = self._pseudocost(name)
            return per_unit * min(frac, 1.0 - frac)

        return max(fracs, key=score)[0]

    def _update_pseudocost(self, node: _Node, child_bound: float) -> None:
        if node.branch_var is None or node.branch_frac <= 0:
            return
        if not (math.isfinite(node.parent_bound) and math.isfinite(child_bound)):
            return
        degradation = max(0.0, child_bound - node.parent_bound)
        entry = self._pseudo.setdefault(node.branch_var, [0.0, 0.0])
        entry[0] += degradation / node.branch_frac
        entry[1] += 1.0

    def _branch_sos(
        self, node: _Node, sos: SOS1, allowed: tuple[int, ...], values: dict[str, float]
    ) -> list[_Node]:
        # Weighted-average split point (classic SOS1 branching).
        weights = [sos.weights[k] for k in allowed]
        mags = [abs(values[sos.members[k]]) for k in allowed]
        total = sum(mags)
        wstar = sum(w * m for w, m in zip(weights, mags)) / total
        left = tuple(k for k in allowed if sos.weights[k] <= wstar)
        right = tuple(k for k in allowed if sos.weights[k] > wstar)
        if not left or not right:  # degenerate: force a 1/rest split
            left, right = allowed[:1], allowed[1:]
        children = []
        for keep in (left, right):
            bounds = dict(node.bounds)
            for k in allowed:
                if k not in keep:
                    name = sos.members[k]
                    var = self.problem.variable(name)
                    if var.lb > 0.0 or var.ub < 0.0:
                        break  # fixing to 0 impossible -> child infeasible
                    bounds[name] = (0.0, 0.0)
            else:
                sos_allowed = dict(node.sos_allowed)
                sos_allowed[sos.name] = keep
                children.append(
                    _Node(bounds, sos_allowed, node.parent_bound, node.depth + 1)
                )
        return children

    def _branch_int(self, node: _Node, name: str, value: float) -> list[_Node]:
        var = self.problem.variable(name)
        lo, hi = node.bounds.get(name, (var.lb, var.ub))
        floor_v, ceil_v = math.floor(value), math.ceil(value)
        frac = value - floor_v
        children = []
        if floor_v >= lo:
            b = dict(node.bounds)
            b[name] = (lo, float(floor_v))
            children.append(
                _Node(
                    b, dict(node.sos_allowed), node.parent_bound, node.depth + 1,
                    branch_var=name, branch_frac=max(frac, 1e-6),
                )
            )
        if ceil_v <= hi:
            b = dict(node.bounds)
            b[name] = (float(ceil_v), hi)
            children.append(
                _Node(
                    b, dict(node.sos_allowed), node.parent_bound, node.depth + 1,
                    branch_var=name, branch_frac=max(1.0 - frac, 1e-6),
                )
            )
        return children

    def add_global_cut(self, name: str, body: Expr, lb: float, ub: float) -> bool:
        """Install a cut valid for the whole tree; returns False on duplicate."""
        if name in self._cut_names:
            return False
        self._cut_names.add(name)
        self._cuts.append((name, body, lb, ub))
        if self._incremental is not None:
            self._incremental.add_row(body, lb, ub)
        return True

    # -- main loop -----------------------------------------------------------

    def solve(self) -> Solution:
        """Run the search and return the best solution with a proven bound."""
        opts = self.opts
        stats = SolveStats()
        timer = Timer().start()
        sign = self._sign

        incumbent: dict[str, float] | None = None
        incumbent_obj = math.inf  # in minimize-sign space
        if self.initial_incumbent is not None:
            values, obj = self.initial_incumbent
            incumbent = dict(values)
            incumbent_obj = sign * float(obj)
            if opts.log:
                opts.log(f"warm-start incumbent {obj:.6g}")

        counter = itertools.count()
        root = _Node({}, {}, -math.inf, 0)
        heap: list[tuple[float, int, _Node]] = [(-math.inf, next(counter), root)]
        status = Status.OPTIMAL

        def log(msg: str) -> None:
            if opts.log:
                opts.log(msg)

        while heap:
            if stats.nodes_explored >= opts.node_limit:
                status = Status.NODE_LIMIT
                break
            if self._now(timer) >= opts.time_limit:
                status = Status.TIME_LIMIT
                break

            node_bound, _, node = heapq.heappop(heap)
            if node_bound >= incumbent_obj - opts.gap_abs:
                stats.nodes_pruned += 1
                continue

            stats.nodes_explored += 1
            node_basis = None
            if self._incremental is not None:
                prior = node.basis if opts.basis_reuse else None
                rel = self._incremental.solve(node.bounds, basis=prior)
                if opts.basis_reuse:
                    node_basis = self._incremental.last_basis
            else:
                rel = self.relax(self._node_problem(node))
            stats.lp_solves += rel.stats.lp_solves
            stats.nlp_solves += rel.stats.nlp_solves

            if rel.status is Status.INFEASIBLE:
                stats.nodes_pruned += 1
                continue
            if rel.status is Status.UNBOUNDED:
                # An unbounded relaxation at the root means the MINLP itself
                # is unbounded or the model is missing bounds; surface it.
                stats.wall_time = timer.stop()
                return Solution(
                    Status.UNBOUNDED, stats=stats, message="unbounded relaxation"
                )
            if not rel.status.is_ok:
                stats.nodes_pruned += 1
                continue

            bound = sign * rel.objective
            self._update_pseudocost(node, bound)
            if bound >= incumbent_obj - opts.gap_abs:
                stats.nodes_pruned += 1
                continue

            values = rel.values
            fracs = self._fractional_vars(values)
            if opts.sos_branching:
                sos_viol = self._violated_sos(values, node)
            else:
                # Binary-branching mode (the slow alternative the paper
                # compares against): prefer variable dichotomy and fall back
                # to SOS branching only when every discrete variable is
                # integral yet a set is still violated (possible only for
                # models without an explicit sum-to-one row).
                sos_viol = None if fracs else self._violated_sos(values, node)

            if not fracs and sos_viol is None:
                # Discrete-feasible point.
                if self.lazy_cuts is not None:
                    cuts, candidate = self.lazy_cuts(self.problem, values)
                    if candidate is not None:
                        cand_values, cand_obj = candidate
                        cand_signed = sign * cand_obj
                        if cand_signed < incumbent_obj - opts.gap_abs:
                            incumbent, incumbent_obj = dict(cand_values), cand_signed
                            stats.incumbent_updates += 1
                            log(f"incumbent (NLP) {cand_obj:.6g}")
                            if _TRACER.enabled:
                                _TRACER.event(
                                    "bnb.incumbent",
                                    objective=cand_obj,
                                    source="nlp",
                                    node=stats.nodes_explored,
                                )
                    added = 0
                    for cut in cuts:
                        if self.add_global_cut(*cut):
                            added += 1
                    stats.cuts_added += added
                    if added:
                        # Re-queue this node: its relaxation changed.  Its own
                        # final basis extends naturally across the appended
                        # cut rows, so the re-solve is a few dual pivots.
                        node.basis = node_basis
                        heapq.heappush(heap, (bound, next(counter), node))
                        continue
                obj_signed = sign * rel.objective
                if obj_signed < incumbent_obj - opts.gap_abs:
                    incumbent, incumbent_obj = dict(values), obj_signed
                    stats.incumbent_updates += 1
                    log(f"incumbent {rel.objective:.6g}")
                    if _TRACER.enabled:
                        _TRACER.event(
                            "bnb.incumbent",
                            objective=rel.objective,
                            source="relaxation",
                            node=stats.nodes_explored,
                        )
                continue  # leaf: fathomed by integrality

            if sos_viol is not None:
                children = self._branch_sos(node, *sos_viol, values)
            else:
                name = self._select_branch_var(fracs)
                children = self._branch_int(node, name, values[name])
            for child in children:
                child.parent_bound = bound
                child.basis = node_basis
                heapq.heappush(heap, (bound, next(counter), child))

        stats.wall_time = timer.stop()

        best_bound = min((b for b, _, _ in heap), default=incumbent_obj)
        if incumbent is None:
            if status is Status.OPTIMAL:
                return Solution(Status.INFEASIBLE, stats=stats, message="tree exhausted")
            return Solution(status, stats=stats, message="no incumbent found")
        gap = incumbent_obj - best_bound
        if status is Status.OPTIMAL or gap <= max(
            opts.gap_abs, opts.gap_rel * abs(incumbent_obj)
        ):
            final = Status.OPTIMAL
            best_bound = incumbent_obj
        else:
            final = Status.FEASIBLE
        return Solution(
            final,
            values=incumbent,
            objective=sign * incumbent_obj,
            bound=sign * best_bound,
            stats=stats,
        )

    @staticmethod
    def _now(timer: Timer) -> float:
        # Peek elapsed time without stopping the stopwatch.
        import time

        return timer.elapsed + (
            (time.perf_counter() - timer._start) if timer.running else 0.0
        )
