"""Vectorized two-phase primal simplex with cross-solve basis reuse.

This is the dependency-free counterpart of :func:`repro.minlp.linprog.solve_lp`
(which wraps scipy/HiGHS).  It exists for three reasons:

* **validation** — property-based tests cross-check HiGHS, this
  implementation, and the retained loop-based reference
  (:mod:`repro.minlp.simplex_reference`) on random LPs, so a regression in
  how we translate range constraints shows up as a disagreement;
* **portability** — the branch-and-bound engine can run without scipy's LP
  if ever needed;
* **speed** — branch-and-bound re-solves near-identical LPs thousands of
  times; this backend accepts the parent node's optimal basis and restores
  feasibility with a handful of dual-simplex pivots instead of re-running
  two-phase simplex from artificials.

Every inner loop is numpy-batched: the pivot is a single rank-1 update over
the whole tableau, the entering column is a Dantzig ``argmin`` over reduced
costs (with a deterministic switch to Bland's rule after a stall, which
restores the anti-cycling guarantee), and the ratio test is a masked
vectorized divide with Bland tie-breaking on basis indices.

Transformation to standard form ``min c·y  s.t.  Ay = b, y >= 0``:

1. shift variables with a finite lower bound (``x = lb + y``); mirror
   variables with only a finite upper bound (``x = ub − y``); split free
   variables (``x = y⁺ − y⁻``);
2. re-emit finite upper bounds of shifted variables as explicit ``<=`` rows
   (placed *first* so appended cut rows never renumber existing slacks);
3. split each two-sided row into ``<=`` / ``>=`` rows, add slack/surplus
   columns, flip rows until ``b >= 0``;
4. cold start: phase 1 minimizes the sum of artificials, phase 2 the true
   objective.  Warm start: the supplied basis is refactorized directly
   (``B⁻¹[A | b]`` via one dense solve), primal feasibility is restored by
   dual-simplex pivots, and phase 1 is skipped entirely.

Basis handoff protocol (used by branch-and-bound): a solve returns a
:class:`SimplexBasis` carrying the basic column per row plus a *structure
signature* (variable kinds, upper-row count, per-row sense pattern).  A
later solve may reuse it when the signature matches — bound changes only
move ``b``, so the parent basis stays dual feasible — or when the child has
extra trailing rows (appended cuts), whose slacks extend the basis.  Any
structural mismatch is a miss and falls back to a cold start.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.minlp.linprog import LinearProgram, LPResult
from repro.minlp.solution import Status
from repro.obs import telemetry

_TOL = 1e-9
_FEAS_TOL = 1e-7
#: Consecutive non-improving Dantzig pivots before switching to Bland's rule.
_STALL_LIMIT = 32


@dataclass(frozen=True)
class SimplexBasis:
    """Optimal basis of a standard-form solve, reusable across related solves.

    ``columns[i]`` is the basic column of standard-form row ``i`` (artificial
    columns never appear — a basis that still carries one is not captured).
    ``signature`` fingerprints the standard-form structure; see
    :func:`basis_compatible` for the reuse rule.
    """

    columns: tuple[int, ...]
    signature: tuple


def basis_compatible(prior: SimplexBasis, signature: tuple) -> bool:
    """True when ``prior`` can warm-start a solve with this structure.

    Variable kinds, y-width, and upper-row count must match exactly; the
    prior row-sense pattern must be a *prefix* of the new one (trailing rows
    are appended cuts whose slacks extend the basis).
    """
    p, s = prior.signature, signature
    if p[0] != s[0] or p[1] != s[1] or p[2] != s[2]:
        return False
    return len(p[3]) <= len(s[3]) and s[3][: len(p[3])] == p[3]


class _StandardForm:
    """Vectorized original-variable -> standard-form mapping."""

    def __init__(self, lp: LinearProgram) -> None:
        lb, ub, c = lp.var_lb, lp.var_ub, lp.c
        fin_lb = np.isfinite(lb)
        fin_ub = np.isfinite(ub)
        self.mirror = ~fin_lb & fin_ub  # x = ub - y
        self.free = ~fin_lb & ~fin_ub  # x = y+ - y-
        has_upper = fin_lb & fin_ub  # shifted var keeps ub as a <= row

        span = np.where(self.free, 2, 1)
        self.first = np.concatenate(([0], np.cumsum(span)[:-1])).astype(int)
        self.num_y = int(span.sum())
        self.sign = np.where(self.mirror, -1.0, 1.0)
        # shift -> lb, mirror -> ub, free -> 0 (no shift).
        self.offset = np.where(fin_lb, lb, np.where(fin_ub, ub, 0.0))

        cost = np.zeros(self.num_y)
        cost[self.first] = c * self.sign
        if self.free.any():
            cost[self.first[self.free] + 1] = -c[self.free]
        self.cost = cost
        self.const_shift = lp.c0 + float(c @ self.offset)

        self.upper_rows = [
            (int(self.first[j]), float(ub[j] - lb[j])) for j in np.flatnonzero(has_upper)
        ]
        # Per-variable structure code: 0 shift / 1 mirror / 2 free, +4 if the
        # variable also emits an upper row.  Part of the basis signature.
        self.kinds = tuple(
            int(k) for k in self.mirror * 1 + self.free * 2 + has_upper * 4
        )

    def rows_over_y(self, A: np.ndarray) -> np.ndarray:
        """Translate constraint rows over x into rows over y (whole matrix)."""
        R = np.zeros((A.shape[0], self.num_y))
        R[:, self.first] = A * self.sign
        if self.free.any():
            R[:, self.first[self.free] + 1] = -A[:, self.free]
        return R

    def original_x(self, y: np.ndarray) -> np.ndarray:
        x = self.offset + self.sign * y[self.first]
        if self.free.any():
            x[self.free] -= y[self.first[self.free] + 1]
        return x


@dataclass
class _Assembled:
    """Standard-form system: ``A y' = b`` over [y | slack] columns, b >= 0."""

    A: np.ndarray  # m × (num_y + num_slack), rows pre-flipped so b >= 0
    b: np.ndarray
    slack_of_row: np.ndarray  # slack column per row, -1 for equality rows
    signature: tuple


def _assemble(lp: LinearProgram, sf: _StandardForm) -> _Assembled:
    m0 = lp.num_rows
    if m0:
        R = sf.rows_over_y(lp.A)
        const = lp.A @ sf.offset
    else:
        R = np.zeros((0, sf.num_y))
        const = np.zeros(0)
    lo = lp.row_lb - const
    hi = lp.row_ub - const
    eq = lp.row_lb == lp.row_ub
    le = ~eq & np.isfinite(hi)
    ge = ~eq & np.isfinite(lo)

    # Expand each original row in order: eq, or le-then-ge.  lexsort keeps
    # the expansion stable so appended cut rows land strictly after existing
    # ones — the prefix property the basis handoff relies on.
    src = np.concatenate([np.flatnonzero(eq), np.flatnonzero(le), np.flatnonzero(ge)])
    kind = np.concatenate(
        [np.zeros(int(eq.sum()), int), np.ones(int(le.sum()), int), np.full(int(ge.sum()), 2)]
    )
    order = np.lexsort((kind, src))
    src, kind = src[order], kind[order]
    body = R[src]
    rhs = np.where(kind == 1, hi[src], lo[src])

    u = len(sf.upper_rows)
    upper_body = np.zeros((u, sf.num_y))
    if u:
        upper_body[np.arange(u), [yi for yi, _ in sf.upper_rows]] = 1.0
    Y = np.vstack([upper_body, body]) if u or len(src) else np.zeros((0, sf.num_y))
    b = np.concatenate([np.array([ubv for _, ubv in sf.upper_rows]), rhs])

    m = Y.shape[0]
    has_slack = np.concatenate([np.ones(u, bool), kind != 0])
    num_slack = int(has_slack.sum())
    slack_sign = np.concatenate([np.ones(u), np.where(kind == 2, -1.0, 1.0)])
    S = np.zeros((m, num_slack))
    slack_rows = np.flatnonzero(has_slack)
    S[slack_rows, np.arange(num_slack)] = slack_sign[slack_rows]
    A = np.hstack([Y, S])

    neg = b < 0.0
    if neg.any():
        A[neg] *= -1.0
        b = np.where(neg, -b, b)

    slack_of_row = np.full(m, -1, dtype=int)
    slack_of_row[slack_rows] = sf.num_y + np.arange(num_slack)
    signature = (sf.kinds, sf.num_y, u, tuple(int(k) for k in kind))
    return _Assembled(A, b, slack_of_row, signature)


def _pivot(T: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    pr = T[row] / T[row, col]
    colv = T[:, col].copy()
    colv[row] = 0.0
    T -= colv[:, None] * pr[None, :]
    T[row] = pr
    basis[row] = col


def _phase(
    T: np.ndarray, basis: np.ndarray, ncols: int, max_iter: int
) -> tuple[Status, int]:
    """Primal simplex iterations on tableau ``T`` (last row = objective).

    Entering: Dantzig most-negative reduced cost; after :data:`_STALL_LIMIT`
    non-improving pivots the rule switches to Bland's smallest index until
    the objective moves again, so degenerate instances cannot cycle.
    Leaving: vectorized ratio test, ties broken by smallest basis index.
    """
    m = T.shape[0] - 1
    pivots = 0
    bland = False
    stall = 0
    last = T[-1, -1]
    ratios = np.empty(m)  # reused across iterations: this loop is the hot path
    while pivots < max_iter:
        obj = T[-1, :ncols]
        if bland:
            neg = np.flatnonzero(obj < -_TOL)
            if neg.size == 0:
                return Status.OPTIMAL, pivots
            col = int(neg[0])
        else:
            col = int(np.argmin(obj))
            if obj[col] >= -_TOL:
                return Status.OPTIMAL, pivots
        a = T[:m, col]
        ratios.fill(np.inf)
        np.divide(T[:m, -1], a, out=ratios, where=a > _TOL)
        rmin = ratios.min()
        if rmin == np.inf:  # no positive pivot entry in the column
            return Status.UNBOUNDED, pivots
        ties = np.flatnonzero(ratios <= rmin + _TOL)
        row = int(ties[0]) if ties.size == 1 else int(ties[np.argmin(basis[ties])])
        _pivot(T, basis, row, col)
        pivots += 1
        now = T[-1, -1]
        if now > last + 1e-12:
            stall, bland = 0, False
        else:
            stall += 1
            if stall >= _STALL_LIMIT:
                bland = True
        last = now
    return Status.ITERATION_LIMIT, pivots


def _dual_phase(
    T: np.ndarray, basis: np.ndarray, ncols: int, max_iter: int
) -> tuple[Status, int]:
    """Dual simplex: restore primal feasibility from a dual-feasible basis.

    Used after a warm start whose rhs moved (bound tightening, appended
    cuts).  Returns OPTIMAL once the rhs is nonnegative, INFEASIBLE when a
    negative row has no eligible pivot (the LP itself is infeasible), or
    ITERATION_LIMIT (caller falls back to a cold start).
    """
    m = T.shape[0] - 1
    pivots = 0
    while pivots < max_iter:
        rhs = T[:m, -1]
        row = int(np.argmin(rhs))
        if rhs[row] >= -_FEAS_TOL:
            return Status.OPTIMAL, pivots
        r = T[row, :ncols]
        cand = r < -_TOL
        if not cand.any():
            return Status.INFEASIBLE, pivots
        ratios = np.full(ncols, np.inf)
        np.divide(T[-1, :ncols], -r, out=ratios, where=cand)
        col = int(np.flatnonzero(ratios <= ratios.min() + _TOL)[0])
        _pivot(T, basis, row, col)
        pivots += 1
    return Status.ITERATION_LIMIT, pivots


def _capture_basis(basis: np.ndarray, ncols: int, signature: tuple) -> SimplexBasis | None:
    if (basis >= ncols).any():  # an artificial survived (redundant row)
        return None
    # Stored sorted: the basic *set* is what matters (row assignment is an
    # artifact of the pivot path), and a canonical order keeps downstream
    # refactorizations bit-reproducible.
    return SimplexBasis(tuple(sorted(int(c) for c in basis)), signature)


def _finish(
    lp: LinearProgram,
    sf: _StandardForm,
    asm: _Assembled,
    T: np.ndarray,
    basis: np.ndarray,
    warm: bool,
) -> LPResult:
    """Canonical solution extraction from the final basis.

    Values are recomputed as ``B⁻¹ b`` against the *original* standard-form
    matrix rather than read off the pivoted tableau, so cold and warm solves
    that reach the same optimal basis return bit-identical points — the
    property the branch-and-bound reuse-on/off equivalence tests assert.
    """
    m, ncols = asm.A.shape
    # Sort the basis first: two pivot paths ending at the same basic *set*
    # (in different row orders) then factorize the exact same matrix, so the
    # extracted point is bit-identical — the reuse-on/off equivalence hinge.
    canon = np.sort(basis)
    try:
        B = np.zeros((m, m))
        in_cols = canon < ncols
        B[:, in_cols] = asm.A[:, canon[in_cols]]
        art_rows = canon[~in_cols] - ncols
        B[art_rows, np.flatnonzero(~in_cols)] = 1.0
        xB = np.linalg.solve(B, asm.b)
    except np.linalg.LinAlgError:  # numerically singular: fall back to tableau
        canon, xB = basis, T[:m, -1]
    y_full = np.zeros(ncols + m)
    y_full[canon] = xB
    y = y_full[:ncols]
    x = sf.original_x(y[: sf.num_y])
    res = LPResult(Status.OPTIMAL, x, float(lp.c @ x) + lp.c0)
    res.basis = _capture_basis(basis, ncols, asm.signature)
    res.warm_started = warm
    return res


def _warm_solve(
    lp: LinearProgram,
    sf: _StandardForm,
    asm: _Assembled,
    prior: SimplexBasis,
    max_iter: int,
) -> tuple[LPResult, int, int] | None:
    """Attempt a basis-reuse solve; None means the caller must cold-start."""
    if not basis_compatible(prior, asm.signature):
        return None
    m, ncols = asm.A.shape
    covered = len(prior.columns)
    if covered > m:
        return None
    extension = asm.slack_of_row[covered:]
    if (extension < 0).any():  # a trailing row has no slack (equality cut)
        return None
    basis = np.concatenate([np.asarray(prior.columns, dtype=int), extension])
    try:
        sol = np.linalg.solve(
            asm.A[:, basis], np.concatenate([asm.A, asm.b[:, None]], axis=1)
        )
    except np.linalg.LinAlgError:
        return None
    cost_full = np.zeros(ncols)
    cost_full[: sf.num_y] = sf.cost
    cb = cost_full[basis]
    T = np.empty((m + 1, ncols + 1))
    T[:m] = sol
    T[-1, :ncols] = cost_full - cb @ sol[:, :ncols]
    T[-1, -1] = -float(cb @ sol[:, -1])

    dual_pivots = 0
    if T[:m, -1].min() < -_FEAS_TOL:
        if T[-1, :ncols].min() < -_FEAS_TOL:
            return None  # neither primal nor dual feasible: cold start
        st, dual_pivots = _dual_phase(T, basis, ncols, max_iter)
        if st is Status.ITERATION_LIMIT:
            return None
        if st is Status.INFEASIBLE:
            res = LPResult(Status.INFEASIBLE, None, math.inf, "dual simplex certificate")
            res.warm_started = True
            return res, dual_pivots, 0
    st, pivots = _phase(T, basis, ncols, max_iter)
    if st is Status.ITERATION_LIMIT:
        return None
    if st is Status.UNBOUNDED:
        res = LPResult(Status.UNBOUNDED, None, -math.inf, "phase 2 unbounded")
        res.warm_started = True
        return res, dual_pivots, pivots
    return _finish(lp, sf, asm, T, basis, warm=True), dual_pivots, pivots


def _cold_solve(
    lp: LinearProgram, sf: _StandardForm, asm: _Assembled, max_iter: int
) -> tuple[LPResult, int, int]:
    m, ncols = asm.A.shape
    width = ncols + m
    T = np.zeros((m + 1, width + 1))
    T[:m, :ncols] = asm.A
    T[np.arange(m), ncols + np.arange(m)] = 1.0
    T[:m, -1] = asm.b
    # Rows whose slack column survived the b>=0 flip with coefficient +1 start
    # with that slack basic — phase 1 then only has to clear the remainder
    # (equality rows and flipped inequalities) instead of all m artificials.
    slack = asm.slack_of_row
    usable = (slack >= 0) & (asm.A[np.arange(m), np.maximum(slack, 0)] == 1.0)
    basis = np.where(usable, np.maximum(slack, 0), ncols + np.arange(m))
    T[-1, ncols:width] = 1.0  # unused artificials keep cost 1: they never enter
    T[-1] -= T[:m][~usable].sum(axis=0)

    st1, p1 = _phase(T, basis, ncols, max_iter)
    if st1 is Status.ITERATION_LIMIT:
        return LPResult(st1, None, math.inf, "phase-1 iteration limit"), p1, 0
    if st1 is not Status.OPTIMAL:
        return LPResult(Status.ERROR, None, math.inf, "phase 1 failed"), p1, 0
    if -T[-1, -1] > _FEAS_TOL:
        return LPResult(Status.INFEASIBLE, None, math.inf, "phase 1 positive"), p1, 0

    # Drive surviving artificials out (or leave them on redundant rows).
    for i in np.flatnonzero(basis >= ncols):
        r = np.abs(T[i, :ncols])
        j = int(np.argmax(r))
        if r[j] > _TOL:
            _pivot(T, basis, int(i), j)
    if (basis < ncols).all():  # drop artificial columns: phase 2 never enters them
        T = np.concatenate([T[:, :ncols], T[:, -1:]], axis=1)

    cost_full = np.zeros(T.shape[1] - 1)
    cost_full[: sf.num_y] = sf.cost
    T[-1, :-1] = cost_full
    T[-1, -1] = 0.0
    T[-1] -= cost_full[basis] @ T[:m]

    st2, p2 = _phase(T, basis, ncols, max_iter)
    if st2 is Status.UNBOUNDED:
        return LPResult(st2, None, -math.inf, "phase 2 unbounded"), p1, p2
    if st2 is Status.ITERATION_LIMIT:
        return LPResult(st2, None, math.inf, "phase-2 iteration limit"), p1, p2
    return _finish(lp, sf, asm, T, basis, warm=False), p1, p2


def solve_lp_simplex(
    lp: LinearProgram, max_iter: int = 20000, basis: SimplexBasis | None = None
) -> LPResult:
    """Solve ``lp`` with the built-in vectorized two-phase simplex.

    ``basis`` optionally warm-starts from a prior solve's
    :attr:`LPResult.basis`; structural mismatches silently cold-start.  The
    result's ``warm_started`` flag reports whether reuse actually happened.
    """
    sf = _StandardForm(lp)
    asm = _assemble(lp, sf)
    if asm.A.shape[0] == 0:
        # Pure bound problem: minimize over the box; each y at 0 unless its
        # cost is negative, in which case the LP is unbounded above y.
        if np.any(sf.cost < -_TOL):
            return LPResult(Status.UNBOUNDED, None, -math.inf, "unbounded box LP")
        x = sf.original_x(np.zeros(sf.num_y))
        return LPResult(Status.OPTIMAL, x, float(lp.c @ x) + lp.c0)

    res = None
    p1 = p2 = pd = 0
    if basis is not None:
        warm = _warm_solve(lp, sf, asm, basis, max_iter)
        if warm is not None:
            res, pd, p2 = warm
    if res is None:
        res, p1, p2 = _cold_solve(lp, sf, asm, max_iter)
    telemetry.record_simplex(
        phase1=p1, phase2=p2, dual=pd, warm=res.warm_started,
        attempted=basis is not None,
    )
    return res
