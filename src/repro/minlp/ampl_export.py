"""Export a :class:`Problem` as an AMPL model.

The paper's production path writes the MINLP in AMPL and ships it (via a
Python script) to the NEOS server running MINOTAUR (§V).  This module emits
that artifact from any flat problem in the toolkit, so a model built here
can be cross-checked against real AMPL + MINOTAUR/BARON/Couenne when those
are available.

The exporter covers everything the HSLB formulations use: continuous /
integer / binary variables with bounds, one- and two-sided constraints over
the expression AST (+, *, /, **, log, exp, sqrt), minimize/maximize
objectives, and SOS1 sets (emitted via the standard ``sosno``/``ref``
suffixes).
"""

from __future__ import annotations

import math

from repro.minlp.expr import Add, Constant, Div, Expr, Mul, Pow, Unary, VarRef
from repro.minlp.problem import Domain, Problem, Sense


def _sanitize(name: str) -> str:
    """AMPL identifiers: letters, digits, underscores."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if not text or text[0].isdigit():
        text = "v_" + text
    return text


class _Namer:
    """Collision-free mapping from problem names to AMPL identifiers."""

    def __init__(self) -> None:
        self._map: dict[str, str] = {}
        self._used: set[str] = set()

    def __getitem__(self, name: str) -> str:
        if name not in self._map:
            base = _sanitize(name)
            candidate = base
            i = 2
            while candidate in self._used:
                candidate = f"{base}_{i}"
                i += 1
            self._used.add(candidate)
            self._map[name] = candidate
        return self._map[name]


def _expr_to_ampl(expr: Expr, names: _Namer) -> str:
    if isinstance(expr, Constant):
        v = expr.value
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return repr(v)
    if isinstance(expr, VarRef):
        return names[expr.name]
    if isinstance(expr, Add):
        return "(" + " + ".join(_expr_to_ampl(t, names) for t in expr.terms) + ")"
    if isinstance(expr, Mul):
        return "(" + " * ".join(_expr_to_ampl(t, names) for t in expr.terms) + ")"
    if isinstance(expr, Div):
        return (
            "("
            + _expr_to_ampl(expr.num, names)
            + " / "
            + _expr_to_ampl(expr.den, names)
            + ")"
        )
    if isinstance(expr, Pow):
        return (
            "("
            + _expr_to_ampl(expr.base, names)
            + " ^ "
            + _expr_to_ampl(expr.exponent, names)
            + ")"
        )
    if isinstance(expr, Unary):
        return f"{expr.func}({_expr_to_ampl(expr.arg, names)})"
    raise TypeError(f"cannot export expression node {type(expr).__name__}")


def _bounds_suffix(lb: float, ub: float) -> str:
    parts = []
    if math.isfinite(lb):
        parts.append(f">= {lb:g}")
    if math.isfinite(ub):
        parts.append(f"<= {ub:g}")
    return (" " + ", ".join(parts)) if parts else ""


def problem_to_ampl(problem: Problem) -> str:
    """Render ``problem`` as a standalone AMPL model string."""
    names = _Namer()
    lines: list[str] = [f"# AMPL export of problem {problem.name!r}", ""]

    for var in problem.variables:
        kind = ""
        if var.domain is Domain.INTEGER:
            kind = " integer"
        elif var.domain is Domain.BINARY:
            kind = " binary"
        bounds = "" if var.domain is Domain.BINARY else _bounds_suffix(var.lb, var.ub)
        lines.append(f"var {names[var.name]}{kind}{bounds};")
    lines.append("")

    sense = "minimize" if problem.sense is Sense.MINIMIZE else "maximize"
    lines.append(f"{sense} objective: {_expr_to_ampl(problem.objective, names)};")
    lines.append("")

    for con in problem.constraints:
        body = _expr_to_ampl(con.body, names)
        cname = names[f"con_{con.name}"]
        if con.is_equality:
            lines.append(f"subject to {cname}: {body} = {con.lb:g};")
        elif math.isfinite(con.lb) and math.isfinite(con.ub):
            lines.append(
                f"subject to {cname}: {con.lb:g} <= {body} <= {con.ub:g};"
            )
        elif math.isfinite(con.ub):
            lines.append(f"subject to {cname}: {body} <= {con.ub:g};")
        else:
            lines.append(f"subject to {cname}: {body} >= {con.lb:g};")
    if problem.sos1_sets:
        lines.append("")
        lines.append("# SOS1 sets via the standard sosno/ref suffixes")
        lines.append("suffix sosno integer, >= 1;")
        lines.append("suffix ref integer;")
        for idx, sos in enumerate(problem.sos1_sets, start=1):
            for member, weight in zip(sos.members, sos.weights):
                m = names[member]
                lines.append(f"let {m}.sosno := {idx};")
                lines.append(f"let {m}.ref := {weight:g};")
    lines.append("")
    return "\n".join(lines)
