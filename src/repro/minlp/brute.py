"""Exhaustive reference solver for small MINLPs.

Enumerates every discrete assignment (integer grids × SOS1 choices) and
solves the continuous completion for each.  Exponential by construction —
it exists so that tests can certify the branch-and-bound and
outer-approximation solvers against ground truth on miniature instances.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.minlp.nlp import solve_nlp
from repro.minlp.problem import Problem, Sense
from repro.minlp.solution import Solution, SolveStats, Status


def enumerate_assignments(problem: Problem, *, limit: int = 200_000):
    """Yield bound-fix dictionaries covering every discrete assignment.

    Raises ``ValueError`` when the grid would exceed ``limit`` combinations —
    a guard against accidentally brute-forcing a production-sized model.
    """
    axes: list[list[tuple[str, float]]] = []
    sos_member_names = {m for s in problem.sos1_sets for m in s.members}
    for var in problem.discrete_variables():
        if var.name in sos_member_names:
            continue  # enumerated through the SOS axis below
        if not (math.isfinite(var.lb) and math.isfinite(var.ub)):
            raise ValueError(f"discrete variable {var.name} is unbounded")
        values = [float(v) for v in range(int(math.ceil(var.lb)), int(math.floor(var.ub)) + 1)]
        if not values:
            return  # empty domain: no assignments at all
        axes.append([(var.name, v) for v in values])

    # One axis per SOS1 set: which single member is allowed to be nonzero.
    sos_axes: list[list[tuple[str, ...]]] = [
        [(m,) for m in sos.members] for sos in problem.sos1_sets
    ]

    total = 1
    for ax in axes:
        total *= len(ax)
    for ax in sos_axes:
        total *= len(ax)
    if total > limit:
        raise ValueError(f"brute force would enumerate {total} assignments (> {limit})")

    for combo in itertools.product(*axes) if axes else [()]:
        base = {name: (v, v) for name, v in combo}
        for sos_combo in itertools.product(*sos_axes) if sos_axes else [()]:
            fixes = dict(base)
            ok = True
            for sos, chosen in zip(problem.sos1_sets, sos_combo):
                for m in sos.members:
                    if m in chosen:
                        continue
                    var = problem.variable(m)
                    if var.lb > 0.0 or var.ub < 0.0:
                        ok = False
                        break
                    fixes[m] = (0.0, 0.0)
                if not ok:
                    break
            if ok:
                yield fixes


def solve_brute_force(
    problem: Problem,
    *,
    limit: int = 200_000,
    feas_tol: float = 1e-6,
    nlp_multistart: int = 1,
    rng: np.random.Generator | None = None,
) -> Solution:
    """Globally solve a small MINLP by total enumeration."""
    sign = -1.0 if problem.sense is Sense.MAXIMIZE else 1.0
    stats = SolveStats()
    best: dict[str, float] | None = None
    best_signed = math.inf

    has_continuous = any(not v.is_discrete for v in problem.variables)
    for fixes in enumerate_assignments(problem, limit=limit):
        stats.nodes_explored += 1
        fixed = problem.with_bounds(fixes)
        if has_continuous:
            sub = solve_nlp(fixed, multistart=nlp_multistart, rng=rng)
            stats.nlp_solves += sub.stats.nlp_solves
            if not sub.status.is_ok:
                continue
            values = sub.values
        else:
            values = {v.name: fixed.variable(v.name).lb for v in fixed.variables}
        if problem.max_violation(values) > feas_tol:
            continue
        obj = problem.objective_value(values)
        if sign * obj < best_signed:
            best_signed = sign * obj
            best = dict(values)
            stats.incumbent_updates += 1

    if best is None:
        return Solution(Status.INFEASIBLE, stats=stats, message="enumeration exhausted")
    obj = sign * best_signed
    return Solution(Status.OPTIMAL, values=best, objective=obj, bound=obj, stats=stats)
