"""Linear-programming layer.

Canonical LP container plus two interchangeable backends:

* :func:`solve_lp` — scipy's HiGHS (the production path, standing in for the
  CLP solver MINOTAUR uses for its LP relaxations);
* :func:`repro.minlp.simplex.solve_lp_simplex` — a pure-Python two-phase
  simplex used as a validation oracle and as a dependency-free fallback.

LPs here are stated over **row ranges**: minimize ``c·x + c0`` subject to
``row_lb <= A x <= row_ub`` and ``var_lb <= x <= var_ub``.  That matches how
:meth:`Problem.linear_matrix_form` extracts models and avoids duplicating
rows for two-sided constraints.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog as _scipy_linprog

from repro.minlp.problem import Problem
from repro.minlp.solution import Solution, SolveStats, Status
from repro.obs import telemetry


@dataclass
class LinearProgram:
    """Dense LP in range form: min ``c·x + c0`` s.t. ``row_lb<=Ax<=row_ub``."""

    c: np.ndarray
    A: np.ndarray
    row_lb: np.ndarray
    row_ub: np.ndarray
    var_lb: np.ndarray
    var_ub: np.ndarray
    c0: float = 0.0
    names: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float)
        self.A = np.atleast_2d(np.asarray(self.A, dtype=float))
        self.row_lb = np.asarray(self.row_lb, dtype=float)
        self.row_ub = np.asarray(self.row_ub, dtype=float)
        self.var_lb = np.asarray(self.var_lb, dtype=float)
        self.var_ub = np.asarray(self.var_ub, dtype=float)
        n = self.c.size
        if self.A.size == 0:
            self.A = self.A.reshape(0, n)
        m = self.A.shape[0]
        if self.A.shape[1] != n:
            raise ValueError(f"A has {self.A.shape[1]} columns, expected {n}")
        for arr, size, what in (
            (self.row_lb, m, "row_lb"),
            (self.row_ub, m, "row_ub"),
            (self.var_lb, n, "var_lb"),
            (self.var_ub, n, "var_ub"),
        ):
            if arr.size != size:
                raise ValueError(f"{what} has size {arr.size}, expected {size}")
        if not self.names:
            self.names = tuple(f"x{j}" for j in range(n))
        if np.any(self.row_lb > self.row_ub) or np.any(self.var_lb > self.var_ub):
            raise ValueError("crossed bounds in LP")

    @property
    def num_vars(self) -> int:
        return int(self.c.size)

    @property
    def num_rows(self) -> int:
        return int(self.A.shape[0])

    @classmethod
    def from_problem(cls, problem: Problem) -> "LinearProgram":
        """Build from a fully-linear :class:`Problem` (ignoring integrality)."""
        c, c0, A, row_lb, row_ub, var_lb, var_ub = problem.linear_matrix_form()
        sign = 1.0
        if problem.sense.value == "maximize":
            sign = -1.0
        return cls(
            c=sign * c,
            A=A,
            row_lb=row_lb,
            row_ub=row_ub,
            var_lb=var_lb,
            var_ub=var_ub,
            c0=sign * c0,
            names=problem.variable_names,
        )


@dataclass
class LPResult:
    """Outcome of one LP solve."""

    status: Status
    x: np.ndarray | None
    objective: float
    message: str = ""
    #: Final simplex basis (a :class:`repro.minlp.simplex.SimplexBasis`) when
    #: the built-in backend solved this LP; None for HiGHS solves.  Feed it
    #: back via ``solve_lp_simplex(..., basis=...)`` to warm-start a related
    #: solve (branch-and-bound child nodes do exactly this).
    basis: object | None = None
    #: True when a supplied basis was structurally compatible and actually
    #: seeded this solve (the hit/miss signal behind ``solver_basis_reuse``).
    warm_started: bool = False

    def values(self, lp: LinearProgram) -> dict[str, float]:
        if self.x is None:
            raise RuntimeError("LP has no solution point")
        return {n: float(v) for n, v in zip(lp.names, self.x)}


_SCIPY_STATUS = {
    0: Status.OPTIMAL,
    1: Status.ITERATION_LIMIT,
    2: Status.INFEASIBLE,
    3: Status.UNBOUNDED,
    4: Status.ERROR,
}


def _split_rows(
    A: np.ndarray, row_lb: np.ndarray, row_ub: np.ndarray
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Vectorized range-row split into scipy's ``(A_ub, b_ub, A_eq, b_eq)``.

    Two-sided rows are split into <=/>= pairs only where needed; equality
    rows go through ``A_eq`` directly.  The <=/>= pair of a two-sided row
    stays adjacent (source order, <= first): row order steers which of
    several degenerate optima HiGHS reports, so it must stay stable across
    refactorings for solves to remain bit-reproducible.
    """
    eq = row_lb == row_ub
    le = ~eq & np.isfinite(row_ub)
    ge = ~eq & np.isfinite(row_lb)
    A_ub = b_ub = A_eq = b_eq = None
    if le.any() or ge.any():
        src = np.concatenate([np.flatnonzero(le), np.flatnonzero(ge)])
        kind = np.concatenate([np.zeros(int(le.sum()), int), np.ones(int(ge.sum()), int)])
        order = np.lexsort((kind, src))
        src, kind = src[order], kind[order]
        sign = np.where(kind == 0, 1.0, -1.0)
        A_ub = A[src] * sign[:, None]
        b_ub = np.where(kind == 0, row_ub[src], -row_lb[src])
    if eq.any():
        A_eq = A[eq]
        b_eq = row_lb[eq]
    return A_ub, b_ub, A_eq, b_eq


def _run_highs(
    c: np.ndarray,
    c0: float,
    split: tuple,
    var_lb: np.ndarray,
    var_ub: np.ndarray,
) -> LPResult:
    A_ub, b_ub, A_eq, b_eq = split
    res = _scipy_linprog(
        c=c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=np.column_stack([var_lb, var_ub]),
        method="highs",
    )
    status = _SCIPY_STATUS.get(res.status, Status.ERROR)
    if status is Status.OPTIMAL:
        return LPResult(status, np.asarray(res.x), float(res.fun) + c0, res.message)
    return LPResult(status, None, math.inf, res.message)


def solve_lp(lp: LinearProgram) -> LPResult:
    """Solve ``lp`` with scipy's HiGHS backend."""
    return _run_highs(
        lp.c, lp.c0, _split_rows(lp.A, lp.row_lb, lp.row_ub), lp.var_lb, lp.var_ub
    )


#: "auto" backend routes an LP to the built-in vectorized simplex while it
#: stays within this dense-tableau sweet spot, and to HiGHS beyond it.  The
#: crossover is where one dense refactorization (m^3/3 flops) overtakes
#: scipy's per-call wrapper overhead (~1.5 ms on typical hardware).
_AUTO_SIMPLEX_MAX_ROWS = 72
_AUTO_SIMPLEX_MAX_COLS = 96


class IncrementalLPSolver:
    """LP relaxation engine with a cached matrix form and basis reuse.

    Branch-and-bound solves thousands of LPs that differ from the root only
    in variable bounds and appended cut rows.  Rebuilding the symbolic
    problem and re-extracting coefficients per node dominates runtime on
    models like the paper's 1-degree ocean set (241 selection binaries); this
    class extracts the matrix once, consolidates appended cut rows lazily,
    and caches the HiGHS eq/ub row split so a node re-solve touches no
    Python-level row loop at all.

    ``backend`` picks the LP engine per solve: ``"highs"`` (scipy),
    ``"simplex"`` (the built-in vectorized simplex, which accepts a parent
    basis and warm-starts dual-simplex style), or ``"auto"`` (simplex while
    the instance is small enough for its dense tableau to beat scipy's
    call overhead, HiGHS beyond that).  After every simplex-backed solve the
    final basis is published on :attr:`last_basis` for the caller to hand to
    child-node solves.
    """

    def __init__(self, problem: Problem, backend: str = "highs") -> None:
        if not problem.is_linear():
            raise ValueError(f"{problem.name!r} has nonlinear pieces")
        if backend not in ("highs", "simplex", "auto"):
            raise ValueError(f"unknown LP backend {backend!r}")
        self._problem = problem
        self._backend = backend
        self._sign = -1.0 if problem.sense.value == "maximize" else 1.0
        c, c0, A, row_lb, row_ub, var_lb, var_ub = problem.linear_matrix_form()
        self._c = self._sign * c
        self._c0 = self._sign * c0
        self._blocks: list[np.ndarray] = [np.atleast_2d(A)] if A.size else []
        self._lb_blocks: list[np.ndarray] = [np.asarray(row_lb, dtype=float)]
        self._ub_blocks: list[np.ndarray] = [np.asarray(row_ub, dtype=float)]
        self._num_rows = int(A.shape[0])
        self._base_lb = var_lb
        self._base_ub = var_ub
        self._names = problem.variable_names
        self._col = {n: j for j, n in enumerate(self._names)}
        self._matrix_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._split_cache: tuple | None = None
        #: Final basis of the most recent simplex-backed solve (or None).
        self.last_basis = None

    def add_row(self, body, lb: float, ub: float) -> None:
        """Append a (linear) cut row, e.g. an outer-approximation cut."""
        coeffs, k = body.linear_coefficients()
        row = np.zeros(len(self._names))
        for name, v in coeffs.items():
            row[self._col[name]] = v
        self._blocks.append(row[None, :])
        self._lb_blocks.append(np.array([lb - k]))
        self._ub_blocks.append(np.array([ub - k]))
        self._num_rows += 1
        self._matrix_cache = None
        self._split_cache = None

    def _matrix(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._matrix_cache is None:
            A = (
                np.vstack(self._blocks)
                if self._blocks
                else np.zeros((0, self._c.size))
            )
            row_lb = np.concatenate(self._lb_blocks)
            row_ub = np.concatenate(self._ub_blocks)
            self._blocks = [A] if A.size else []
            self._lb_blocks = [row_lb]
            self._ub_blocks = [row_ub]
            self._matrix_cache = (A, row_lb, row_ub)
        return self._matrix_cache

    def _split(self) -> tuple:
        if self._split_cache is None:
            A, row_lb, row_ub = self._matrix()
            self._split_cache = _split_rows(A, row_lb, row_ub)
        return self._split_cache

    def _resolve_backend(self) -> str:
        if self._backend != "auto":
            return self._backend
        if (
            self._num_rows <= _AUTO_SIMPLEX_MAX_ROWS
            and self._c.size <= _AUTO_SIMPLEX_MAX_COLS
        ):
            return "simplex"
        return "highs"

    def solve(
        self,
        bounds: Mapping[str, tuple[float, float]],
        basis=None,
    ) -> Solution:
        """Solve with per-variable bound overrides (intersected with base).

        ``basis`` optionally carries a parent node's final simplex basis;
        when the simplex backend handles this solve it warm-starts from it
        (dual-simplex restoration after the bound change) instead of
        re-running two-phase simplex from artificials.  Reuse hits/misses
        are recorded under the ``solver_basis_reuse_total`` metric.
        """
        var_lb = self._base_lb.copy()
        var_ub = self._base_ub.copy()
        for name, (lo, hi) in bounds.items():
            j = self._col[name]
            var_lb[j] = max(var_lb[j], lo)
            var_ub[j] = min(var_ub[j], hi)
            if var_lb[j] > var_ub[j]:
                return Solution(
                    Status.INFEASIBLE,
                    stats=SolveStats(),
                    message=f"crossed bounds on {name}",
                )
        backend = self._resolve_backend()
        stats = SolveStats(lp_solves=1)
        if backend == "simplex":
            res = self._solve_simplex(var_lb, var_ub, basis)
        else:
            self.last_basis = None
            res = _run_highs(self._c, self._c0, self._split(), var_lb, var_ub)
        if basis is not None:
            telemetry.record_basis_reuse("hit" if res.warm_started else "miss")
        if res.status is not Status.OPTIMAL:
            return Solution(res.status, stats=stats, message=res.message)
        values = {n: float(v) for n, v in zip(self._names, res.x)}
        obj = self._sign * res.objective
        return Solution(
            Status.OPTIMAL, values=values, objective=obj, bound=obj, stats=stats
        )

    def _solve_simplex(self, var_lb, var_ub, basis) -> LPResult:
        from repro.minlp.simplex import solve_lp_simplex

        A, row_lb, row_ub = self._matrix()
        lp = LinearProgram(
            c=self._c,
            A=A,
            row_lb=row_lb,
            row_ub=row_ub,
            var_lb=var_lb,
            var_ub=var_ub,
            c0=self._c0,
            names=self._names,
        )
        res = solve_lp_simplex(lp, basis=basis)
        if res.status in (Status.ITERATION_LIMIT, Status.ERROR):
            # Numerical trouble in the dense tableau: HiGHS is the safety net.
            self.last_basis = None
            return _run_highs(self._c, self._c0, self._split(), var_lb, var_ub)
        self.last_basis = res.basis
        return res


def solve_problem_lp(problem: Problem) -> Solution:
    """Solve a linear :class:`Problem` (continuous relaxation) as an LP."""
    lp = LinearProgram.from_problem(problem)
    res = solve_lp(lp)
    stats = SolveStats(lp_solves=1)
    if res.status is not Status.OPTIMAL:
        return Solution(res.status, stats=stats, message=res.message)
    sign = -1.0 if problem.sense.value == "maximize" else 1.0
    obj = sign * res.objective
    return Solution(
        Status.OPTIMAL,
        values=res.values(lp),
        objective=obj,
        bound=obj,
        stats=stats,
    )
