"""Linear-programming layer.

Canonical LP container plus two interchangeable backends:

* :func:`solve_lp` — scipy's HiGHS (the production path, standing in for the
  CLP solver MINOTAUR uses for its LP relaxations);
* :func:`repro.minlp.simplex.solve_lp_simplex` — a pure-Python two-phase
  simplex used as a validation oracle and as a dependency-free fallback.

LPs here are stated over **row ranges**: minimize ``c·x + c0`` subject to
``row_lb <= A x <= row_ub`` and ``var_lb <= x <= var_ub``.  That matches how
:meth:`Problem.linear_matrix_form` extracts models and avoids duplicating
rows for two-sided constraints.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog as _scipy_linprog

from repro.minlp.problem import Problem
from repro.minlp.solution import Solution, SolveStats, Status


@dataclass
class LinearProgram:
    """Dense LP in range form: min ``c·x + c0`` s.t. ``row_lb<=Ax<=row_ub``."""

    c: np.ndarray
    A: np.ndarray
    row_lb: np.ndarray
    row_ub: np.ndarray
    var_lb: np.ndarray
    var_ub: np.ndarray
    c0: float = 0.0
    names: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float)
        self.A = np.atleast_2d(np.asarray(self.A, dtype=float))
        self.row_lb = np.asarray(self.row_lb, dtype=float)
        self.row_ub = np.asarray(self.row_ub, dtype=float)
        self.var_lb = np.asarray(self.var_lb, dtype=float)
        self.var_ub = np.asarray(self.var_ub, dtype=float)
        n = self.c.size
        if self.A.size == 0:
            self.A = self.A.reshape(0, n)
        m = self.A.shape[0]
        if self.A.shape[1] != n:
            raise ValueError(f"A has {self.A.shape[1]} columns, expected {n}")
        for arr, size, what in (
            (self.row_lb, m, "row_lb"),
            (self.row_ub, m, "row_ub"),
            (self.var_lb, n, "var_lb"),
            (self.var_ub, n, "var_ub"),
        ):
            if arr.size != size:
                raise ValueError(f"{what} has size {arr.size}, expected {size}")
        if not self.names:
            self.names = tuple(f"x{j}" for j in range(n))
        if np.any(self.row_lb > self.row_ub) or np.any(self.var_lb > self.var_ub):
            raise ValueError("crossed bounds in LP")

    @property
    def num_vars(self) -> int:
        return int(self.c.size)

    @property
    def num_rows(self) -> int:
        return int(self.A.shape[0])

    @classmethod
    def from_problem(cls, problem: Problem) -> "LinearProgram":
        """Build from a fully-linear :class:`Problem` (ignoring integrality)."""
        c, c0, A, row_lb, row_ub, var_lb, var_ub = problem.linear_matrix_form()
        sign = 1.0
        if problem.sense.value == "maximize":
            sign = -1.0
        return cls(
            c=sign * c,
            A=A,
            row_lb=row_lb,
            row_ub=row_ub,
            var_lb=var_lb,
            var_ub=var_ub,
            c0=sign * c0,
            names=problem.variable_names,
        )


@dataclass
class LPResult:
    """Outcome of one LP solve."""

    status: Status
    x: np.ndarray | None
    objective: float
    message: str = ""

    def values(self, lp: LinearProgram) -> dict[str, float]:
        if self.x is None:
            raise RuntimeError("LP has no solution point")
        return {n: float(v) for n, v in zip(lp.names, self.x)}


_SCIPY_STATUS = {
    0: Status.OPTIMAL,
    1: Status.ITERATION_LIMIT,
    2: Status.INFEASIBLE,
    3: Status.UNBOUNDED,
    4: Status.ERROR,
}


def solve_lp(lp: LinearProgram) -> LPResult:
    """Solve ``lp`` with scipy's HiGHS backend.

    Two-sided rows are split into <=/>= pairs only where needed; equality
    rows go through ``A_eq`` directly.
    """
    A_ub_rows: list[np.ndarray] = []
    b_ub: list[float] = []
    A_eq_rows: list[np.ndarray] = []
    b_eq: list[float] = []
    for i in range(lp.num_rows):
        lo, hi, row = lp.row_lb[i], lp.row_ub[i], lp.A[i]
        if lo == hi:
            A_eq_rows.append(row)
            b_eq.append(lo)
            continue
        if math.isfinite(hi):
            A_ub_rows.append(row)
            b_ub.append(hi)
        if math.isfinite(lo):
            A_ub_rows.append(-row)
            b_ub.append(-lo)

    res = _scipy_linprog(
        c=lp.c,
        A_ub=np.array(A_ub_rows) if A_ub_rows else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(A_eq_rows) if A_eq_rows else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=list(zip(lp.var_lb, lp.var_ub)),
        method="highs",
    )
    status = _SCIPY_STATUS.get(res.status, Status.ERROR)
    if status is Status.OPTIMAL:
        return LPResult(status, np.asarray(res.x), float(res.fun) + lp.c0, res.message)
    return LPResult(status, None, math.inf, res.message)


class IncrementalLPSolver:
    """LP relaxation engine with a cached matrix form.

    Branch-and-bound solves thousands of LPs that differ from the root only
    in variable bounds and appended cut rows.  Rebuilding the symbolic
    problem and re-extracting coefficients per node dominates runtime on
    models like the paper's 1-degree ocean set (241 selection binaries); this
    class extracts the matrix once and then mutates numpy arrays.
    """

    def __init__(self, problem: Problem) -> None:
        if not problem.is_linear():
            raise ValueError(f"{problem.name!r} has nonlinear pieces")
        self._problem = problem
        self._sign = -1.0 if problem.sense.value == "maximize" else 1.0
        c, c0, A, row_lb, row_ub, var_lb, var_ub = problem.linear_matrix_form()
        self._c = self._sign * c
        self._c0 = self._sign * c0
        self._rows = [A[i] for i in range(A.shape[0])]
        self._row_lb = list(row_lb)
        self._row_ub = list(row_ub)
        self._base_lb = var_lb
        self._base_ub = var_ub
        self._names = problem.variable_names
        self._col = {n: j for j, n in enumerate(self._names)}

    def add_row(self, body, lb: float, ub: float) -> None:
        """Append a (linear) cut row, e.g. an outer-approximation cut."""
        coeffs, k = body.linear_coefficients()
        row = np.zeros(len(self._names))
        for name, v in coeffs.items():
            row[self._col[name]] = v
        self._rows.append(row)
        self._row_lb.append(lb - k)
        self._row_ub.append(ub - k)

    def solve(self, bounds: Mapping[str, tuple[float, float]]) -> Solution:
        """Solve with per-variable bound overrides (intersected with base)."""
        var_lb = self._base_lb.copy()
        var_ub = self._base_ub.copy()
        for name, (lo, hi) in bounds.items():
            j = self._col[name]
            var_lb[j] = max(var_lb[j], lo)
            var_ub[j] = min(var_ub[j], hi)
            if var_lb[j] > var_ub[j]:
                return Solution(
                    Status.INFEASIBLE,
                    stats=SolveStats(),
                    message=f"crossed bounds on {name}",
                )
        lp = LinearProgram(
            c=self._c,
            A=np.array(self._rows) if self._rows else np.zeros((0, self._c.size)),
            row_lb=np.array(self._row_lb),
            row_ub=np.array(self._row_ub),
            var_lb=var_lb,
            var_ub=var_ub,
            c0=self._c0,
            names=self._names,
        )
        res = solve_lp(lp)
        stats = SolveStats(lp_solves=1)
        if res.status is not Status.OPTIMAL:
            return Solution(res.status, stats=stats, message=res.message)
        obj = self._sign * res.objective
        return Solution(
            Status.OPTIMAL, values=res.values(lp), objective=obj, bound=obj, stats=stats
        )


def solve_problem_lp(problem: Problem) -> Solution:
    """Solve a linear :class:`Problem` (continuous relaxation) as an LP."""
    lp = LinearProgram.from_problem(problem)
    res = solve_lp(lp)
    stats = SolveStats(lp_solves=1)
    if res.status is not Status.OPTIMAL:
        return Solution(res.status, stats=stats, message=res.message)
    sign = -1.0 if problem.sense.value == "maximize" else 1.0
    obj = sign * res.objective
    return Solution(
        Status.OPTIMAL,
        values=res.values(lp),
        objective=obj,
        bound=obj,
        stats=stats,
    )
