"""Per-component drift models: how the "machine" decays a static plan.

The related DLB literature (AMReX mesh-and-particle study, Mohammed et
al.'s two-level DLB) motivates exactly four shapes of decay:

* ``linear``      — gradual monotone drift (particles accreting onto one
  level, a component's grid refining), the canonical killer of a frozen
  static plan;
* ``step``        — a regime change partway through the run (restart from
  a checkpoint onto different hardware, a physics package switching on);
* ``walk``        — a seeded geometric random walk (OS jitter with memory,
  slowly wandering contention);
* ``sine``        — periodic load (day/night cycle in a climate component).

Every multiplier is a pure function of ``(component, step)`` through
:func:`repro.util.rng.keyed_rng`, so two strategies replaying the same
workload see *bit-identical* drift regardless of how they interleave
queries — the property that makes static-vs-dynamic comparisons fair.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.util.rng import keyed_rng

_KINDS = ("none", "linear", "step", "walk", "sine")

#: Multipliers are clamped here so no drift model can make work vanish
#: (or explode past what a refitter could plausibly track).
_FLOOR, _CEIL = 0.05, 20.0


@dataclass(frozen=True)
class DriftSpec:
    """Shape of one component's drift over a run of ``steps`` steps.

    ``rate`` is the total fractional change across the whole run for
    ``linear`` (+0.6 means 60% slower by the last step), the jump height
    for ``step``, the amplitude for ``sine``, and the per-step geometric
    standard deviation for ``walk``.  ``at`` places the ``step`` jump as a
    fraction of the run; ``period`` counts ``sine`` cycles over the run.
    """

    kind: str = "none"
    rate: float = 0.0
    at: float = 0.5
    period: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown drift kind {self.kind!r}; expected {_KINDS}")
        if not (0.0 <= self.at <= 1.0):
            raise ValueError(f"step position `at` must be in [0, 1], got {self.at}")
        if self.kind == "walk" and self.rate < 0:
            raise ValueError("walk rate is a standard deviation; must be >= 0")


class DriftProfile:
    """Deterministic drift multipliers for every (component, step) pair.

    ``walk`` increments are keyed per ``(component, k)`` and prefix-summed
    lazily, so ``multiplier`` stays order-independent while a full-run
    query costs O(steps) once per component (then O(1) from cache).
    """

    def __init__(
        self,
        specs: Mapping[str, DriftSpec],
        steps: int,
        *,
        seed: int = 0,
    ) -> None:
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        self.specs = dict(specs)
        self.steps = int(steps)
        self.seed = int(seed)
        self._walks: dict[str, np.ndarray] = {}

    def spec(self, component: str) -> DriftSpec:
        return self.specs.get(component, DriftSpec())

    def _walk_curve(self, component: str, sigma: float) -> np.ndarray:
        curve = self._walks.get(component)
        if curve is None:
            increments = np.array(
                [
                    keyed_rng(self.seed, "drift-walk", component, k).normal(0.0, sigma)
                    for k in range(self.steps)
                ]
            )
            curve = np.exp(np.cumsum(increments))
            self._walks[component] = curve
        return curve

    def multiplier(self, component: str, step: int) -> float:
        """Slowdown (>1) or speedup (<1) factor for one component-step."""
        if not (0 <= step < self.steps):
            raise ValueError(f"step {step} outside run of {self.steps}")
        spec = self.spec(component)
        progress = step / max(self.steps - 1, 1)
        if spec.kind == "none" or spec.rate == 0.0:
            m = 1.0
        elif spec.kind == "linear":
            m = 1.0 + spec.rate * progress
        elif spec.kind == "step":
            m = 1.0 + (spec.rate if progress >= spec.at else 0.0)
        elif spec.kind == "sine":
            m = 1.0 + spec.rate * np.sin(2.0 * np.pi * spec.period * progress)
        else:  # walk
            m = float(self._walk_curve(component, spec.rate)[step])
        return float(min(max(m, _FLOOR), _CEIL))

    def describe(self) -> str:
        parts = []
        for name in sorted(self.specs):
            s = self.specs[name]
            if s.kind == "none" or s.rate == 0.0:
                continue
            parts.append(f"{name}:{s.kind}{s.rate:+g}")
        return f"Drift({', '.join(parts) or 'none'}, seed={self.seed})"


def drift_preset(
    name: str,
    components: tuple[str, ...],
    steps: int,
    *,
    rate: float = 0.6,
    seed: int = 0,
) -> DriftProfile:
    """Named drift scenarios shared by the CLI, benchmarks, and experiments.

    ``linear`` drifts the *first* component up by ``rate`` while easing the
    others down by a third of it — total work roughly conserved, balance
    destroyed, which is the regime where rebalancing pays.  ``step`` jumps
    the first component mid-run; ``walk`` wanders every component
    independently; ``none`` keeps the machine honest.
    """
    if not components:
        raise ValueError("drift preset needs at least one component")
    first, rest = components[0], components[1:]
    if name == "none":
        specs: dict[str, DriftSpec] = {}
    elif name == "linear":
        specs = {first: DriftSpec("linear", rate=rate)}
        specs.update({c: DriftSpec("linear", rate=-rate / 3.0) for c in rest})
    elif name == "step":
        specs = {first: DriftSpec("step", rate=rate, at=0.4)}
    elif name == "walk":
        sigma = rate / max(np.sqrt(steps), 1.0)
        specs = {c: DriftSpec("walk", rate=float(sigma)) for c in components}
    else:
        raise ValueError(
            f"unknown drift preset {name!r}; expected none/linear/step/walk"
        )
    return DriftProfile(specs, steps, seed=seed)
