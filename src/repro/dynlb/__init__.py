"""Online rebalancing: dynamic + two-level DLB on top of the HSLB pipeline.

The static pipeline answers "how should nodes be split given the fitted
curves?" once.  This package keeps answering it *while the run drifts*:

* :mod:`repro.dynlb.drift`      — per-component drift models (linear,
  step, random walk, periodic) with keyed deterministic draws;
* :mod:`repro.dynlb.workload`   — the streaming timing feed over the
  CESM/FMO ground-truth curves, with noise, intra-component imbalance,
  and fault-plan crash hooks;
* :mod:`repro.dynlb.refit`      — exponentially-weighted incremental
  refitting with staleness detection and windowed full refits;
* :mod:`repro.dynlb.migration`  — the calibrated migration-cost model
  and the audit-trail event record;
* :mod:`repro.dynlb.rebalancer` — the strategy zoo (frozen static, full
  HSLB re-solve, diffusion, proportional sweep, two-level hybrid) behind
  one ``Rebalancer`` interface;
* :mod:`repro.dynlb.controller` — the feed -> refit -> decide -> migrate
  loop with migration-cost gating and crash interplay.
"""

from repro.dynlb.controller import (
    CrashRecord,
    DynlbConfig,
    DynlbRunResult,
    RebalanceController,
    compare_strategies,
)
from repro.dynlb.drift import DriftProfile, DriftSpec, drift_preset
from repro.dynlb.migration import MigrationCostModel, MigrationEvent
from repro.dynlb.rebalancer import (
    STRATEGIES,
    DiffusionRebalancer,
    HSLBRebalancer,
    RebalanceContext,
    Rebalancer,
    StaticRebalancer,
    SweepRebalancer,
    TwoLevelRebalancer,
    make_rebalancer,
)
from repro.dynlb.refit import DriftAwareRefitter, RefitConfig
from repro.dynlb.workload import (
    INTRA_POLICIES,
    DynamicWorkload,
    cesm_workload,
    fmo_workload,
)

__all__ = [
    "CrashRecord",
    "DiffusionRebalancer",
    "DriftAwareRefitter",
    "DriftProfile",
    "DriftSpec",
    "DynamicWorkload",
    "DynlbConfig",
    "DynlbRunResult",
    "HSLBRebalancer",
    "INTRA_POLICIES",
    "MigrationCostModel",
    "MigrationEvent",
    "RebalanceContext",
    "RebalanceController",
    "Rebalancer",
    "RefitConfig",
    "STRATEGIES",
    "StaticRebalancer",
    "SweepRebalancer",
    "TwoLevelRebalancer",
    "cesm_workload",
    "compare_strategies",
    "drift_preset",
    "fmo_workload",
    "make_rebalancer",
]
