"""Rebalancing strategies behind one interface.

Four real strategies plus the frozen-plan control:

* :class:`StaticRebalancer`    — never moves; the paper's HSLB plan frozen
  at step 0 (the control arm every comparison is measured against);
* :class:`HSLBRebalancer`      — full MINLP re-solve of the min-max
  allocation over the *refitted* curves, warm-started from the current
  allocation (the PR 2 donor machinery via ``x0``) with OA cuts pooled
  across consecutive re-solves when the curves are unchanged (PR 7);
* :class:`DiffusionRebalancer` — iterative nearest-neighbor load
  diffusion (SNIPPETS.md snippet 2): neighbors on a ring exchange nodes
  proportionally to their time gap until no exchange helps;
* :class:`SweepRebalancer`     — tristan-v2's ``m_staticlb`` style
  per-axis sweep: a few passes of whole-budget proportional
  redistribution by measured work ``t_j * n_j``;
* :class:`TwoLevelRebalancer`  — Mohammed et al.'s two-level hybrid:
  HSLB re-solve across components while the *intra-component* level runs
  dynamic self-scheduling (``intra_policy = "self"``), which the workload
  rewards by smoothing intra-component stragglers.

Every strategy consumes a :class:`RebalanceContext` and returns a full
:class:`~repro.core.spec.Allocation`; the controller owns gating,
application, and fault interplay.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.builder import AllocationModelBuilder
from repro.core.greedy import greedy_minmax_allocation
from repro.core.objectives import Objective
from repro.core.spec import Allocation
from repro.minlp import BnBOptions, OACutPool, solve
from repro.obs.trace import span
from repro.perf.model import PerformanceModel

#: Strategy names accepted by :func:`make_rebalancer` (and the CLI).
STRATEGIES = ("static", "hslb", "diffusion", "sweep", "two-level")


@dataclass
class RebalanceContext:
    """Everything a strategy may look at when proposing an allocation."""

    step: int
    models: dict[str, PerformanceModel]  # refitted curves
    allocation: Allocation
    total_nodes: int
    min_nodes: dict[str, int] = field(default_factory=dict)
    steps_remaining: int = 0
    rng: np.random.Generator | None = None

    def floor(self, component: str) -> int:
        return self.min_nodes.get(component, 1)


class Rebalancer(abc.ABC):
    """One rebalancing strategy: refitted curves in, allocation out."""

    #: Registry/CLI name of the strategy.
    name: str = "abstract"
    #: Intra-component scheduling level ("static" or "self") — the
    #: workload's second DLB level per Mohammed et al.
    intra_policy: str = "static"

    @abc.abstractmethod
    def propose(self, ctx: RebalanceContext) -> Allocation:
        """Propose a full allocation for the remaining steps."""

    def describe(self) -> str:
        return f"{self.name} (intra={self.intra_policy})"


class StaticRebalancer(Rebalancer):
    """The control arm: the frozen step-0 plan, never revisited."""

    name = "static"

    def propose(self, ctx: RebalanceContext) -> Allocation:
        return ctx.allocation


class HSLBRebalancer(Rebalancer):
    """Full min-max MINLP re-solve over the refitted curves.

    Warm starts: the incumbent allocation seeds ``x0`` (the donor-pool
    trick the allocation service uses for neighbor requests), and the OA
    cut pool persists across calls.  Pooled cuts are linearizations of
    the component curves, so they are only *valid* while the curves are
    unchanged — the pool is fingerprinted on the model coefficients and
    reset whenever the refitter has moved them.  In practice that makes
    the pool pay off exactly where re-solves cluster: crash recovery
    (same curves, smaller budget) and repeated gated decisions between
    refits.
    """

    name = "hslb"

    def __init__(self, options: BnBOptions | None = None) -> None:
        self.options = options or BnBOptions(time_limit=10.0, node_limit=20_000)
        self._pool = OACutPool()
        self._pool_key: tuple | None = None
        self.solves = 0
        self.pool_reuses = 0

    def _pooled(self, models: dict[str, PerformanceModel]) -> OACutPool:
        key = tuple(
            (name, m.a, m.b, m.c, m.d) for name, m in sorted(models.items())
        )
        if key != self._pool_key:
            self._pool = OACutPool()
            self._pool_key = key
        else:
            self.pool_reuses += 1
        return self._pool

    def propose(self, ctx: RebalanceContext) -> Allocation:
        builder = AllocationModelBuilder(f"dynlb-{self.name}-{ctx.step}", ctx.total_nodes)
        for name in sorted(ctx.models):
            builder.add_component(name, ctx.models[name], min_nodes=ctx.floor(name))
        builder.limit_total_nodes()
        builder.set_objective(Objective.MIN_MAX)
        problem = builder.build()
        x0 = {
            f"n_{name}": float(count)
            for name, count in ctx.allocation.items()
            if name in ctx.models and count <= ctx.total_nodes
        }
        self.solves += 1
        with span("dynlb.resolve", strategy=self.name, step=int(ctx.step)):
            solution = solve(
                problem,
                self.options,
                algorithm="oa",
                rng=ctx.rng,
                x0=x0,
                cut_pool=self._pooled(ctx.models),
            )
        if not solution.status.is_ok:
            counts, _ = greedy_minmax_allocation(ctx.models, ctx.total_nodes)
            return _respect_floors(counts, ctx)
        counts = {
            name: max(int(round(solution.values[f"n_{name}"])), ctx.floor(name))
            for name in ctx.models
        }
        return _respect_floors(counts, ctx)


class TwoLevelRebalancer(HSLBRebalancer):
    """Two-level hybrid: HSLB across components, self-scheduling within."""

    name = "two-level"
    intra_policy = "self"


class DiffusionRebalancer(Rebalancer):
    """Nearest-neighbor load diffusion on a ring of components.

    Each round, every adjacent pair compares predicted step times and the
    faster side donates nodes proportional to the relative gap (the
    discrete analogue of ``d += 0.2 * (left - 2*d + right)`` from the
    snippet's smoothing kernel).  Mass-conserving by construction; stops
    when a full round moves nothing.
    """

    name = "diffusion"

    def __init__(self, eta: float = 0.5, rounds: int | None = None) -> None:
        if not (0.0 < eta <= 1.0):
            raise ValueError(f"eta must be in (0, 1], got {eta}")
        self.eta = eta
        self.rounds = rounds

    def propose(self, ctx: RebalanceContext) -> Allocation:
        order = sorted(ctx.models)
        alloc = {name: ctx.allocation[name] for name in order}
        if len(order) < 2:
            return ctx.allocation
        rounds = self.rounds if self.rounds is not None else 10 * len(order)
        pairs = [(order[j], order[(j + 1) % len(order)]) for j in range(len(order))]
        if len(order) == 2:
            pairs = pairs[:1]
        for _ in range(rounds):
            moved = False
            for left, right in pairs:
                t_l = ctx.models[left].time(alloc[left])
                t_r = ctx.models[right].time(alloc[right])
                if t_l == t_r:
                    continue
                donor, receiver = (left, right) if t_l < t_r else (right, left)
                gap = abs(t_l - t_r) / max(t_l, t_r)
                give = int(round(self.eta * gap * alloc[donor] * 0.5))
                give = min(give, alloc[donor] - ctx.floor(donor))
                if give < 1:
                    continue
                alloc[donor] -= give
                alloc[receiver] += give
                moved = True
            if not moved:
                break
        return Allocation(alloc)


class SweepRebalancer(Rebalancer):
    """tristan-v2 ``m_staticlb``-style proportional sweep.

    Each pass recomputes every component's work estimate ``t_j * n_j``
    from the current trial allocation and redistributes the whole budget
    proportionally (largest-remainder integer snap, floors respected) —
    the per-axis loop of ``redistributeMeshblocksSLB`` collapsed onto the
    single component axis this pipeline has.
    """

    name = "sweep"

    def __init__(self, passes: int = 4) -> None:
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        self.passes = passes

    def propose(self, ctx: RebalanceContext) -> Allocation:
        order = sorted(ctx.models)
        alloc = {name: ctx.allocation[name] for name in order}
        for _ in range(self.passes):
            work = {
                name: ctx.models[name].time(alloc[name]) * alloc[name]
                for name in order
            }
            alloc = _proportional_split(work, ctx)
        return Allocation(alloc)


def _proportional_split(
    work: dict[str, float], ctx: RebalanceContext
) -> dict[str, int]:
    """Integer shares of the budget proportional to ``work``, floors kept."""
    order = sorted(work)
    total_work = sum(work.values())
    if total_work <= 0:
        return {name: ctx.allocation[name] for name in order}
    raw = {name: ctx.total_nodes * work[name] / total_work for name in order}
    counts = {name: max(int(raw[name]), ctx.floor(name)) for name in order}
    spare = ctx.total_nodes - sum(counts.values())
    if spare > 0:
        # Largest fractional remainder first; name breaks ties.
        for name in sorted(order, key=lambda n: (counts[n] - raw[n], n)):
            if spare == 0:
                break
            counts[name] += 1
            spare -= 1
    while sum(counts.values()) > ctx.total_nodes:
        donor = max(
            (n for n in order if counts[n] > ctx.floor(n)),
            key=lambda n: (counts[n] - raw[n], n),
        )
        counts[donor] -= 1
    return counts


def _respect_floors(counts: dict[str, int], ctx: RebalanceContext) -> Allocation:
    """Clamp a raw count vector to the floors and the budget."""
    out = {name: max(int(counts.get(name, 1)), ctx.floor(name)) for name in ctx.models}
    while sum(out.values()) > ctx.total_nodes:
        donor = max(
            (n for n in out if out[n] > ctx.floor(n)),
            key=lambda n: (out[n], n),
        )
        out[donor] -= 1
    return Allocation(out)


def make_rebalancer(name: str, **kwargs) -> Rebalancer:
    """Construct a strategy by registry name (see :data:`STRATEGIES`)."""
    registry: dict[str, type[Rebalancer]] = {
        "static": StaticRebalancer,
        "hslb": HSLBRebalancer,
        "diffusion": DiffusionRebalancer,
        "sweep": SweepRebalancer,
        "two-level": TwoLevelRebalancer,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown rebalancer {name!r}; expected one of {', '.join(STRATEGIES)}"
        ) from None
    return cls(**kwargs)
