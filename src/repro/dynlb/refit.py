"""Drift-aware incremental refitting of the fitted performance curves.

The static pipeline fits ``T_j(n) = a/n + b n^c + d`` once, from a
dedicated gather campaign.  Online, the only data is the stream of
per-step wall times at whatever node count each component currently
holds, so the refitter splits the problem:

* **Scale tracking** (every step, O(1)): an exponentially-weighted mean
  of the ratio observed/base keeps a multiplicative correction per
  component.  Uniformly scaling ``(a, b, d)`` preserves convexity and —
  crucially — preserves each curve's *shape*, so the rebalancer's n-
  sensitivity information survives even though the stream only probes
  one node count at a time.
* **Staleness detection**: an EWMA of the relative prediction error.
  When it exceeds the threshold for ``patience`` consecutive steps, the
  component is flagged stale — the controller treats that as an
  out-of-band rebalance trigger rather than waiting for the next
  scheduled decision.
* **Windowed full refit** (after migrations): once the window of recent
  observations spans >= 2 distinct node counts (which only happens after
  a migration changed the component's allocation), the whole curve is
  refit via :func:`repro.perf.fitting.fit_performance_model` with
  exponential age-decay weights, recovering shape changes a pure scale
  cannot express.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.obs import telemetry
from repro.perf.model import PerformanceModel


@dataclass(frozen=True)
class RefitConfig:
    """Knobs for the incremental refitter."""

    alpha: float = 0.25  # EWMA weight of the newest scale sample
    stale_error: float = 0.15  # EWMA relative error that flags staleness
    stale_patience: int = 3  # consecutive bad steps before the flag trips
    window: int = 64  # observations retained per component
    decay: float = 0.92  # per-step age decay of full-refit weights
    min_refit_points: int = 6  # window size required before a full refit
    min_refit_span: float = 1.5  # required max/min ratio of observed node counts

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.stale_error <= 0:
            raise ValueError("stale_error must be > 0")
        if self.stale_patience < 1:
            raise ValueError("stale_patience must be >= 1")
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if not (0.0 < self.decay <= 1.0):
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")


class _ComponentState:
    __slots__ = ("base", "scale", "err", "bad_steps", "stale", "obs")

    def __init__(self, base: PerformanceModel, window: int) -> None:
        self.base = base
        self.scale = 1.0
        self.err = 0.0
        self.bad_steps = 0
        self.stale = False
        self.obs: deque[tuple[int, int, float]] = deque(maxlen=window)


class DriftAwareRefitter:
    """EW scale updates + staleness flags + windowed full refits."""

    def __init__(
        self,
        base_models: Mapping[str, PerformanceModel],
        config: RefitConfig | None = None,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not base_models:
            raise ValueError("refitter needs at least one base model")
        self.config = config or RefitConfig()
        self._rng = rng
        self._state = {
            name: _ComponentState(model, self.config.window)
            for name, model in base_models.items()
        }
        self.scale_updates = 0
        self.full_refits = 0

    # -- observation stream ------------------------------------------------

    def observe(self, step: int, component: str, nodes: int, seconds: float) -> None:
        """Fold one (component, step) wall time into the running estimates."""
        st = self._state[component]
        cfg = self.config
        predicted_base = st.base.time(nodes)
        if predicted_base <= 0 or seconds <= 0:
            return
        ratio = seconds / predicted_base
        st.scale = (1.0 - cfg.alpha) * st.scale + cfg.alpha * ratio
        self.scale_updates += 1
        telemetry.record_dynlb_refit("scale")
        rel_err = abs(seconds - st.scale * predicted_base) / seconds
        st.err = (1.0 - cfg.alpha) * st.err + cfg.alpha * rel_err
        if st.err > cfg.stale_error:
            st.bad_steps += 1
            if st.bad_steps >= cfg.stale_patience and not st.stale:
                st.stale = True
                telemetry.record_dynlb_stale(component)
        else:
            st.bad_steps = 0
        st.obs.append((int(step), int(nodes), float(seconds)))

    # -- model views -------------------------------------------------------

    def model(self, component: str) -> PerformanceModel:
        """The current best curve: base uniformly scaled by the EWMA ratio."""
        st = self._state[component]
        s = st.scale
        return PerformanceModel(
            a=st.base.a * s, b=st.base.b * s, c=st.base.c, d=st.base.d * s
        )

    def models(self) -> dict[str, PerformanceModel]:
        return {name: self.model(name) for name in self._state}

    def scale(self, component: str) -> float:
        return self._state[component].scale

    def error(self, component: str) -> float:
        return self._state[component].err

    # -- staleness ---------------------------------------------------------

    def is_stale(self, component: str) -> bool:
        return self._state[component].stale

    def any_stale(self) -> bool:
        return any(st.stale for st in self._state.values())

    def clear_stale(self) -> None:
        """Acknowledge staleness after the controller acted on it."""
        for st in self._state.values():
            st.stale = False
            st.bad_steps = 0

    # -- full refits ---------------------------------------------------------

    def maybe_full_refit(self, component: str) -> bool:
        """Refit the whole curve from the window when it has n-diversity.

        Called by the controller after a migration lands: the window now
        mixes node counts, which is the only online situation where the
        curve's shape (not just its scale) is identifiable.  Two guards
        keep this from doing harm — the shape is only trusted when the
        observed counts span a real ratio (``min_refit_span``; clustered
        counts extrapolate wildly), and the refit replaces the scaled
        model only when it actually predicts the window better.  Returns
        True when the base model was replaced.
        """
        from repro.perf.fitting import fit_performance_model

        st = self._state[component]
        cfg = self.config
        obs = list(st.obs)
        if len(obs) < cfg.min_refit_points:
            return False
        counts = {n for _, n, _ in obs}
        if len(counts) < 2 or max(counts) < cfg.min_refit_span * min(counts):
            return False
        latest = max(s for s, _, _ in obs)
        nodes = np.array([n for _, n, _ in obs], dtype=float)
        secs = np.array([t for _, _, t in obs], dtype=float)
        weights = np.array([cfg.decay ** (latest - s) for s, _, _ in obs])
        try:
            fit = fit_performance_model(nodes, secs, rng=self._rng, weights=weights)
        except (ValueError, RuntimeError):
            return False
        scaled = self.model(component)
        fit_err = float(np.sum(weights * (fit.model.time(nodes) - secs) ** 2))
        cur_err = float(np.sum(weights * (scaled.time(nodes) - secs) ** 2))
        if fit_err >= cur_err:
            return False
        st.base = fit.model
        st.scale = 1.0
        st.err = 0.0
        st.bad_steps = 0
        st.stale = False
        self.full_refits += 1
        telemetry.record_dynlb_refit("full")
        return True
