"""Migration cost: what a rebalance actually charges the run.

Moving nodes between components is not free — ranks checkpoint, the
incoming group restarts from the checkpoint, domain decompositions are
rebuilt.  The model is deliberately simple and calibratable:

    cost = fixed_seconds + per_node_seconds * nodes_moved

where ``nodes_moved`` counts only the growth side (a node leaving one
component and joining another is one move, not two).  The controller
gates every proposed migration on this cost: a rebalance is applied only
when the refitted curves predict the makespan saved over the *remaining*
steps exceeds ``gain_factor`` times the cost.

``calibrate`` ties the two coefficients to an observed step time, the
natural unit: a full restart costs about half a step, and each moved
node adds a small slice of one.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass


def _counts(allocation: Mapping[str, int] | object) -> dict[str, int]:
    items = allocation.items() if hasattr(allocation, "items") else dict(allocation).items()
    return {str(k): int(v) for k, v in items}


@dataclass(frozen=True)
class MigrationCostModel:
    """Affine cost of applying one rebalance."""

    fixed_seconds: float = 5.0
    per_node_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.fixed_seconds < 0 or self.per_node_seconds < 0:
            raise ValueError("migration cost coefficients must be >= 0")

    @classmethod
    def calibrate(
        cls,
        step_seconds: float,
        *,
        restart_fraction: float = 0.5,
        per_node_fraction: float = 0.02,
    ) -> "MigrationCostModel":
        """Tie the cost to the observed step time (the natural time unit)."""
        if step_seconds <= 0:
            raise ValueError("step_seconds must be > 0")
        return cls(
            fixed_seconds=restart_fraction * step_seconds,
            per_node_seconds=per_node_fraction * step_seconds,
        )

    def nodes_moved(
        self, old: Mapping[str, int] | object, new: Mapping[str, int] | object
    ) -> int:
        """Nodes changing owner: the sum of positive per-component growth."""
        a, b = _counts(old), _counts(new)
        return sum(
            max(b.get(name, 0) - a.get(name, 0), 0) for name in set(a) | set(b)
        )

    def cost(
        self, old: Mapping[str, int] | object, new: Mapping[str, int] | object
    ) -> float:
        moved = self.nodes_moved(old, new)
        if moved == 0:
            return 0.0
        return self.fixed_seconds + self.per_node_seconds * moved


@dataclass(frozen=True)
class MigrationEvent:
    """One rebalance decision, applied or not — the audit record."""

    step: int
    old: dict[str, int]
    new: dict[str, int]
    predicted_gain: float  # makespan saved over remaining steps, per the models
    cost: float
    reason: str  # "interval" | "stale" | "crash"
    outcome: str  # "applied" | "gated" | "aborted"

    def __post_init__(self) -> None:
        if self.reason not in ("interval", "stale", "crash"):
            raise ValueError(f"unknown migration reason {self.reason!r}")
        if self.outcome not in ("applied", "gated", "aborted"):
            raise ValueError(f"unknown migration outcome {self.outcome!r}")

    @property
    def nodes_moved(self) -> int:
        return MigrationCostModel(0.0, 0.0).nodes_moved(self.old, self.new)

    def describe(self) -> str:
        return (
            f"step {self.step}: {self.outcome} ({self.reason}) "
            f"{self.nodes_moved} node(s), gain {self.predicted_gain:.2f}s "
            f"vs cost {self.cost:.2f}s"
        )
