"""The rebalance controller: feed -> refit -> decide -> migrate.

One :class:`RebalanceController` drives one strategy through one
:class:`~repro.dynlb.workload.DynamicWorkload`:

1. **Feed** — run the next synchronous step at the current allocation and
   observe every component's wall time (the step's makespan is the max).
2. **Refit** — fold the observations into the
   :class:`~repro.dynlb.refit.DriftAwareRefitter`.
3. **Decide** — on the decision cadence (every ``interval`` steps) or
   out-of-band when the refitter flags a model stale, ask the strategy
   for a proposal over the refitted curves.
4. **Migrate** — apply the proposal only when the predicted makespan gain
   over the remaining steps clears ``gain_factor`` times the calibrated
   migration cost.  An accepted migration opens a *window*: the old
   allocation keeps running while the move is in flight, the stall is
   charged when it lands — and a node crash inside the window aborts the
   move (the PR 1 interplay the fault tests pin).

Crash recovery reuses the static re-plan path: the surviving budget is
re-solved (warm-started for the MINLP strategies, exact-greedy otherwise)
and the recovery migration is applied unconditionally — consistency, not
profit, is the point.  Everything is deterministic under a fixed seed:
the workload draws are keyed, the controller holds no wall-clock state,
and results carry only simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.greedy import greedy_minmax_allocation
from repro.core.spec import Allocation
from repro.dynlb.migration import MigrationCostModel, MigrationEvent
from repro.dynlb.rebalancer import (
    RebalanceContext,
    Rebalancer,
    StaticRebalancer,
    make_rebalancer,
)
from repro.dynlb.refit import DriftAwareRefitter, RefitConfig
from repro.dynlb.workload import DynamicWorkload
from repro.faults.plan import NodeCrashError
from repro.obs import telemetry
from repro.obs.trace import span
from repro.util.rng import default_rng


@dataclass(frozen=True)
class DynlbConfig:
    """Controller knobs shared by every strategy in a comparison."""

    interval: int = 10  # decision cadence in steps
    gain_factor: float = 1.2  # required predicted_gain / migration_cost
    migration_steps: int = 1  # steps a migration window spans
    migration: MigrationCostModel | None = None  # None: calibrate from step 0
    refit: RefitConfig = field(default_factory=RefitConfig)
    full_refit: bool = True  # refit curve shapes after migrations land
    max_migrations: int | None = None  # safety valve for thrashing strategies

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"interval must be >= 1, got {self.interval}")
        if self.gain_factor < 0:
            raise ValueError("gain_factor must be >= 0")
        if self.migration_steps < 1:
            raise ValueError("migration_steps must be >= 1")


@dataclass(frozen=True)
class CrashRecord:
    """What the injected mid-run crash did to this strategy's run."""

    step: int
    component: str
    lost_nodes: int
    penalty_seconds: float
    aborted_migration: bool


@dataclass
class DynlbRunResult:
    """One strategy's full run: totals, audit trail, final state."""

    workload: str
    strategy: str
    intra_policy: str
    steps: int
    total_seconds: float
    compute_seconds: float
    migration_seconds: float
    crash_seconds: float
    step_makespans: list[float]
    events: list[MigrationEvent]
    refits_scale: int
    refits_full: int
    stale_events: int
    crash: CrashRecord | None
    initial_allocation: dict[str, int]
    final_allocation: dict[str, int]

    @property
    def migrations(self) -> int:
        return sum(1 for e in self.events if e.outcome == "applied")

    @property
    def gated(self) -> int:
        return sum(1 for e in self.events if e.outcome == "gated")

    @property
    def aborted(self) -> int:
        return sum(1 for e in self.events if e.outcome == "aborted")

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "strategy": self.strategy,
            "intra_policy": self.intra_policy,
            "steps": int(self.steps),
            "total_seconds": float(self.total_seconds),
            "compute_seconds": float(self.compute_seconds),
            "migration_seconds": float(self.migration_seconds),
            "crash_seconds": float(self.crash_seconds),
            "migrations": int(self.migrations),
            "gated": int(self.gated),
            "aborted": int(self.aborted),
            "refits_scale": int(self.refits_scale),
            "refits_full": int(self.refits_full),
            "stale_events": int(self.stale_events),
            "crash": (
                None
                if self.crash is None
                else {
                    "step": int(self.crash.step),
                    "component": self.crash.component,
                    "lost_nodes": int(self.crash.lost_nodes),
                    "penalty_seconds": float(self.crash.penalty_seconds),
                    "aborted_migration": bool(self.crash.aborted_migration),
                }
            ),
            "initial_allocation": {k: int(v) for k, v in self.initial_allocation.items()},
            "final_allocation": {k: int(v) for k, v in self.final_allocation.items()},
        }


@dataclass
class _Pending:
    target: Allocation
    decided_at: int
    apply_at: int
    gain: float
    cost: float
    reason: str


class RebalanceController:
    """Drive one strategy through one workload, deterministically."""

    def __init__(
        self,
        workload: DynamicWorkload,
        rebalancer: Rebalancer | str,
        config: DynlbConfig | None = None,
    ) -> None:
        self.workload = workload
        self.rebalancer = (
            make_rebalancer(rebalancer) if isinstance(rebalancer, str) else rebalancer
        )
        self.config = config or DynlbConfig()

    # -- the loop ----------------------------------------------------------

    def run(
        self, initial: Allocation | None = None, *, seed: int | None = None
    ) -> DynlbRunResult:
        w = self.workload
        cfg = self.config
        strategy = self.rebalancer.name
        policy = self.rebalancer.intra_policy
        rng = default_rng(w.seed if seed is None else seed)
        telemetry.ensure_registered()

        allocation = initial or w.initial_allocation()
        initial_counts = {k: int(v) for k, v in allocation.items()}
        budget = w.total_nodes
        refitter = DriftAwareRefitter(dict(w.models), cfg.refit, rng=rng)
        cost_model = cfg.migration
        pending: _Pending | None = None
        crash: CrashRecord | None = None

        compute = migration = crash_penalty = 0.0
        makespans: list[float] = []
        events: list[MigrationEvent] = []
        stale_events = 0

        with span("dynlb.run", strategy=strategy, workload=w.name, steps=int(w.steps)):
            for step in range(w.steps):
                # 0. Fault interplay: a node-group crash preempts everything.
                if crash is None:
                    err = w.crash_event(step, allocation)
                    if err is not None:
                        allocation, crash, lost_cost = self._recover(
                            step, allocation, refitter, err, pending, events, rng,
                            cost_model, makespans,
                        )
                        budget -= err.lost_nodes
                        crash_penalty += crash.penalty_seconds
                        migration += lost_cost
                        pending = None
                        telemetry.record_dynlb_crash(strategy)
                        refitter.clear_stale()

                # 1. A migration window that survived to its land step applies.
                if pending is not None and step >= pending.apply_at:
                    events.append(
                        MigrationEvent(
                            step=step,
                            old={k: int(v) for k, v in allocation.items()},
                            new={k: int(v) for k, v in pending.target.items()},
                            predicted_gain=pending.gain,
                            cost=pending.cost,
                            reason=pending.reason,
                            outcome="applied",
                        )
                    )
                    allocation = pending.target
                    migration += pending.cost
                    telemetry.record_dynlb_migration(strategy, "applied", pending.cost)
                    if cfg.full_refit:
                        for name in w.components:
                            refitter.maybe_full_refit(name)
                    pending = None

                # 2. Feed: run the step, observe every component.
                times = w.step_times(step, allocation, policy)
                mk = max(times.values())
                compute += mk
                makespans.append(mk)
                telemetry.record_dynlb_step(strategy, mk)
                for name, seconds in times.items():
                    refitter.observe(step, name, allocation[name], seconds)

                # Calibrate the migration cost off the first observed step —
                # the "calibrated migration cost" the gate is defined against.
                if cost_model is None:
                    cost_model = MigrationCostModel.calibrate(mk)

                # 3. Decide: on cadence, or out-of-band when a model went stale.
                stale = refitter.any_stale()
                if stale:
                    stale_events += 1
                due = (step + 1) % cfg.interval == 0
                last_step = step >= w.steps - 1
                migrations_capped = (
                    cfg.max_migrations is not None
                    and sum(1 for e in events if e.outcome == "applied")
                    >= cfg.max_migrations
                )
                if (
                    (due or stale)
                    and pending is None
                    and not last_step
                    and not migrations_capped
                    and not isinstance(self.rebalancer, StaticRebalancer)
                ):
                    # The decision consumes the staleness flag; clearing it
                    # here (not every step) lets the patience counter
                    # accumulate across steps, which is what makes the
                    # out-of-band trigger fire at all.
                    refitter.clear_stale()
                    reason = "stale" if stale else "interval"
                    telemetry.record_dynlb_decision(strategy, reason)
                    models = refitter.models()
                    ctx = RebalanceContext(
                        step=step,
                        models=models,
                        allocation=allocation,
                        total_nodes=budget,
                        min_nodes=dict(w.min_nodes),
                        steps_remaining=w.steps - step - 1,
                        rng=rng,
                    )
                    proposal = self.rebalancer.propose(ctx)
                    if dict(proposal.items()) != dict(allocation.items()):
                        current_pred = max(
                            models[c].time(allocation[c]) for c in w.components
                        )
                        proposed_pred = max(
                            models[c].time(proposal[c]) for c in w.components
                        )
                        # The window still runs the old plan, so the gain only
                        # accrues over the steps after the move lands.
                        effective = max(
                            w.steps - step - 1 - cfg.migration_steps, 0
                        )
                        gain = (current_pred - proposed_pred) * effective
                        cost = cost_model.cost(allocation, proposal)
                        if gain > cfg.gain_factor * cost:
                            pending = _Pending(
                                target=proposal,
                                decided_at=step,
                                apply_at=step + cfg.migration_steps,
                                gain=gain,
                                cost=cost,
                                reason=reason,
                            )
                        else:
                            events.append(
                                MigrationEvent(
                                    step=step,
                                    old={k: int(v) for k, v in allocation.items()},
                                    new={k: int(v) for k, v in proposal.items()},
                                    predicted_gain=gain,
                                    cost=cost,
                                    reason=reason,
                                    outcome="gated",
                                )
                            )
                            telemetry.record_dynlb_migration(strategy, "gated", 0.0)

        return DynlbRunResult(
            workload=w.name,
            strategy=strategy,
            intra_policy=policy,
            steps=w.steps,
            total_seconds=compute + migration + crash_penalty,
            compute_seconds=compute,
            migration_seconds=migration,
            crash_seconds=crash_penalty,
            step_makespans=makespans,
            events=events,
            refits_scale=refitter.scale_updates,
            refits_full=refitter.full_refits,
            stale_events=stale_events,
            crash=crash,
            initial_allocation=initial_counts,
            final_allocation={k: int(v) for k, v in allocation.items()},
        )

    # -- crash recovery ----------------------------------------------------

    def _recover(
        self,
        step: int,
        allocation: Allocation,
        refitter: DriftAwareRefitter,
        err: NodeCrashError,
        pending: _Pending | None,
        events: list[MigrationEvent],
        rng,
        cost_model: MigrationCostModel | None,
        makespans: list[float],
    ) -> tuple[Allocation, CrashRecord, float]:
        """Re-plan on the surviving budget; abort any in-flight migration.

        The crashed component is not dropped — it lost its *nodes*, so it
        is restarted on nodes carved out of the survivors, exactly like
        the PR 1 "replan" recovery.  The recovery allocation must satisfy
        the consistency invariant the fault tests pin: it fits within the
        surviving budget and never references the dead nodes.
        """
        strategy = self.rebalancer.name
        if pending is not None:
            events.append(
                MigrationEvent(
                    step=step,
                    old={k: int(v) for k, v in allocation.items()},
                    new={k: int(v) for k, v in pending.target.items()},
                    predicted_gain=pending.gain,
                    cost=pending.cost,
                    reason=pending.reason,
                    outcome="aborted",
                )
            )
            telemetry.record_dynlb_migration(strategy, "aborted", 0.0)
        survivors = self.workload.total_nodes - err.lost_nodes
        models = refitter.models()
        # Exact greedy re-plan on the survivors seeds (or *is*) the recovery.
        seed_counts, _ = greedy_minmax_allocation(models, survivors)
        for name, floor in self.workload.min_nodes.items():
            seed_counts[name] = max(seed_counts.get(name, 0), floor)
        seed_alloc = Allocation(seed_counts)
        if isinstance(self.rebalancer, StaticRebalancer):
            recovered = seed_alloc
        else:
            ctx = RebalanceContext(
                step=step,
                models=models,
                allocation=seed_alloc,
                total_nodes=survivors,
                min_nodes=dict(self.workload.min_nodes),
                steps_remaining=self.workload.steps - step,
                rng=rng,
            )
            recovered = self.rebalancer.propose(ctx)
            if recovered.total() > survivors:
                recovered = seed_alloc
        # Lost work: the crash burns a fraction of the step it interrupts.
        reference = makespans[-1] if makespans else max(
            models[c].time(allocation[c]) for c in self.workload.components
        )
        penalty = err.fraction * reference
        # The forced move still stalls the run; it is charged, not gated.
        old_counts = {k: int(v) for k, v in allocation.items()}
        old_counts[err.component] = 0  # the dead group's nodes are gone
        cost = (cost_model or MigrationCostModel()).cost(old_counts, recovered)
        events.append(
            MigrationEvent(
                step=step,
                old={k: int(v) for k, v in allocation.items()},
                new={k: int(v) for k, v in recovered.items()},
                predicted_gain=0.0,
                cost=cost,
                reason="crash",
                outcome="applied",
            )
        )
        telemetry.record_dynlb_migration(strategy, "crash", cost)
        record = CrashRecord(
            step=step,
            component=err.component,
            lost_nodes=err.lost_nodes,
            penalty_seconds=penalty,
            aborted_migration=pending is not None,
        )
        return recovered, record, cost


def compare_strategies(
    workload: DynamicWorkload,
    strategies: tuple[str, ...] = ("static", "hslb", "diffusion", "sweep", "two-level"),
    config: DynlbConfig | None = None,
    *,
    seed: int | None = None,
) -> dict[str, DynlbRunResult]:
    """Run every strategy over the *same* workload draws and collect results.

    The workload's keyed randomness makes this a controlled experiment:
    each strategy faces bit-identical drift, noise, and faults, so
    makespan deltas are attributable to decisions alone.
    """
    results: dict[str, DynlbRunResult] = {}
    for name in strategies:
        controller = RebalanceController(workload, make_rebalancer(name), config)
        results[name] = controller.run(seed=seed)
    return results
