"""The streaming timing feed: a drifting, noisy, crashable workload.

A :class:`DynamicWorkload` is the dynamic-rebalancing analogue of the
simulators' one-shot ``execute``: the run is ``steps`` synchronous
iterations, and after each one the controller observes every component's
wall time for that step.  Times follow the simulators' fitted ground
truth ``T_j(n_j)``, decayed by a :class:`~repro.dynlb.drift.DriftProfile`,
blurred by log-normal noise, and inflated by an intra-component imbalance
term that depends on the *intra policy* (Mohammed et al.'s second level):

* ``"static"`` — work inside the component is pinned to ranks, so its
  step time carries the straggler rank's penalty (a keyed uniform draw);
* ``"self"``   — dynamic self-scheduling inside the component smooths the
  stragglers away for a small fixed overhead.

Every draw is keyed on ``(component, step)`` via
:func:`repro.util.rng.keyed_rng` — never on the allocation or on call
order — so replaying the same workload under different strategies is a
controlled experiment: identical machine, different decisions.

Crashes reuse the PR 1 fault machinery: a :class:`FaultPlan` with
``crash_step`` set kills the node group hosting one component at the top
of that step, surfacing as the same :class:`NodeCrashError` the recovery
paths already understand.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.greedy import greedy_minmax_allocation
from repro.core.spec import Allocation
from repro.dynlb.drift import DriftProfile, drift_preset
from repro.faults.plan import FaultPlan, NodeCrashError
from repro.perf.model import PerformanceModel
from repro.util.rng import keyed_rng

INTRA_POLICIES = ("static", "self")


class DynamicWorkload:
    """A ``steps``-iteration run over drifting ground-truth components."""

    def __init__(
        self,
        name: str,
        models: Mapping[str, PerformanceModel],
        *,
        total_nodes: int,
        steps: int,
        drift: DriftProfile | None = None,
        noise: float = 0.02,
        imbalance: float = 0.15,
        self_overhead: float = 0.03,
        seed: int = 0,
        faults: FaultPlan | None = None,
        min_nodes: Mapping[str, int] | None = None,
    ) -> None:
        if not models:
            raise ValueError("workload needs at least one component")
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if total_nodes < len(models):
            raise ValueError(
                f"total_nodes={total_nodes} cannot host {len(models)} components"
            )
        if noise < 0 or imbalance < 0 or self_overhead < 0:
            raise ValueError("noise, imbalance, and self_overhead must be >= 0")
        self.name = name
        self.models = dict(models)
        self.total_nodes = int(total_nodes)
        self.steps = int(steps)
        self.drift = drift or DriftProfile({}, steps, seed=seed)
        self.noise = float(noise)
        self.imbalance = float(imbalance)
        self.self_overhead = float(self_overhead)
        self.seed = int(seed)
        self.faults = faults
        self.min_nodes = {c: 1 for c in self.models}
        if min_nodes:
            self.min_nodes.update({c: int(v) for c, v in min_nodes.items()})

    @property
    def components(self) -> tuple[str, ...]:
        return tuple(sorted(self.models))

    # -- ground truth ------------------------------------------------------

    def true_model(self, component: str, step: int) -> PerformanceModel:
        """The drift-scaled curve actually governing ``component`` at ``step``.

        Test oracle: what a perfect refitter would converge to.
        """
        base = self.models[component]
        m = self.drift.multiplier(component, step)
        return PerformanceModel(a=base.a * m, b=base.b * m, c=base.c, d=base.d * m)

    def _jitter(self, component: str, step: int) -> float:
        if not self.noise:
            return 1.0
        r = keyed_rng(self.seed, "dynlb-jitter", component, step)
        return float(min(max(np.exp(r.normal(0.0, self.noise)), 0.05), 20.0))

    def _intra(self, component: str, step: int, policy: str) -> float:
        if policy == "self":
            return 1.0 + self.self_overhead
        if not self.imbalance:
            return 1.0
        u = keyed_rng(self.seed, "dynlb-imbalance", component, step).random()
        return 1.0 + self.imbalance * float(u)

    def component_time(
        self, component: str, step: int, nodes: int, policy: str = "static"
    ) -> float:
        """Observed wall time of one component for one step."""
        if policy not in INTRA_POLICIES:
            raise ValueError(f"unknown intra policy {policy!r}")
        if nodes < 1:
            raise ValueError(f"{component} needs >= 1 node, got {nodes}")
        base = self.models[component].time(nodes)
        return float(
            base
            * self.drift.multiplier(component, step)
            * self._jitter(component, step)
            * self._intra(component, step, policy)
        )

    def step_times(
        self, step: int, allocation: Allocation, policy: str = "static"
    ) -> dict[str, float]:
        """Every component's wall time for one synchronous step."""
        return {
            c: self.component_time(c, step, allocation[c], policy)
            for c in self.components
        }

    # -- faults ------------------------------------------------------------

    def crash_event(self, step: int, allocation: Allocation) -> NodeCrashError | None:
        """The node-group crash injected at the top of ``step``, if any.

        The victim is ``faults.crash_component`` when named, else the
        component holding the most nodes (ties broken by name, so the
        event is deterministic).  Pure: the controller owns the
        "already crashed" bookkeeping, mirroring the FaultPlan contract.
        """
        plan = self.faults
        if plan is None or plan.crash_step is None or plan.crash_step != step:
            return None
        victim = plan.crash_component
        if victim is None or victim not in self.models:
            victim = max(self.components, key=lambda c: (allocation[c], c))
        return NodeCrashError(
            component=victim,
            lost_nodes=allocation[victim],
            fraction=plan.crash_fraction,
        )

    # -- plans -------------------------------------------------------------

    def initial_allocation(self) -> Allocation:
        """The frozen HSLB plan at step 0 (exact min-max via the greedy oracle).

        This is the static baseline every strategy starts from; the greedy
        marginal allocator is provably exact for the single-budget min-max
        problem, so "static" really is the paper's HSLB answer.
        """
        alloc, _ = greedy_minmax_allocation(self.models, self.total_nodes)
        for c, lo in self.min_nodes.items():
            if alloc.get(c, 0) < lo:
                alloc[c] = lo
        while sum(alloc.values()) > self.total_nodes:
            # Shave the component whose time grows least from losing a node.
            donor = min(
                (c for c in alloc if alloc[c] > self.min_nodes[c]),
                key=lambda c: self.models[c].time(alloc[c] - 1)
                - self.models[c].time(alloc[c]),
            )
            alloc[donor] -= 1
        return Allocation(alloc)

    def describe(self) -> str:
        parts = [
            f"{self.name}: {len(self.models)} components x {self.steps} steps "
            f"on {self.total_nodes} nodes",
            self.drift.describe(),
            f"noise={self.noise:g}",
            f"imbalance={self.imbalance:g}",
        ]
        if self.faults is not None:
            parts.append(self.faults.describe())
        return ", ".join(parts)


# -- simulator-backed builders ---------------------------------------------


def cesm_workload(
    *,
    resolution: str = "1deg",
    total_nodes: int = 128,
    steps: int = 120,
    drift: str = "linear",
    drift_rate: float = 0.6,
    noise: float = 0.02,
    imbalance: float = 0.15,
    seed: int = 0,
    faults: FaultPlan | None = None,
) -> DynamicWorkload:
    """A dynamic run over the CESM simulator's ground-truth curves.

    The drifting component is the atmosphere — the dominant, most
    drift-prone CESM component (the IPDPSW paper's own motivation for
    re-tuning layouts between science campaigns).
    """
    from repro.cesm.grids import eighth_degree, one_degree

    config = one_degree() if resolution == "1deg" else eighth_degree()
    models = {name: truth.model for name, truth in config.ground_truth.items()}
    order = ("atm",) + tuple(c for c in sorted(models) if c != "atm")
    profile = drift_preset(drift, order, steps, rate=drift_rate, seed=seed)
    return DynamicWorkload(
        f"cesm-{config.name}",
        models,
        total_nodes=total_nodes,
        steps=steps,
        drift=profile,
        noise=noise,
        imbalance=imbalance,
        seed=seed,
        faults=faults,
    )


def fmo_workload(
    *,
    fragments: int = 8,
    total_nodes: int = 64,
    steps: int = 120,
    system: str = "protein",
    drift: str = "linear",
    drift_rate: float = 0.6,
    noise: float = 0.02,
    imbalance: float = 0.15,
    seed: int = 0,
    faults: FaultPlan | None = None,
) -> DynamicWorkload:
    """A dynamic run over per-fragment FMO curves (one component per fragment)."""
    from repro.fmo.molecules import protein_like, water_cluster
    from repro.fmo.timing import total_fragment_model
    from repro.util.rng import default_rng

    rng = default_rng(seed)
    mol = (
        protein_like(fragments, rng) if system == "protein" else water_cluster(fragments, rng)
    )
    models = {
        f"frag{f.index}": total_fragment_model(mol, f) for f in mol.fragments
    }
    order = tuple(sorted(models))
    profile = drift_preset(drift, order, steps, rate=drift_rate, seed=seed)
    return DynamicWorkload(
        f"fmo-{mol.name}",
        models,
        total_nodes=total_nodes,
        steps=steps,
        drift=profile,
        noise=noise,
        imbalance=imbalance,
        seed=seed,
        faults=faults,
    )
