"""Deterministic random-number-generator plumbing.

Every stochastic piece of the library (benchmark noise, multistart fitting,
simulator jitter) takes an explicit :class:`numpy.random.Generator` so runs
are reproducible end to end.  These helpers centralize construction so the
seeding convention lives in one place.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Library-wide default seed.  Chosen arbitrarily; fixed so that examples,
#: tests, and benchmark tables are bit-for-bit reproducible.
DEFAULT_SEED = 20120427


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a PCG64 generator seeded with ``seed`` (library default if None)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def stable_key(*parts: object) -> int:
    """Hash arbitrary key parts into a 64-bit int, stable across processes.

    The canonical keyed-draw primitive shared by the fault plan and the
    dynamic-rebalancing workload: draws keyed by the *identity* of an event
    (component, step, attempt) rather than by call order, so two consumers
    interleaving their queries in any order observe identical randomness.
    """
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def keyed_rng(seed: int, *key: object) -> np.random.Generator:
    """A generator deterministically derived from ``seed`` and an event key."""
    return np.random.default_rng((seed & 0xFFFFFFFF, stable_key(*key)))


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators from ``rng``.

    Used when a driver hands independent noise streams to parallel workers
    (e.g. one stream per simulated CESM component) so that changing how many
    samples one component draws never perturbs another component's stream.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
