"""Shared utilities: seeded RNG helpers, ASCII tables, timers, validation."""

from repro.util.rng import default_rng, spawn_rng
from repro.util.tables import format_table
from repro.util.timing import Timer
from repro.util.validation import (
    check_finite,
    check_positive,
    check_in_range,
    check_integerish,
)

__all__ = [
    "default_rng",
    "spawn_rng",
    "format_table",
    "Timer",
    "check_finite",
    "check_positive",
    "check_in_range",
    "check_integerish",
]
