"""ASCII line/scatter plots for figure reproduction in a terminal.

The paper's figures are log-log scaling plots; the benchmark harness
regenerates their *data*, and this module renders it as text so
``benchmarks/out/*.txt`` contains an actual picture of each figure, not
just its numbers.  Multiple series share one canvas, each with its own
marker; axes can be linear or logarithmic.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def ascii_bar(fraction: float, *, width: int = 32, fill: str = "#") -> str:
    """A horizontal bar filling ``fraction`` of ``width`` characters.

    The shared primitive behind the benchmark reports' bar rows and the
    observability layer's flamegraph render (:mod:`repro.obs.export`).
    Fractions are clamped to [0, 1]; any nonzero fraction draws at least
    one fill character so short spans stay visible.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    frac = min(1.0, max(0.0, float(fraction)))
    n = int(round(frac * width))
    if frac > 0.0 and n == 0:
        n = 1
    return fill * n


def _transform(values: Sequence[float], log: bool) -> list[float]:
    if not log:
        return [float(v) for v in values]
    out = []
    for v in values:
        if v <= 0:
            raise ValueError(f"log axis requires positive values, got {v}")
        out.append(math.log10(float(v)))
    return out


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series on one ASCII canvas.

    Returns the chart as a string: title, y-range annotations, the canvas,
    the x-range, and a marker legend.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 16 or height < 6:
        raise ValueError("canvas too small to be legible")
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: x/y length mismatch")
        if not xs:
            raise ValueError(f"series {name!r} is empty")

    tx = {n: _transform(xy[0], log_x) for n, xy in series.items()}
    ty = {n: _transform(xy[1], log_y) for n, xy in series.items()}
    x_min = min(min(v) for v in tx.values())
    x_max = max(max(v) for v in tx.values())
    y_min = min(min(v) for v in ty.values())
    y_max = max(max(v) for v in ty.values())
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, name in enumerate(series):
        marker = _MARKERS[idx % len(_MARKERS)]
        for px, py in zip(tx[name], ty[name]):
            col = int(round((px - x_min) / x_span * (width - 1)))
            row = int(round((py - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    raw_y_max = max(max(xy[1]) for xy in series.values())
    raw_y_min = min(min(xy[1]) for xy in series.values())
    raw_x_max = max(max(xy[0]) for xy in series.values())
    raw_x_min = min(min(xy[0]) for xy in series.values())

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}: {raw_y_min:g} .. {raw_y_max:g}"
                 + (" (log)" if log_y else ""))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"{x_label}: {raw_x_min:g} .. {raw_x_max:g}"
                 + (" (log)" if log_x else ""))
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
