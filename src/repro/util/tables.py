"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module owns the formatting so every experiment renders consistently.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _fmt_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``float_fmt``; all other values via ``str``.
    Returns the table as a single string (no trailing newline).
    """
    str_rows = [[_fmt_cell(c, float_fmt) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(sep)
    parts.extend(line(r) for r in str_rows)
    return "\n".join(parts)
