"""Lightweight wall-clock timing used by solver statistics."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True

    Also usable un-entered via :meth:`start`/:meth:`stop` for solvers that
    accumulate time across phases.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
