"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

import math

import numpy as np


def check_finite(name: str, value: float) -> float:
    """Return ``value`` if finite, else raise ``ValueError``."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return float(value)


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Return ``value`` if positive (``> 0``, or ``>= 0`` when strict=False)."""
    check_finite(name, value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Return ``value`` if ``lo <= value <= hi``, else raise ``ValueError``."""
    check_finite(name, value)
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return float(value)


def check_integerish(name: str, value: float, *, tol: float = 1e-6) -> int:
    """Round ``value`` to int if it is within ``tol`` of an integer."""
    check_finite(name, value)
    rounded = round(value)
    if abs(value - rounded) > tol:
        raise ValueError(f"{name} must be integral (tol={tol}), got {value!r}")
    return int(rounded)


def as_sorted_unique(values) -> np.ndarray:
    """Return ``values`` as a sorted, de-duplicated 1-D float array."""
    arr = np.unique(np.asarray(values, dtype=float))
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("expected a non-empty 1-D collection")
    return arr
