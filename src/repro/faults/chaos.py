"""Chaos plan for the allocation service: seeded worker-level mayhem.

:class:`repro.faults.plan.FaultPlan` breaks the *pipeline* (benchmark
gathers, solver tiers, node groups).  :class:`ChaosPlan` breaks the
*serving tier*: workers that crash mid-solve, hang past their harvest
budget, come back slow, or return corrupted results.  The same design rules
apply:

* **Deterministic.**  Every draw is keyed by the identity of the solve —
  ``(fingerprint, attempt)`` — through a stable hash, never by call order
  or wall clock.  Two runs with the same seed inject identical faults, so
  the chaos suite's invariants (no lost requests, bit-identical responses)
  are checkable.
* **Pure.**  The plan is a frozen description; the service and the
  supervised pool own all bookkeeping.
* **Typed failures.**  Simulated faults surface as the same
  :class:`~repro.service.errors.WorkerCrashError` /
  :class:`~repro.service.errors.WorkerHangError` the real pool raises, so
  the retry/breaker/degradation machinery cannot tell drills from fires.

Two execution modes share one plan:

* **in-process** (``chaotic_solve``): faults are raised/applied directly —
  fast and fully deterministic, what the seeded suite and soak use;
* **in-worker** (``chaos_pool_solve``): faults happen *physically* in a
  pool process — a crash is ``os._exit``, a hang is a real sleep the
  supervisor must kill — the end-to-end recovery test's mode.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.faults.plan import _stable_key
from repro.obs import telemetry
from repro.service.errors import WorkerCrashError, WorkerHangError

#: Draw order: one uniform per (fingerprint, attempt) is split into bands.
KINDS = ("crash", "hang", "slow", "corrupt")


@dataclass(frozen=True)
class ChaosPlan:
    """What to break in the serving tier, keyed off a single seed.

    ``crash_rate`` / ``hang_rate`` / ``slow_rate`` / ``corrupt_rate``
        Per-(request, attempt) probabilities of each fault kind; bands of a
        single keyed uniform, so they are mutually exclusive per attempt and
        their sum must stay < 1.
    ``immune_after``
        When set, attempts numbered ``>= immune_after`` run clean — the
        knob for scenarios that must recover ("first try always crashes,
        retry always lands").  ``None`` leaves every attempt at risk.
    ``slow_seconds`` / ``hang_seconds``
        Physical delays for the in-worker mode (and the in-process slow
        sleep); the in-process hang raises immediately instead of sleeping,
        keeping the deterministic suite fast.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    corrupt_rate: float = 0.0
    immune_after: int | None = None
    slow_seconds: float = 0.01
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "slow_rate", "corrupt_rate"):
            v = getattr(self, name)
            if not (0.0 <= v < 1.0):
                raise ValueError(f"{name} must be in [0, 1), got {v}")
        total = self.crash_rate + self.hang_rate + self.slow_rate + self.corrupt_rate
        if total >= 1.0:
            raise ValueError(f"fault rates must sum below 1, got {total:g}")
        if self.immune_after is not None and self.immune_after < 1:
            raise ValueError("immune_after must be >= 1 (or None)")
        if self.slow_seconds < 0 or self.hang_seconds <= 0:
            raise ValueError("slow_seconds must be >= 0 and hang_seconds > 0")

    @property
    def active(self) -> bool:
        return bool(
            self.crash_rate or self.hang_rate or self.slow_rate or self.corrupt_rate
        )

    # -- keyed deterministic draws -----------------------------------------

    def fault(self, fingerprint: str, attempt: int) -> str | None:
        """Fault kind (if any) hitting this solve attempt."""
        if not self.active:
            return None
        if self.immune_after is not None and attempt >= self.immune_after:
            return None
        rng = np.random.default_rng(
            (self.seed & 0xFFFFFFFF, _stable_key("solve", fingerprint, int(attempt)))
        )
        u = rng.random()
        edge = 0.0
        for kind, rate in zip(
            KINDS, (self.crash_rate, self.hang_rate, self.slow_rate, self.corrupt_rate)
        ):
            edge += rate
            if u < edge:
                return kind
        return None

    # -- wire format (ships to pool workers) --------------------------------

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        return {k: v for k, v in out.items() if v is not None}

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosPlan":
        return cls(**payload)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for name, label in (
            ("crash_rate", "crash"),
            ("hang_rate", "hang"),
            ("slow_rate", "slow"),
            ("corrupt_rate", "corrupt"),
        ):
            v = getattr(self, name)
            if v:
                parts.append(f"{label}={v:.0%}")
        if self.immune_after is not None:
            parts.append(f"immune_after={self.immune_after}")
        return f"ChaosPlan({', '.join(parts)})"


def corrupt_outcome(outcome):
    """Deterministically tamper a solve outcome so validation must catch it.

    The first component's allocation is inflated past the node budget and
    the objective is wiped — the shape of a worker returning garbage after
    memory corruption, not a subtle near-miss.
    """
    allocation = dict(outcome.allocation)
    if allocation:
        first = sorted(allocation)[0]
        allocation[first] += sum(allocation.values()) + 1
    return dataclasses.replace(
        outcome,
        allocation=allocation,
        objective=math.nan,
        message="corrupted result (injected)",
    )


def chaotic_solve(plan: ChaosPlan, base_solve):
    """Wrap a ``solve_request``-shaped callable with in-process chaos.

    The wrapper accepts the extra ``attempt`` keyword the resilient service
    threads through, so each retry rolls its own fault draw.
    """

    def _solve(request, *, x0=None, deadline=None, attempt=0):
        fingerprint = request.fingerprint()
        kind = plan.fault(fingerprint, attempt)
        if kind == "crash":
            telemetry.record_fault("worker_crash", "service")
            raise WorkerCrashError(
                worker_id=-1, fingerprint=fingerprint, detail="injected crash"
            )
        if kind == "hang":
            telemetry.record_fault("worker_hang", "service")
            raise WorkerHangError(
                worker_id=-1, timeout=deadline, fingerprint=fingerprint
            )
        outcome = base_solve(request, x0=x0, deadline=deadline)
        if kind == "slow":
            telemetry.record_fault("worker_slow", "service")
            if plan.slow_seconds:
                time.sleep(plan.slow_seconds)
            outcome = dataclasses.replace(
                outcome, wall_time=outcome.wall_time + plan.slow_seconds
            )
        elif kind == "corrupt":
            telemetry.record_fault("result_corrupt", "service")
            outcome = corrupt_outcome(outcome)
        return outcome

    return _solve


def chaos_pool_solve(
    payload: dict,
    x0: dict | None,
    deadline: float | None,
    chaos: dict | None,
    attempt: int = 0,
) -> dict:
    """Pool-worker entry point with *physical* fault injection.

    Runs inside a :class:`ProcessPoolExecutor` worker, so a "crash" is a
    real process death (``os._exit``) the supervisor sees as
    ``BrokenProcessPool``, and a "hang" is a real sleep it must kill.
    """
    from repro.service.request import SolveRequest
    from repro.service.solver import solve_request

    request = SolveRequest.from_dict(payload)
    plan = ChaosPlan.from_dict(chaos) if chaos else None
    kind = plan.fault(request.fingerprint(), attempt) if plan else None
    if kind == "crash":
        os._exit(3)
    if kind == "hang":
        time.sleep(plan.hang_seconds)
    if kind == "slow":
        time.sleep(plan.slow_seconds)
    outcome = solve_request(request, x0=x0, deadline=deadline)
    if kind == "corrupt":
        outcome = corrupt_outcome(outcome)
    return outcome.to_dict()


__all__ = [
    "ChaosPlan",
    "KINDS",
    "chaos_pool_solve",
    "chaotic_solve",
    "corrupt_outcome",
]
