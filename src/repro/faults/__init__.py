"""Deterministic fault injection for the HSLB pipeline.

§IV of the paper: "The weakest part of the HSLB algorithm, in our opinion,
is obtaining the actual performance data for fitting."  This subpackage
makes that weakness — and every other failure mode a production deployment
meets — injectable, so the gather/fit/solve/execute stack can be tested and
benchmarked under benchmark-run failures, timeouts, stragglers, solver
stalls, and mid-run node-group crashes.

Everything is seeded and deterministic: a :class:`FaultPlan` with the same
seed injects byte-identical faults, so every degraded run is reproducible.
"""

from repro.faults.chaos import ChaosPlan, chaos_pool_solve, chaotic_solve
from repro.faults.plan import (
    BenchmarkFault,
    BenchmarkRunError,
    FaultInjectionError,
    FaultPlan,
    NodeCrashError,
)

__all__ = [
    "BenchmarkFault",
    "BenchmarkRunError",
    "ChaosPlan",
    "FaultInjectionError",
    "FaultPlan",
    "NodeCrashError",
    "chaos_pool_solve",
    "chaotic_solve",
]
