"""The fault plan: a seeded, pure description of what goes wrong and when.

Design rules:

* **Deterministic.**  Every draw is keyed by the *identity* of the event
  (benchmark run at node count ``n``, attempt ``k``; fragment ``i`` on a
  group; solver tier ``t``) through a stable hash, never by call order.
  Two plans with the same seed and rates inject identical faults no matter
  how callers interleave their queries — a property test pins this.
* **Pure.**  The plan holds no mutable state; simulators own whatever
  bookkeeping ("this node already died") the physics requires.
* **Typed failures.**  Injection surfaces as exceptions carrying the event
  identity, so retry loops and recovery planners can reason about them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import telemetry
from repro.util.rng import keyed_rng, stable_key as _stable_key  # noqa: F401  (re-exported)

_KINDS = ("failure", "timeout", "permanent")


class FaultInjectionError(RuntimeError):
    """Base class for every injected fault surfaced as an exception."""


@dataclass(frozen=True)
class BenchmarkFault:
    """One injected gather-step fault: a benchmark run that did not finish."""

    kind: str  # "failure" (crashed run), "timeout" (hung run), "permanent"
    scope: str  # which gather campaign ("cesm", "fmo", ...)
    nodes: int  # total node count of the failed run
    attempt: int  # 0 = first try, 1+ = retries

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    @property
    def recoverable(self) -> bool:
        """Permanent faults hit every retry; the point must be dropped."""
        return self.kind != "permanent"


class BenchmarkRunError(FaultInjectionError):
    """A gather-step benchmark run failed (crash, timeout, or dead point)."""

    def __init__(self, fault: BenchmarkFault) -> None:
        self.fault = fault
        super().__init__(
            f"benchmark run at {fault.nodes} nodes "
            f"{'timed out' if fault.kind == 'timeout' else 'failed'} "
            f"(scope={fault.scope}, attempt={fault.attempt})"
        )


class NodeCrashError(FaultInjectionError):
    """A node group died mid-run, taking its component's work with it."""

    def __init__(self, *, component: str, lost_nodes: int, fraction: float) -> None:
        self.component = component
        self.lost_nodes = lost_nodes
        self.fraction = float(fraction)
        super().__init__(
            f"node group hosting {component!r} ({lost_nodes} nodes) crashed "
            f"{100 * self.fraction:.0f}% into the run"
        )


@dataclass(frozen=True)
class FaultPlan:
    """What to break, how often, keyed off a single seed.

    Gather-step knobs:

    ``fail_rate``
        Probability that one benchmark run (one node count, one attempt)
        crashes outright.  Independent per attempt, so retries can succeed.
    ``timeout_rate``
        Probability that a run hangs past its wall limit instead; retried
        the same way but reported distinctly.
    ``permanent_rate``
        Probability that a benchmark *point* (node count) is dead for every
        attempt — a machine-side incompatibility no retry fixes.  These are
        what the resilient gather must drop.
    ``straggler_rate`` / ``straggler_scale``
        Probability that a run completes but one timing is inflated by a
        uniform factor in ``[1.5, straggler_scale]`` (OS jitter burst,
        contended filesystem) — the observation is annotated, not lost.

    Solve-step knobs:

    ``solver_stall``
        Solver tiers ("oa", "nlpbb") forced to stall, exercising the
        degradation chain down to the greedy proportional fallback.

    Execute-step knobs:

    ``crash_component`` / ``crash_group`` + ``crash_fraction``
        One mid-run node-group loss: for CESM the group hosting a named
        component, for FMO/GDDI a group index, dying ``crash_fraction`` of
        the way through the run.
    ``crash_step``
        Dynamic-run variant: the crash fires at the top of this step of a
        :class:`repro.dynlb.workload.DynamicWorkload` (optionally targeting
        ``crash_component``; the largest group dies otherwise), and
        ``crash_fraction`` of the interrupted step's work is lost.  Landing
        it inside a migration window aborts the in-flight move — the
        rebalance/fault interplay the dynlb tests pin.
    """

    seed: int = 0
    fail_rate: float = 0.0
    timeout_rate: float = 0.0
    permanent_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_scale: float = 3.0
    solver_stall: tuple[str, ...] = field(default=())
    crash_component: str | None = None
    crash_group: int | None = None
    crash_fraction: float = 0.5
    crash_step: int | None = None

    def __post_init__(self) -> None:
        for name in ("fail_rate", "timeout_rate", "permanent_rate", "straggler_rate"):
            v = getattr(self, name)
            if not (0.0 <= v < 1.0):
                raise ValueError(f"{name} must be in [0, 1), got {v}")
        if self.fail_rate + self.timeout_rate >= 1.0:
            raise ValueError("fail_rate + timeout_rate must be < 1")
        if self.straggler_scale < 1.5:
            raise ValueError("straggler_scale must be >= 1.5")
        if not (0.0 < self.crash_fraction < 1.0):
            raise ValueError("crash_fraction must be in (0, 1)")
        object.__setattr__(self, "solver_stall", tuple(self.solver_stall))
        for tier in self.solver_stall:
            if tier not in ("oa", "nlpbb"):
                raise ValueError(f"unknown solver tier {tier!r}")
        if self.crash_component is not None and self.crash_group is not None:
            raise ValueError("specify crash_component or crash_group, not both")
        if self.crash_step is not None and self.crash_step < 0:
            raise ValueError(f"crash_step must be >= 0, got {self.crash_step}")

    # -- keyed deterministic draws ----------------------------------------

    def _rng(self, *key: object) -> np.random.Generator:
        return keyed_rng(self.seed, *key)

    def benchmark_fault(
        self, scope: str, nodes: int, attempt: int
    ) -> BenchmarkFault | None:
        """Fault (if any) hitting the gather run at ``nodes``, try ``attempt``."""
        if self.permanent_rate:
            # Attempt-independent: the point itself is dead.
            u = self._rng("bench-permanent", scope, int(nodes)).random()
            if u < self.permanent_rate:
                return BenchmarkFault("permanent", scope, int(nodes), int(attempt))
        if self.fail_rate or self.timeout_rate:
            u = self._rng("bench", scope, int(nodes), int(attempt)).random()
            if u < self.fail_rate:
                return BenchmarkFault("failure", scope, int(nodes), int(attempt))
            if u < self.fail_rate + self.timeout_rate:
                return BenchmarkFault("timeout", scope, int(nodes), int(attempt))
        return None

    def check_benchmark(self, scope: str, nodes: int, attempt: int) -> None:
        """Raise :class:`BenchmarkRunError` when the run is injected to fail."""
        fault = self.benchmark_fault(scope, nodes, attempt)
        if fault is not None:
            telemetry.record_fault(fault.kind, "gather")
            raise BenchmarkRunError(fault)

    def straggler_multiplier(
        self, scope: str, unit: object, nodes: int, attempt: int = 0
    ) -> float:
        """Slow-down factor for one timing (1.0 when the run is clean)."""
        if not self.straggler_rate:
            return 1.0
        r = self._rng("straggler", scope, unit, int(nodes), int(attempt))
        if r.random() < self.straggler_rate:
            telemetry.record_fault("straggler", "gather")
            return float(r.uniform(1.5, self.straggler_scale))
        return 1.0

    # -- solve / execute ----------------------------------------------------

    def solver_fails(self, tier: str) -> bool:
        return tier in self.solver_stall

    @property
    def has_crash(self) -> bool:
        return self.crash_component is not None or self.crash_group is not None

    def describe(self) -> str:
        """One-line run-header echo so degraded results stay reproducible."""
        parts = [f"seed={self.seed}"]
        for name, fmt in (
            ("fail_rate", "fail={:.0%}"),
            ("timeout_rate", "timeout={:.0%}"),
            ("permanent_rate", "permanent={:.0%}"),
            ("straggler_rate", "straggler={:.0%}"),
        ):
            v = getattr(self, name)
            if v:
                parts.append(fmt.format(v))
        if self.straggler_rate:
            parts.append(f"straggler_scale={self.straggler_scale:g}x")
        if self.solver_stall:
            parts.append(f"solver_stall={','.join(self.solver_stall)}")
        if self.crash_component is not None:
            parts.append(
                f"crash={self.crash_component}@{self.crash_fraction:.0%}"
            )
        if self.crash_group is not None:
            parts.append(f"crash=group{self.crash_group}@{self.crash_fraction:.0%}")
        if self.crash_step is not None:
            parts.append(f"crash_step={self.crash_step}")
        return f"FaultPlan({', '.join(parts)})"
