"""repro — HSLB: heuristic static load balancing via MINLP.

A full reproduction of the HSLB line of work:

* *Heuristic static load-balancing algorithm applied to the fragment
  molecular orbital method* (SC 2012) — the algorithm and its FMO
  application (:mod:`repro.fmo`);
* *The Heuristic Static Load-Balancing Algorithm Applied to the Community
  Earth System Model* (IPDPSW 2014) — the CESM application whose evaluation
  (Table III, Figures 2-4) this library regenerates (:mod:`repro.cesm`,
  :mod:`repro.experiments`).

Layered architecture (see DESIGN.md):

* :mod:`repro.minlp` — a from-scratch MINLP toolkit (expression trees with
  symbolic differentiation, LP/NLP layers, branch-and-bound with SOS1
  branching, outer approximation) standing in for AMPL + MINOTAUR;
* :mod:`repro.perf` — the Table II performance-model family and its
  constrained least-squares fitting;
* :mod:`repro.core` — the HSLB pipeline (gather -> fit -> solve -> execute);
* :mod:`repro.cesm` / :mod:`repro.fmo` — application substrates with
  simulators calibrated to the papers' published timings;
* :mod:`repro.experiments` — one runner per table/figure plus ablations.

Quickstart::

    from repro.cesm import CESMApplication, one_degree
    from repro.core import HSLBOptimizer
    from repro.util.rng import default_rng

    app = CESMApplication(one_degree())
    result = HSLBOptimizer(app).run(
        benchmark_node_counts=[32, 64, 128, 512, 2048],
        total_nodes=128,
        rng=default_rng(0),
    )
    print(result.allocation, result.predicted_total, result.actual_total)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
