"""Command-line front end: ``hslb`` (or ``python -m repro``).

Subcommands:

* ``hslb optimize``   — run the HSLB pipeline on a CESM configuration and
  print the Table-III-style allocation report;
* ``hslb fmo``        — run HSLB and the baselines on a synthetic FMO system;
* ``hslb experiment`` — run any registered paper experiment by id;
* ``hslb list``       — list available experiments.
"""

from __future__ import annotations

import argparse
import sys

from repro.util.rng import default_rng


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("fault injection (repro.faults)")
    group.add_argument(
        "--fail-rate",
        type=float,
        default=0.0,
        help="probability a benchmark run dies and must be retried",
    )
    group.add_argument(
        "--straggler-rate",
        type=float,
        default=0.0,
        help="probability a per-component timer is straggler-inflated",
    )
    group.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the deterministic fault plan (same seed, same faults)",
    )


def _fault_plan_from_args(args: argparse.Namespace, **crash: object):
    """Build a FaultPlan from CLI flags, or None when no fault was asked for."""
    crash = {k: v for k, v in crash.items() if v is not None}
    if not (args.fail_rate or args.straggler_rate or crash):
        return None
    from repro.faults.plan import FaultPlan

    return FaultPlan(
        seed=args.fault_seed,
        fail_rate=args.fail_rate,
        straggler_rate=args.straggler_rate,
        **crash,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hslb",
        description=(
            "Heuristic static load balancing via MINLP — reproduction of the "
            "HSLB papers (FMO, SC 2012; CESM, IPDPSW 2014)."
        ),
    )
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    opt = sub.add_parser("optimize", help="run HSLB on a CESM configuration")
    opt.add_argument(
        "--resolution",
        choices=("1deg", "eighth"),
        default="1deg",
        help="CESM configuration",
    )
    opt.add_argument("--nodes", type=int, required=True, help="machine size")
    opt.add_argument(
        "--layout", type=int, choices=(1, 2, 3), default=1, help="Figure 1 layout"
    )
    opt.add_argument(
        "--free-ocean",
        action="store_true",
        help="drop the hard-coded ocean node-count list (1/8 degree only)",
    )
    opt.add_argument(
        "--tsync",
        type=float,
        default=None,
        help="ice/land synchronization tolerance in seconds (default: off)",
    )
    opt.add_argument(
        "--benchmarks",
        type=int,
        nargs="+",
        default=None,
        help="total node counts for the gather step",
    )
    opt.add_argument(
        "--auto-campaign",
        action="store_true",
        help="plan the gather node counts per §III-C (memory floor to "
        "machine cap, geometric spacing) instead of using the defaults",
    )
    opt.add_argument(
        "--compare-manual",
        action="store_true",
        help="also run the emulated manual expert and compare",
    )
    opt.add_argument(
        "--save-benchmarks",
        metavar="FILE",
        default=None,
        help="persist the gather campaign's timings as JSON",
    )
    opt.add_argument(
        "--load-benchmarks",
        metavar="FILE",
        default=None,
        help="skip the gather step and reuse a saved campaign (§III-F)",
    )
    _add_fault_args(opt)
    opt.add_argument(
        "--crash-component",
        choices=("lnd", "ice", "atm", "ocn"),
        default=None,
        help="lose this component's nodes mid-run and re-plan on survivors",
    )

    fmo = sub.add_parser("fmo", help="run HSLB and baselines on an FMO system")
    fmo.add_argument("--fragments", type=int, default=12)
    fmo.add_argument("--nodes", type=int, default=256)
    fmo.add_argument(
        "--system",
        choices=("protein", "water"),
        default="protein",
        help="synthetic molecular system kind",
    )
    _add_fault_args(fmo)
    fmo.add_argument(
        "--crash-group",
        type=int,
        default=None,
        help="lose this GDDI group mid-run and compare recovery strategies",
    )
    fmo.add_argument(
        "--crash-fraction",
        type=float,
        default=0.5,
        help="when the crash hits, as a fraction of the fault-free makespan",
    )

    exp = sub.add_parser("experiment", help="run a registered paper experiment")
    exp.add_argument("name", help="experiment id (see `hslb list`)")

    exp_ampl = sub.add_parser(
        "export", help="emit the allocation MINLP as an AMPL model"
    )
    exp_ampl.add_argument(
        "--resolution", choices=("1deg", "eighth"), default="1deg"
    )
    exp_ampl.add_argument("--nodes", type=int, required=True)
    exp_ampl.add_argument(
        "--layout", type=int, choices=(1, 2, 3), default=1
    )
    exp_ampl.add_argument(
        "-o", "--output", default=None, help="output file (default: stdout)"
    )

    sub.add_parser("list", help="list registered experiments")
    return parser


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.cesm.app import CESMApplication
    from repro.cesm.grids import eighth_degree, one_degree
    from repro.cesm.layouts import Layout
    from repro.cesm.manual import manual_optimization
    from repro.core.hslb import HSLBOptimizer
    from repro.core.report import allocation_table, comparison_table, speedup_summary
    from repro.experiments.paper_data import BENCHMARK_CAMPAIGN

    if args.resolution == "1deg":
        if args.free_ocean:
            print("--free-ocean only applies to the 1/8-degree setup", file=sys.stderr)
            return 2
        config = one_degree()
    else:
        config = eighth_degree(constrained_ocean=not args.free_ocean)
    layout = Layout(args.layout)
    try:
        plan = _fault_plan_from_args(args, crash_component=args.crash_component)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if plan is not None:
        print(f"fault plan: {plan.describe()}\n")
    app = CESMApplication(config, layout=layout, tsync=args.tsync, faults=plan)
    if args.auto_campaign:
        from repro.cesm.campaign import plan_campaign

        cap = max(args.nodes * 4, args.nodes + 1)
        bench = list(plan_campaign(config, max_nodes=min(cap, config.machine_nodes)))
        print(f"planned gather campaign: {bench}\n")
    else:
        bench = args.benchmarks or list(BENCHMARK_CAMPAIGN[args.resolution])
    rng = default_rng(args.seed)

    optimizer = HSLBOptimizer(app)
    if args.load_benchmarks:
        from repro.perf.io import load_suite

        suite = load_suite(args.load_benchmarks)
    else:
        suite = optimizer.gather(bench, rng)
    if args.save_benchmarks:
        from repro.perf.io import save_suite

        save_suite(suite, args.save_benchmarks)
        print(f"benchmark campaign saved to {args.save_benchmarks}\n")
    fits = optimizer.fit(suite, rng)
    result = optimizer.run_from_fits(fits, args.nodes, rng)
    if args.compare_manual and layout is Layout.HYBRID:
        manual = manual_optimization(app.simulator, args.nodes, rng)
        print(
            comparison_table(
                manual.allocation,
                manual.execution,
                result,
                title=f"{config.name} @ {args.nodes} nodes (layout {args.layout})",
            )
        )
        summary = speedup_summary(manual.execution, result)
        print(
            f"\nHSLB improvement over manual: {summary.get('improvement_pct', 0.0):.1f}% "
            f"(manual burned {manual.executions_burned} trial executions)"
        )
    else:
        print(
            allocation_table(
                result,
                title=f"{config.name} @ {args.nodes} nodes (layout {args.layout})",
            )
        )
    stats = result.solution.stats
    print(
        f"\nsolver: {result.solution.status.value}, "
        f"{stats.nodes_explored} B&B nodes, {stats.nlp_solves} NLP solves, "
        f"{stats.cuts_added} OA cuts, {stats.wall_time:.2f}s"
    )
    if plan is not None:
        from repro.core.report import resilience_summary

        print("\n" + resilience_summary(result))
    return 0


def _cmd_fmo(args: argparse.Namespace) -> int:
    from repro.fmo.molecules import protein_like, water_cluster
    from repro.fmo.schedulers import (
        greedy_dynamic_schedule,
        hslb_schedule,
        uniform_static_schedule,
    )
    from repro.fmo.simulator import FMOSimulator
    from repro.util.tables import format_table

    rng = default_rng(args.seed)
    system = (
        protein_like(args.fragments, rng)
        if args.system == "protein"
        else water_cluster(args.fragments, rng)
    )
    try:
        plan = _fault_plan_from_args(
            args,
            crash_group=args.crash_group,
            crash_fraction=(
                args.crash_fraction if args.crash_group is not None else None
            ),
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if plan is not None:
        print(f"fault plan: {plan.describe()}\n")
    sim = FMOSimulator(system, faults=plan)
    hs, sol = hslb_schedule(system, args.nodes)
    rows = []
    for sched in (
        hs,
        greedy_dynamic_schedule(system, args.nodes, max(2, args.fragments // 3)),
        uniform_static_schedule(system, args.nodes, args.fragments),
    ):
        run = sim.execute(sched, default_rng(args.seed))
        rows.append([sched.label, run.makespan, run.load_imbalance])
    print(
        format_table(
            ["scheduler", "makespan s", "load imbalance"],
            rows,
            title=f"{system.name} on {args.nodes} nodes",
        )
    )
    print(f"\nHSLB group sizes: {hs.group_sizes} (predicted {sol.objective:.2f}s)")
    if plan is not None and plan.crash_group is not None:
        from repro.fmo.recovery import STRATEGIES, run_with_crash

        crashed = greedy_dynamic_schedule(
            system, args.nodes, max(2, args.fragments // 3)
        )
        if not 0 <= plan.crash_group < crashed.n_groups:
            print(
                f"--crash-group must be in [0, {crashed.n_groups}) for this run",
                file=sys.stderr,
            )
            return 2
        rows = []
        for strategy in STRATEGIES:
            out = run_with_crash(
                sim,
                crashed,
                crash_group=plan.crash_group,
                crash_fraction=plan.crash_fraction,
                strategy=strategy,
                rng=default_rng(args.seed),
            )
            rows.append([strategy, out.makespan, f"{out.degradation:+.1%}"])
        print(
            "\n"
            + format_table(
                ["recovery", "makespan s", "vs fault-free"],
                rows,
                title=(
                    f"group {plan.crash_group} lost "
                    f"{100 * plan.crash_fraction:.0f}% into the run "
                    f"({crashed.n_groups} groups)"
                ),
            )
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import run_experiment

    kwargs = {} if args.seed is None else {"seed": args.seed}
    try:
        result = run_experiment(args.name, **kwargs)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(result.render())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """Benchmark, fit, and emit the Table-I MINLP as AMPL (the paper's
    production artifact, §V: 'The AMPL code in HSLB is executed remotely via
    Python script on NEOS server')."""
    from repro.cesm.app import CESMApplication
    from repro.cesm.grids import eighth_degree, one_degree
    from repro.cesm.layouts import Layout
    from repro.core.hslb import HSLBOptimizer
    from repro.experiments.paper_data import BENCHMARK_CAMPAIGN
    from repro.minlp.ampl_export import problem_to_ampl

    config = one_degree() if args.resolution == "1deg" else eighth_degree()
    app = CESMApplication(config, layout=Layout(args.layout))
    opt = HSLBOptimizer(app)
    rng = default_rng(args.seed)
    suite = opt.gather(BENCHMARK_CAMPAIGN[args.resolution], rng)
    fits = opt.fit(suite, rng)
    problem = app.formulate({k: f.model for k, f in fits.items()}, args.nodes)
    text = problem_to_ampl(problem)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"AMPL model written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_list() -> int:
    from repro.experiments import EXPERIMENTS

    for name in sorted(EXPERIMENTS):
        print(name)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "optimize":
        return _cmd_optimize(args)
    if args.command == "fmo":
        return _cmd_fmo(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "export":
        return _cmd_export(args)
    return _cmd_list()


if __name__ == "__main__":
    raise SystemExit(main())
