"""Command-line front end: ``hslb`` (or ``python -m repro``).

Subcommands:

* ``hslb optimize``   — run the HSLB pipeline on a CESM configuration and
  print the Table-III-style allocation report;
* ``hslb fmo``        — run HSLB and the baselines on a synthetic FMO system;
* ``hslb dynlb``      — online rebalancing: compare the frozen static plan
  against dynamic/hybrid strategies under drift, noise, and crashes;
* ``hslb serve``      — allocation service: JSONL requests on stdin, JSONL
  answers on stdout (cached + warm-started);
* ``hslb batch``      — answer a JSON file of allocation requests in one
  deduplicated, donor-ordered batch;
* ``hslb experiment`` — run any registered paper experiment by id;
* ``hslb list``       — list available experiments;
* ``hslb trace``      — run any subcommand under the span tracer and print
  an ASCII flamegraph of where the time went; ``hslb trace --id X --input
  dump.jsonl`` renders one request's tree from a ``--trace-out`` dump;
* ``hslb top``        — live terminal dashboard over a ``/metrics`` scrape
  (SLO burn rates, latency quantiles, traffic counters);
* ``hslb metrics``    — print the metrics registry in Prometheus text
  format (optionally running a subcommand first to populate it).

``optimize`` and ``fmo`` take ``--json`` for machine-readable output; exit
codes are identical either way.  Progress chatter goes to stderr through
:mod:`repro.obs.logging` (``-v``/``-q`` tune it), so stdout stays
machine-clean under ``--json`` and in pipelines.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro.obs.logging import get_logger, set_verbosity
from repro.obs.trace import span
from repro.util.rng import default_rng

_log = get_logger("cli")


@contextlib.contextmanager
def _tracing(path: str | None):
    """Collect a span trace for the enclosed block and write it to ``path``.

    When the tracer is already live (running under ``hslb trace``), the
    block just joins the ongoing trace and the file still gets written.
    """
    if not path:
        yield
        return
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    owns = not tracer.enabled
    if owns:
        tracer.reset()
        tracer.enable()
    try:
        yield
    finally:
        if owns:
            tracer.disable()
        lines = tracer.write_jsonl(path)
        _log.info(f"trace written to {path}", spans=lines)


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("fault injection (repro.faults)")
    group.add_argument(
        "--fail-rate",
        type=float,
        default=0.0,
        help="probability a benchmark run dies and must be retried",
    )
    group.add_argument(
        "--straggler-rate",
        type=float,
        default=0.0,
        help="probability a per-component timer is straggler-inflated",
    )
    group.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the deterministic fault plan (same seed, same faults)",
    )


def _fault_plan_from_args(args: argparse.Namespace, **crash: object):
    """Build a FaultPlan from CLI flags, or None when no fault was asked for."""
    crash = {k: v for k, v in crash.items() if v is not None}
    if not (args.fail_rate or args.straggler_rate or crash):
        return None
    from repro.faults.plan import FaultPlan

    return FaultPlan(
        seed=args.fault_seed,
        fail_rate=args.fail_rate,
        straggler_rate=args.straggler_rate,
        **crash,
    )


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("allocation service (repro.service)")
    group.add_argument(
        "--cache-capacity",
        type=int,
        default=256,
        help="LRU solution-cache capacity",
    )
    group.add_argument(
        "--ttl",
        type=float,
        default=None,
        help="cache entry time-to-live in seconds (default: no expiry)",
    )
    group.add_argument(
        "--no-warm-start",
        action="store_true",
        help="disable warm-starting misses from cached neighbor solutions",
    )
    group.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request wall deadline in seconds",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("resilience (retry / breaker / degradation)")
    group.add_argument(
        "--resilient",
        action="store_true",
        help="enable the resilient request path (retries, circuit breaker, "
        "degradation ladder); implied by any --chaos-* rate",
    )
    group.add_argument(
        "--retries",
        type=int,
        default=3,
        help="solve attempts per request before degrading (resilient mode)",
    )
    group.add_argument(
        "--hedge-after",
        type=float,
        default=None,
        help="seconds before a straggler dispatch gets a hedged duplicate",
    )
    group.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive system failures that open a family's breaker",
    )
    group.add_argument(
        "--breaker-reset",
        type=float,
        default=30.0,
        help="seconds an open breaker waits before half-open probes",
    )
    group.add_argument(
        "--max-stale",
        type=float,
        default=None,
        help="oldest cache age (s) the stale rung may serve (default: any)",
    )
    group.add_argument(
        "--no-stale",
        action="store_true",
        help="disable the stale-cache degradation rung",
    )
    group.add_argument(
        "--no-greedy",
        action="store_true",
        help="disable the greedy-approximate degradation rung",
    )
    group.add_argument(
        "--restart-budget",
        type=int,
        default=3,
        help="worker replacements the supervised pool may spend per batch",
    )
    group.add_argument(
        "--hang-timeout",
        type=float,
        default=30.0,
        help="seconds before an unresponsive worker dispatch counts as hung",
    )


def _add_chaos_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("chaos injection (repro.faults.chaos)")
    group.add_argument(
        "--chaos-crash-rate",
        type=float,
        default=0.0,
        help="probability a solve dies as a worker crash",
    )
    group.add_argument(
        "--chaos-hang-rate",
        type=float,
        default=0.0,
        help="probability a solve hangs until the harvest timeout",
    )
    group.add_argument(
        "--chaos-slow-rate",
        type=float,
        default=0.0,
        help="probability a solve is straggler-delayed",
    )
    group.add_argument(
        "--chaos-corrupt-rate",
        type=float,
        default=0.0,
        help="probability a solve returns a corrupted result",
    )
    group.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed of the deterministic chaos plan (same seed, same faults)",
    )
    group.add_argument(
        "--chaos-immune-after",
        type=int,
        default=2,
        help="attempt index from which a request runs fault-free "
        "(guarantees retries eventually land); negative = never immune",
    )
    group.add_argument(
        "--chaos-hang-seconds",
        type=float,
        default=2.0,
        help="how long an injected hang sleeps in a pool worker",
    )
    group.add_argument(
        "--chaos-slow-seconds",
        type=float,
        default=0.01,
        help="how long an injected straggler delay sleeps",
    )


def _chaos_from_args(args: argparse.Namespace):
    """Build a ChaosPlan from CLI flags, or None when no rate was asked for."""
    rates = (
        args.chaos_crash_rate,
        args.chaos_hang_rate,
        args.chaos_slow_rate,
        args.chaos_corrupt_rate,
    )
    if not any(rates):
        return None
    from repro.faults.chaos import ChaosPlan

    return ChaosPlan(
        seed=args.chaos_seed,
        crash_rate=args.chaos_crash_rate,
        hang_rate=args.chaos_hang_rate,
        slow_rate=args.chaos_slow_rate,
        corrupt_rate=args.chaos_corrupt_rate,
        immune_after=(
            None if args.chaos_immune_after < 0 else args.chaos_immune_after
        ),
        hang_seconds=args.chaos_hang_seconds,
        slow_seconds=args.chaos_slow_seconds,
    )


def _resilience_from_args(args: argparse.Namespace, *, forced: bool = False):
    chaos = _chaos_from_args(args)
    if not (forced or args.resilient or chaos is not None):
        return None, None
    from repro.service import BreakerPolicy, ResiliencePolicy, RetryPolicy

    policy = ResiliencePolicy(
        retry=RetryPolicy(
            max_attempts=max(1, args.retries), hedge_after=args.hedge_after
        ),
        breaker=BreakerPolicy(
            failure_threshold=args.breaker_threshold,
            reset_timeout=args.breaker_reset,
        ),
        max_stale=args.max_stale,
        allow_stale=not args.no_stale,
        allow_greedy=not args.no_greedy,
        restart_budget=args.restart_budget,
        hang_timeout=args.hang_timeout,
    )
    return policy, chaos


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hslb",
        description=(
            "Heuristic static load balancing via MINLP — reproduction of the "
            "HSLB papers (FMO, SC 2012; CESM, IPDPSW 2014)."
        ),
    )
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more progress chatter on stderr (repeatable)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress progress chatter (errors only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    opt = sub.add_parser("optimize", help="run HSLB on a CESM configuration")
    opt.add_argument(
        "--resolution",
        choices=("1deg", "eighth"),
        default="1deg",
        help="CESM configuration",
    )
    opt.add_argument("--nodes", type=int, required=True, help="machine size")
    opt.add_argument(
        "--layout", type=int, choices=(1, 2, 3), default=1, help="Figure 1 layout"
    )
    opt.add_argument(
        "--free-ocean",
        action="store_true",
        help="drop the hard-coded ocean node-count list (1/8 degree only)",
    )
    opt.add_argument(
        "--tsync",
        type=float,
        default=None,
        help="ice/land synchronization tolerance in seconds (default: off)",
    )
    opt.add_argument(
        "--benchmarks",
        type=int,
        nargs="+",
        default=None,
        help="total node counts for the gather step",
    )
    opt.add_argument(
        "--auto-campaign",
        action="store_true",
        help="plan the gather node counts per §III-C (memory floor to "
        "machine cap, geometric spacing) instead of using the defaults",
    )
    opt.add_argument(
        "--compare-manual",
        action="store_true",
        help="also run the emulated manual expert and compare",
    )
    opt.add_argument(
        "--save-benchmarks",
        metavar="FILE",
        default=None,
        help="persist the gather campaign's timings as JSON",
    )
    opt.add_argument(
        "--load-benchmarks",
        metavar="FILE",
        default=None,
        help="skip the gather step and reuse a saved campaign (§III-F)",
    )
    opt.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of tables",
    )
    opt.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a JSONL span trace of the pipeline run",
    )
    _add_fault_args(opt)
    opt.add_argument(
        "--crash-component",
        choices=("lnd", "ice", "atm", "ocn"),
        default=None,
        help="lose this component's nodes mid-run and re-plan on survivors",
    )

    fmo = sub.add_parser("fmo", help="run HSLB and baselines on an FMO system")
    fmo.add_argument("--fragments", type=int, default=12)
    fmo.add_argument("--nodes", type=int, default=256)
    fmo.add_argument(
        "--system",
        choices=("protein", "water"),
        default="protein",
        help="synthetic molecular system kind",
    )
    fmo.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of tables",
    )
    fmo.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a JSONL span trace of the run",
    )
    _add_fault_args(fmo)
    fmo.add_argument(
        "--crash-group",
        type=int,
        default=None,
        help="lose this GDDI group mid-run and compare recovery strategies",
    )
    fmo.add_argument(
        "--crash-fraction",
        type=float,
        default=0.5,
        help="when the crash hits, as a fraction of the fault-free makespan",
    )

    dyn = sub.add_parser(
        "dynlb",
        help="online rebalancing: static vs dynamic strategies under drift",
    )
    dyn.add_argument(
        "--scenario",
        choices=("cesm", "fmo"),
        default="cesm",
        help="which simulator's ground truth feeds the dynamic run",
    )
    dyn.add_argument("--nodes", type=int, default=128, help="machine size")
    dyn.add_argument("--steps", type=int, default=120, help="run length in steps")
    dyn.add_argument(
        "--fragments", type=int, default=8, help="fragment count (fmo scenario)"
    )
    dyn.add_argument(
        "--strategies",
        default="static,hslb,diffusion,sweep,two-level",
        help="comma-separated strategy list to compare",
    )
    dyn.add_argument(
        "--interval", type=int, default=10, help="rebalance decision cadence"
    )
    dyn.add_argument(
        "--drift",
        choices=("none", "linear", "step", "walk"),
        default="linear",
        help="drift preset applied to the ground-truth curves",
    )
    dyn.add_argument(
        "--drift-rate",
        type=float,
        default=0.6,
        help="total fractional drift over the run (preset-dependent)",
    )
    dyn.add_argument(
        "--noise", type=float, default=0.02, help="log-normal timing noise sigma"
    )
    dyn.add_argument(
        "--imbalance",
        type=float,
        default=0.15,
        help="intra-component imbalance amplitude (static intra policy)",
    )
    dyn.add_argument(
        "--gain-factor",
        type=float,
        default=1.2,
        help="required predicted-gain / migration-cost ratio to migrate",
    )
    dyn.add_argument(
        "--migration-steps",
        type=int,
        default=1,
        help="steps a migration window spans before the move lands",
    )
    dyn.add_argument(
        "--crash-step",
        type=int,
        default=None,
        help="inject a node-group crash at the top of this step",
    )
    dyn.add_argument(
        "--crash-component",
        default=None,
        help="which component's group dies (default: the largest)",
    )
    dyn.add_argument(
        "--crash-fraction",
        type=float,
        default=0.5,
        help="fraction of the interrupted step's work the crash burns",
    )
    dyn.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of tables",
    )
    dyn.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a JSONL span trace of the comparison",
    )
    _add_fault_args(dyn)

    srv = sub.add_parser(
        "serve",
        help="allocation service: JSONL requests in, JSONL answers out",
    )
    _add_service_args(srv)
    _add_resilience_args(srv)
    _add_chaos_args(srv)
    srv.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a JSONL span trace of the serving session",
    )
    tier = srv.add_argument_group("async tier (hslb serve --async)")
    tier.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve through the sharded asyncio tier (consistent-hash "
        "cache shards, single-flight coalescing, tiered admission)",
    )
    tier.add_argument(
        "--shards",
        type=int,
        default=4,
        help="cache shards on the consistent-hash ring (async tier)",
    )
    tier.add_argument(
        "--worker-mode",
        choices=("auto", "thread", "process", "inline"),
        default="auto",
        help="how shards solve: 'process' forks one solver per shard "
        "(parallel on multi-core hosts), 'thread' keeps solves in-process "
        "(best on one core), 'inline' is deterministic but blocks the "
        "loop; 'auto' picks by host core count",
    )
    tier.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="tier-wide in-flight limit before admission starts degrading "
        "and shedding by priority class (async tier)",
    )
    tier.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable single-flight coalescing of identical in-flight "
        "requests (async tier)",
    )
    tier.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a Prometheus /metrics + /healthz HTTP endpoint on "
        "this port for the lifetime of the session (0 = ephemeral; "
        "async tier)",
    )

    bat = sub.add_parser(
        "batch", help="answer a JSON file of allocation requests in one batch"
    )
    bat.add_argument("requests", help="path to a JSON array of request objects")
    _add_service_args(bat)
    bat.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool size for fan-out (0 = solve in-process)",
    )
    bat.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="admission limit; larger batches are refused (backpressure)",
    )
    bat.add_argument(
        "--metrics",
        action="store_true",
        help="append a final {'metrics': ...} JSONL line to stdout",
    )
    _add_resilience_args(bat)
    _add_chaos_args(bat)

    cha = sub.add_parser(
        "chaos",
        help="soak the resilient service under injected faults and report "
        "per-request provenance",
    )
    cha.add_argument(
        "--requests",
        type=int,
        default=200,
        help="how many requests the deterministic soak mix contains",
    )
    cha.add_argument(
        "--families",
        type=int,
        default=3,
        help="distinct request families (curve sets) in the mix",
    )
    cha.add_argument(
        "--workers",
        type=int,
        default=0,
        help="supervised-pool size (0 = deterministic in-process chaos)",
    )
    cha.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON report instead of tables",
    )
    cha.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the final metrics snapshot as JSON (CI artifact)",
    )
    _add_service_args(cha)
    _add_resilience_args(cha)
    _add_chaos_args(cha)

    exp = sub.add_parser("experiment", help="run a registered paper experiment")
    exp.add_argument("name", help="experiment id (see `hslb list`)")

    exp_ampl = sub.add_parser(
        "export", help="emit the allocation MINLP as an AMPL model"
    )
    exp_ampl.add_argument(
        "--resolution", choices=("1deg", "eighth"), default="1deg"
    )
    exp_ampl.add_argument("--nodes", type=int, required=True)
    exp_ampl.add_argument(
        "--layout", type=int, choices=(1, 2, 3), default=1
    )
    exp_ampl.add_argument(
        "-o", "--output", default=None, help="output file (default: stdout)"
    )

    sub.add_parser("list", help="list registered experiments")

    trc = sub.add_parser(
        "trace",
        help="run a subcommand under the span tracer, flamegraph on stderr; "
        "or render one request's tree from a trace dump with --id",
    )
    trc.add_argument(
        "--id",
        dest="trace_id",
        default=None,
        metavar="TRACE_ID",
        help="render the flamegraph/timeline of one request tree from a "
        "JSONL trace dump (requires --input)",
    )
    trc.add_argument(
        "--input",
        metavar="FILE",
        default=None,
        help="JSONL trace dump to read (written by --trace-out)",
    )
    trc.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        help="subcommand (and flags) to run traced, e.g. `optimize --nodes 64`",
    )

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a /metrics scrape (SLO burn, "
        "latency quantiles, traffic)",
    )
    top.add_argument(
        "--url",
        default=None,
        help="metrics endpoint to scrape, e.g. http://127.0.0.1:9100/metrics",
    )
    top.add_argument(
        "--input",
        metavar="FILE",
        default=None,
        help="read exposition text from a file instead of scraping",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between repaints (default: 2)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after this many repaints (default: run until ^C)",
    )

    met = sub.add_parser(
        "metrics",
        help="print the metrics registry in Prometheus text format",
    )
    met.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        help="optional subcommand to run first so the registry has data",
    )
    return parser


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.cesm.app import CESMApplication
    from repro.cesm.grids import eighth_degree, one_degree
    from repro.cesm.layouts import Layout
    from repro.cesm.manual import manual_optimization
    from repro.core.hslb import HSLBOptimizer
    from repro.core.report import allocation_table, comparison_table, speedup_summary
    from repro.experiments.paper_data import BENCHMARK_CAMPAIGN

    if args.nodes < 2:
        _log.error(f"--nodes must be >= 2, got {args.nodes}")
        return 2
    if args.resolution == "1deg":
        if args.free_ocean:
            _log.error("--free-ocean only applies to the 1/8-degree setup")
            return 2
        config = one_degree()
    else:
        config = eighth_degree(constrained_ocean=not args.free_ocean)
    layout = Layout(args.layout)
    try:
        plan = _fault_plan_from_args(args, crash_component=args.crash_component)
    except ValueError as exc:
        _log.error(str(exc))
        return 2
    # Chatter goes to stderr through the facade, so stdout carries exactly
    # the report (one JSON document under --json) and pipelines can parse it.
    if plan is not None:
        _log.info(f"fault plan: {plan.describe()}")
    app = CESMApplication(config, layout=layout, tsync=args.tsync, faults=plan)
    if args.auto_campaign:
        from repro.cesm.campaign import plan_campaign

        cap = max(args.nodes * 4, args.nodes + 1)
        bench = list(plan_campaign(config, max_nodes=min(cap, config.machine_nodes)))
        _log.info(f"planned gather campaign: {bench}")
    else:
        bench = args.benchmarks or list(BENCHMARK_CAMPAIGN[args.resolution])
    rng = default_rng(args.seed)

    optimizer = HSLBOptimizer(app)
    with _tracing(args.trace_out):
        with span("cli.optimize", config=config.name, nodes=int(args.nodes)):
            if args.load_benchmarks:
                from repro.perf.io import load_suite

                suite = load_suite(args.load_benchmarks)
                _log.debug(f"benchmark campaign loaded from {args.load_benchmarks}")
            else:
                suite = optimizer.gather(bench, rng)
            if args.save_benchmarks:
                from repro.perf.io import save_suite

                save_suite(suite, args.save_benchmarks)
                _log.info(f"benchmark campaign saved to {args.save_benchmarks}")
            fits = optimizer.fit(suite, rng)
            result = optimizer.run_from_fits(fits, args.nodes, rng)
    if args.json:
        import json

        stats = result.solution.stats
        doc = {
            "config": config.name,
            "nodes": int(args.nodes),
            "layout": int(args.layout),
            "allocation": {k: int(v) for k, v in result.allocation.items()},
            "predicted_times": {
                k: float(v) for k, v in result.predicted_times.items()
            },
            "predicted_total": float(result.predicted_total),
            "actual_total": (
                None if result.actual_total is None else float(result.actual_total)
            ),
            "prediction_error": (
                None
                if result.prediction_error is None
                else float(result.prediction_error)
            ),
            "degraded": result.degraded,
            "solver": {
                "status": result.solution.status.value,
                "tier": result.solver_tier,
                "nodes_explored": int(stats.nodes_explored),
                "nlp_solves": int(stats.nlp_solves),
                "cuts_added": int(stats.cuts_added),
                "wall_time": float(stats.wall_time),
            },
        }
        if plan is not None:
            doc["fault_plan"] = plan.describe()
        if args.compare_manual and layout is Layout.HYBRID:
            manual = manual_optimization(app.simulator, args.nodes, rng)
            summary = speedup_summary(manual.execution, result)
            doc["manual"] = {
                "allocation": {k: int(v) for k, v in manual.allocation.items()},
                "total": float(manual.execution.total_time),
                "executions_burned": int(manual.executions_burned),
                "improvement_pct": float(summary.get("improvement_pct", 0.0)),
            }
        print(json.dumps(doc, indent=2))
        return 0
    if args.compare_manual and layout is Layout.HYBRID:
        manual = manual_optimization(app.simulator, args.nodes, rng)
        print(
            comparison_table(
                manual.allocation,
                manual.execution,
                result,
                title=f"{config.name} @ {args.nodes} nodes (layout {args.layout})",
            )
        )
        summary = speedup_summary(manual.execution, result)
        print(
            f"\nHSLB improvement over manual: {summary.get('improvement_pct', 0.0):.1f}% "
            f"(manual burned {manual.executions_burned} trial executions)"
        )
    else:
        print(
            allocation_table(
                result,
                title=f"{config.name} @ {args.nodes} nodes (layout {args.layout})",
            )
        )
    stats = result.solution.stats
    print(
        f"\nsolver: {result.solution.status.value}, "
        f"{stats.nodes_explored} B&B nodes, {stats.nlp_solves} NLP solves, "
        f"{stats.cuts_added} OA cuts, {stats.wall_time:.2f}s"
    )
    if plan is not None:
        from repro.core.report import resilience_summary

        print("\n" + resilience_summary(result))
    return 0


def _cmd_fmo(args: argparse.Namespace) -> int:
    from repro.fmo.molecules import protein_like, water_cluster
    from repro.fmo.schedulers import (
        greedy_dynamic_schedule,
        hslb_schedule,
        uniform_static_schedule,
    )
    from repro.fmo.simulator import FMOSimulator
    from repro.util.tables import format_table

    if args.nodes < args.fragments:
        _log.error(
            f"--nodes must cover every fragment ({args.fragments}), "
            f"got {args.nodes}"
        )
        return 2
    rng = default_rng(args.seed)
    system = (
        protein_like(args.fragments, rng)
        if args.system == "protein"
        else water_cluster(args.fragments, rng)
    )
    try:
        plan = _fault_plan_from_args(
            args,
            crash_group=args.crash_group,
            crash_fraction=(
                args.crash_fraction if args.crash_group is not None else None
            ),
        )
    except ValueError as exc:
        _log.error(str(exc))
        return 2
    if plan is not None:
        _log.info(f"fault plan: {plan.describe()}")
    sim = FMOSimulator(system, faults=plan)
    recovery_rows = None
    with _tracing(args.trace_out):
        with span("cli.fmo", system=system.name, nodes=int(args.nodes)):
            hs, sol = hslb_schedule(system, args.nodes)
            rows = []
            for sched in (
                hs,
                greedy_dynamic_schedule(
                    system, args.nodes, max(2, args.fragments // 3)
                ),
                uniform_static_schedule(system, args.nodes, args.fragments),
            ):
                run = sim.execute(sched, default_rng(args.seed))
                rows.append([sched.label, run.makespan, run.load_imbalance])
            if plan is not None and plan.crash_group is not None:
                from repro.fmo.recovery import STRATEGIES, run_with_crash

                crashed = greedy_dynamic_schedule(
                    system, args.nodes, max(2, args.fragments // 3)
                )
                if not 0 <= plan.crash_group < crashed.n_groups:
                    _log.error(
                        f"--crash-group must be in [0, {crashed.n_groups}) "
                        "for this run"
                    )
                    return 2
                recovery_rows = []
                for strategy in STRATEGIES:
                    out = run_with_crash(
                        sim,
                        crashed,
                        crash_group=plan.crash_group,
                        crash_fraction=plan.crash_fraction,
                        strategy=strategy,
                        rng=default_rng(args.seed),
                    )
                    recovery_rows.append([strategy, out.makespan, out.degradation])
    if args.json:
        import json

        doc = {
            "system": system.name,
            "nodes": int(args.nodes),
            "fragments": int(args.fragments),
            "schedulers": [
                {
                    "label": label,
                    "makespan": float(makespan),
                    "load_imbalance": float(imbalance),
                }
                for label, makespan, imbalance in rows
            ],
            "hslb": {
                "group_sizes": [int(g) for g in hs.group_sizes],
                "predicted": float(sol.objective),
            },
        }
        if plan is not None:
            doc["fault_plan"] = plan.describe()
        if recovery_rows is not None:
            doc["recovery"] = [
                {
                    "strategy": strategy,
                    "makespan": float(makespan),
                    "degradation": float(degradation),
                }
                for strategy, makespan, degradation in recovery_rows
            ]
        print(json.dumps(doc, indent=2))
        return 0
    print(
        format_table(
            ["scheduler", "makespan s", "load imbalance"],
            rows,
            title=f"{system.name} on {args.nodes} nodes",
        )
    )
    print(f"\nHSLB group sizes: {hs.group_sizes} (predicted {sol.objective:.2f}s)")
    if recovery_rows is not None:
        print(
            "\n"
            + format_table(
                ["recovery", "makespan s", "vs fault-free"],
                [
                    [strategy, makespan, f"{degradation:+.1%}"]
                    for strategy, makespan, degradation in recovery_rows
                ],
                title=(
                    f"group {plan.crash_group} lost "
                    f"{100 * plan.crash_fraction:.0f}% into the run "
                    f"({crashed.n_groups} groups)"
                ),
            )
        )
    return 0


def _cmd_dynlb(args: argparse.Namespace) -> int:
    from repro.dynlb import (
        STRATEGIES,
        DynlbConfig,
        cesm_workload,
        compare_strategies,
        fmo_workload,
    )
    from repro.util.tables import format_table

    strategies = tuple(s.strip() for s in args.strategies.split(",") if s.strip())
    unknown = [s for s in strategies if s not in STRATEGIES]
    if unknown:
        _log.error(
            f"unknown strategies {unknown}; expected a subset of {list(STRATEGIES)}"
        )
        return 2
    if not strategies:
        _log.error("--strategies must name at least one strategy")
        return 2
    plan = None
    if args.crash_step is not None or args.fail_rate or args.straggler_rate:
        from repro.faults.plan import FaultPlan

        try:
            plan = FaultPlan(
                seed=args.fault_seed,
                fail_rate=args.fail_rate,
                straggler_rate=args.straggler_rate,
                crash_step=args.crash_step,
                crash_component=(
                    args.crash_component if args.crash_step is not None else None
                ),
                crash_fraction=args.crash_fraction,
            )
        except ValueError as exc:
            _log.error(str(exc))
            return 2
        _log.info(f"fault plan: {plan.describe()}")
    seed = 0 if args.seed is None else args.seed
    common = dict(
        total_nodes=args.nodes,
        steps=args.steps,
        drift=args.drift,
        drift_rate=args.drift_rate,
        noise=args.noise,
        imbalance=args.imbalance,
        seed=seed,
        faults=plan,
    )
    try:
        if args.scenario == "cesm":
            workload = cesm_workload(**common)
        else:
            workload = fmo_workload(fragments=args.fragments, **common)
        config = DynlbConfig(
            interval=args.interval,
            gain_factor=args.gain_factor,
            migration_steps=args.migration_steps,
        )
    except ValueError as exc:
        _log.error(str(exc))
        return 2
    _log.info(workload.describe())
    with _tracing(args.trace_out):
        results = compare_strategies(workload, strategies, config, seed=seed)
    static_total = (
        results["static"].total_seconds if "static" in results else None
    )
    if args.json:
        import json

        doc = {
            "workload": workload.name,
            "seed": int(seed),
            "nodes": int(args.nodes),
            "steps": int(args.steps),
            "drift": args.drift,
            "drift_rate": float(args.drift_rate),
            "strategies": {name: r.to_dict() for name, r in results.items()},
        }
        if static_total is not None:
            doc["vs_static_pct"] = {
                name: 100.0 * (static_total - r.total_seconds) / static_total
                for name, r in results.items()
            }
        if plan is not None:
            doc["fault_plan"] = plan.describe()
        print(json.dumps(doc, indent=2))
        return 0
    rows = []
    for name, r in results.items():
        delta = (
            "-"
            if static_total is None or name == "static"
            else f"{100.0 * (static_total - r.total_seconds) / static_total:+.1f}%"
        )
        rows.append(
            [
                name,
                f"{r.total_seconds:.1f}",
                delta,
                r.migrations,
                r.gated,
                f"{r.migration_seconds:.1f}",
                r.refits_full,
            ]
        )
    print(
        format_table(
            [
                "strategy",
                "total s",
                "vs static",
                "migrations",
                "gated",
                "stall s",
                "refits",
            ],
            rows,
            title=workload.describe(),
        )
    )
    crashes = {n: r.crash for n, r in results.items() if r.crash is not None}
    if crashes:
        any_crash = next(iter(crashes.values()))
        print(
            f"\ncrash: {any_crash.component!r} lost {any_crash.lost_nodes} "
            f"node(s) at step {any_crash.step}; every strategy re-planned on "
            "the survivors"
        )
    return 0


def _service_from_args(
    args: argparse.Namespace, *, forced_resilience: bool = False
):
    from repro.service import AllocationService

    resilience, chaos = _resilience_from_args(args, forced=forced_resilience)
    if chaos is not None:
        _log.info(f"chaos plan: {chaos.describe()}")
    return AllocationService(
        cache_capacity=args.cache_capacity,
        ttl=args.ttl,
        warm_start=not args.no_warm_start,
        resilience=resilience,
        chaos=chaos,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve_loop

    if args.use_async:
        return _cmd_serve_async(args)
    try:
        service = _service_from_args(args)
    except ValueError as exc:
        _log.error(str(exc))
        return 2
    with _tracing(args.trace_out):
        served = serve_loop(
            service, sys.stdin, sys.stdout, deadline=args.deadline
        )
    _log.info(f"served {served} request(s)")
    print(service.metrics.render(), file=sys.stderr)
    return 0


def _cmd_serve_async(args: argparse.Namespace) -> int:
    import json

    from repro.service import (
        AdmissionPolicy,
        AsyncServingTier,
        TierConfig,
        serve_stdio,
    )

    try:
        resilience, chaos = _resilience_from_args(args)
        if chaos is not None:
            _log.warning("chaos injection is not wired into the async tier")
        common = dict(
            shards=args.shards,
            coalesce=not args.no_coalesce,
            admission=AdmissionPolicy(max_pending=args.max_pending),
            cache_capacity=args.cache_capacity,
            ttl=args.ttl,
            warm_start=not args.no_warm_start,
            resilience=resilience,
        )
        if args.worker_mode == "auto":
            config = TierConfig.for_host(**common)
        else:
            config = TierConfig(worker_mode=args.worker_mode, **common)
    except ValueError as exc:
        _log.error(str(exc))
        return 2
    tier = AsyncServingTier(config)
    with _tracing(args.trace_out):
        served = serve_stdio(
            tier,
            sys.stdin,
            sys.stdout,
            deadline=args.deadline,
            metrics_port=args.metrics_port,
        )
    _log.info(f"served {served} request(s)")
    print(json.dumps(tier.snapshot(), indent=2), file=sys.stderr)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.service import (
        BatchExecutor,
        ServiceOverloadError,
        ServiceRequestError,
        SolveRequest,
    )

    try:
        with open(args.requests) as fh:
            payloads = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        _log.error(f"cannot read {args.requests}: {exc}")
        return 2
    if not isinstance(payloads, list):
        _log.error(f"{args.requests} must hold a JSON array of requests")
        return 2
    try:
        requests = [SolveRequest.from_dict(p) for p in payloads]
    except ServiceRequestError as exc:
        _log.error(str(exc))
        return 2
    try:
        service = _service_from_args(args)
    except ValueError as exc:
        _log.error(str(exc))
        return 2
    executor = BatchExecutor(
        service,
        max_workers=args.workers,
        deadline=args.deadline,
        max_pending=args.max_pending,
    )
    try:
        responses = executor.run(requests)
    except ServiceOverloadError as exc:
        _log.error(str(exc))
        return 3
    for response in responses:
        print(json.dumps(response.to_dict()))
    if args.metrics:
        print(json.dumps({"metrics": service.metrics.snapshot()}))
    print(service.metrics.render(), file=sys.stderr)
    return 0 if all(r.ok for r in responses) else 1


def _chaos_mix(count: int, families: int) -> list:
    """A deterministic request mix: ``families`` curve sets x a budget cycle.

    Repeats are intentional — they exercise the cache and dedup paths while
    the distinct (family, budget) pairs exercise solves and warm starts.
    """
    from repro.perf.model import PerformanceModel
    from repro.service import ComponentSpec, SolveRequest

    budgets = (32, 48, 64, 96)
    requests = []
    for i in range(count):
        scale = 1.0 + 0.25 * (i % families)
        components = {
            "atm": ComponentSpec(
                model=PerformanceModel(a=1200.0 * scale, b=0.5, c=1.1, d=2.0)
            ),
            "ocn": ComponentSpec(
                model=PerformanceModel(a=800.0 * scale, b=0.3, c=1.2, d=1.0)
            ),
            "ice": ComponentSpec(
                model=PerformanceModel(a=300.0 * scale, b=0.2, c=1.0, d=0.5)
            ),
        }
        requests.append(
            SolveRequest(
                components=components,
                total_nodes=budgets[(i // families) % len(budgets)],
            )
        )
    return requests


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json
    from collections import Counter

    from repro.service import (
        BatchExecutor,
        ServiceRejectedError,
        ServiceResponse,
        ServiceTimeoutError,
    )

    if args.requests < 1:
        _log.error("--requests must be >= 1")
        return 2
    if args.families < 1:
        _log.error("--families must be >= 1")
        return 2
    # A chaos soak with nothing injected proves nothing: default to a
    # meaningful fault mix unless the caller picked their own rates.
    if not (
        args.chaos_crash_rate
        or args.chaos_hang_rate
        or args.chaos_slow_rate
        or args.chaos_corrupt_rate
    ):
        args.chaos_crash_rate = 0.15
        args.chaos_hang_rate = 0.05
        args.chaos_slow_rate = 0.10
        args.chaos_corrupt_rate = 0.05
    try:
        service = _service_from_args(args, forced_resilience=True)
    except ValueError as exc:
        _log.error(str(exc))
        return 2
    requests = _chaos_mix(args.requests, args.families)
    responses: list[ServiceResponse] = []
    if args.workers:
        executor = BatchExecutor(
            service,
            max_workers=args.workers,
            deadline=args.deadline,
            max_pending=max(args.requests, 1024),
        )
        responses = executor.run(requests)
    else:
        for request in requests:
            try:
                responses.append(
                    service.submit(request, deadline=args.deadline)
                )
            except ServiceRejectedError as exc:
                responses.append(
                    ServiceResponse.error(
                        fingerprint=exc.fingerprint,
                        status="rejected",
                        message=str(exc),
                        source="rejected",
                    )
                )
            except ServiceTimeoutError as exc:
                responses.append(
                    ServiceResponse.error(
                        fingerprint=exc.fingerprint,
                        status="time_limit",
                        message=str(exc),
                    )
                )
    sources = Counter(r.source for r in responses)
    snapshot = service.metrics.snapshot()
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            json.dump(snapshot, fh, indent=2)
        _log.info(f"metrics snapshot written to {args.metrics_out}")
    answered = len(responses)
    if args.json:
        print(
            json.dumps(
                {
                    "requests": len(requests),
                    "answered": answered,
                    "sources": dict(sources),
                    "responses": [r.to_dict() for r in responses],
                    "metrics": snapshot,
                },
                indent=2,
            )
        )
    else:
        for response in responses:
            note = ""
            if response.source == "stale":
                note = f" (age {response.staleness:.1f}s)"
            elif not response.ok:
                note = f" ({response.message})"
            print(
                f"{response.fingerprint[:12]}  {response.status:<11}"
                f"  source={response.source}{note}"
            )
        print(service.metrics.render(), file=sys.stderr)
    if answered != len(requests):
        _log.error(
            f"lost requests: {len(requests) - answered} of {len(requests)} "
            "got no response"
        )
        return 1
    _log.info(
        f"all {answered} request(s) answered; "
        f"sources: {dict(sorted(sources.items()))}"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import run_experiment

    kwargs = {} if args.seed is None else {"seed": args.seed}
    try:
        result = run_experiment(args.name, **kwargs)
    except KeyError as exc:
        _log.error(exc.args[0])
        return 2
    print(result.render())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """Benchmark, fit, and emit the Table-I MINLP as AMPL (the paper's
    production artifact, §V: 'The AMPL code in HSLB is executed remotely via
    Python script on NEOS server')."""
    from repro.cesm.app import CESMApplication
    from repro.cesm.grids import eighth_degree, one_degree
    from repro.cesm.layouts import Layout
    from repro.core.hslb import HSLBOptimizer
    from repro.experiments.paper_data import BENCHMARK_CAMPAIGN
    from repro.minlp.ampl_export import problem_to_ampl

    config = one_degree() if args.resolution == "1deg" else eighth_degree()
    app = CESMApplication(config, layout=Layout(args.layout))
    opt = HSLBOptimizer(app)
    rng = default_rng(args.seed)
    suite = opt.gather(BENCHMARK_CAMPAIGN[args.resolution], rng)
    fits = opt.fit(suite, rng)
    problem = app.formulate({k: f.model for k, f in fits.items()}, args.nodes)
    text = problem_to_ampl(problem)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"AMPL model written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_list() -> int:
    from repro.experiments import EXPERIMENTS

    for name in sorted(EXPERIMENTS):
        print(name)
    return 0


def _strip_separator(rest: list[str]) -> list[str]:
    """argparse.REMAINDER keeps a leading ``--``; drop it."""
    return rest[1:] if rest and rest[0] == "--" else rest


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import get_tracer

    if args.trace_id is not None:
        return _cmd_trace_by_id(args)
    rest = _strip_separator(args.rest)
    if not rest:
        _log.error("trace needs a subcommand, e.g. `hslb trace optimize ...`")
        return 2
    tracer = get_tracer()
    tracer.reset()
    tracer.enable()
    try:
        code = main(rest)
    finally:
        tracer.disable()
    print(tracer.render_flamegraph(), file=sys.stderr)
    return code


def _cmd_trace_by_id(args: argparse.Namespace) -> int:
    """Render one request's span tree from a JSONL trace dump."""
    from repro.obs.export import (
        assemble_trace,
        parse_trace_jsonl,
        render_flamegraph,
        render_timeline,
    )

    if not args.input:
        _log.error("trace --id needs --input FILE (a --trace-out JSONL dump)")
        return 2
    with open(args.input) as fh:
        records = parse_trace_jsonl(fh.read())
    roots = assemble_trace(records, args.trace_id)
    if not roots:
        _log.error(f"no spans for trace {args.trace_id!r} in {args.input}")
        return 1
    print(f"trace {args.trace_id} ({sum(1 for r in roots for _ in r.walk())} spans)")
    print(render_flamegraph(roots))
    print()
    print(render_timeline(roots))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import fetch_url, top

    if args.input:
        def fetch() -> str:
            with open(args.input) as fh:
                return fh.read()
    elif args.url:
        def fetch() -> str:
            return fetch_url(args.url)
    else:
        _log.error("top needs --url or --input")
        return 2
    try:
        painted = top(fetch, interval=args.interval, iterations=args.iterations)
    except KeyboardInterrupt:
        return 0
    except ValueError as exc:
        _log.error(str(exc))
        return 2
    return 0 if painted else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.export import prometheus_exposition
    from repro.obs.metrics import REGISTRY
    from repro.obs.telemetry import ensure_registered

    rest = _strip_separator(args.rest)
    if rest:
        code = main(rest)
        if code != 0:
            return code
    ensure_registered()
    sys.stdout.write(prometheus_exposition(REGISTRY))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    set_verbosity(args.verbose, args.quiet)
    if args.command == "optimize":
        return _cmd_optimize(args)
    if args.command == "fmo":
        return _cmd_fmo(args)
    if args.command == "dynlb":
        return _cmd_dynlb(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    return _cmd_list()


if __name__ == "__main__":
    raise SystemExit(main())
