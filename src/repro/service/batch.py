"""Batched solves: dedup, donor ordering, supervised fan-out, backpressure.

A batch is answered in four moves:

1. **admission** — a batch larger than ``max_pending`` is refused outright
   with :class:`ServiceOverloadError` carrying a ``retry_after`` hint; the
   caller backs off and retries (classic queue backpressure, not silent
   truncation);
2. **dedup** — equal fingerprints collapse to one solve; duplicates are
   answered from cache afterwards;
3. **donor ordering** — misses are grouped into warm-start families
   (identical but for node budget); each family with no cached member gets
   its smallest-budget request solved first, in-process, so every other
   member of the family fans out with an ``x0`` seed;
4. **fan-out** — remaining misses run on a
   :class:`~repro.service.supervisor.SupervisedWorkerPool` of single-process
   executors (``max_workers > 0``) or serially in-process
   (``max_workers == 0``, the deterministic mode tests use).

The fan-out is **resilient** when the service carries a
:class:`~repro.service.service.ResiliencePolicy`: a worker crash or hang is
contained to its slot, booked against that worker's health, and the victim
request is re-dispatched (idempotent — solves are fingerprint-seeded) with
deterministic backoff between rounds; straggler dispatches optionally get a
hedged duplicate, first answer wins; requests that exhaust their retries
walk the service's degradation ladder instead of failing the batch.  A
request that cannot even be rejected cleanly does not exist: every slot of
the input gets a response or a typed error envelope.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.minlp.solution import Status
from repro.obs.slo import SLOTracker
from repro.obs.trace import span
from repro.service.errors import (
    RestartBudgetError,
    ServiceOverloadError,
    ServiceRejectedError,
    ServiceTimeoutError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.service.request import SolveRequest
from repro.service.response import ServiceResponse
from repro.service.service import AllocationService
from repro.service.solver import SolveOutcome, solve_request, validate_outcome
from repro.service.supervisor import Dispatch, SupervisedWorkerPool, wait_any


def _pool_solve(payload: dict, x0: dict | None, deadline: float | None) -> dict:
    """Worker entry point: runs in a pool process, so wire formats only."""
    request = SolveRequest.from_dict(payload)
    return solve_request(request, x0=x0, deadline=deadline).to_dict()


class BatchExecutor:
    """Answer a batch of requests through one :class:`AllocationService`."""

    def __init__(
        self,
        service: AllocationService,
        *,
        max_workers: int = 0,
        deadline: float | None = None,
        max_pending: int = 1024,
        slo: SLOTracker | None = None,
    ) -> None:
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0 (0 = in-process)")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.service = service
        self.max_workers = max_workers
        self.deadline = deadline
        self.max_pending = max_pending
        self.slo = slo  # optional: batch outcomes feed SLO burn rates

    def run(self, requests: Sequence[SolveRequest]) -> list[ServiceResponse]:
        """Answer every request, preserving input order.

        Failed requests (deadline, infeasible model, exhausted ladder) come
        back as error responses in their slot — one bad request never
        poisons the batch.
        """
        metrics = self.service.metrics
        if len(requests) > self.max_pending:
            metrics.record_batch(len(requests))
            metrics.record_overload()
            if self.slo is not None:
                for _ in requests:
                    self.slo.record("batch", None, "shed")
            raise ServiceOverloadError(
                pending=len(requests),
                capacity=self.max_pending,
                retry_after=self._retry_after(len(requests)),
            )

        fingerprints = [r.fingerprint() for r in requests]
        unique: dict[str, SolveRequest] = {}
        for fp, req in zip(fingerprints, requests):
            unique.setdefault(fp, req)
        metrics.record_batch(len(requests), deduped=len(requests) - len(unique))

        misses = {
            fp: req for fp, req in unique.items() if fp not in self.service.cache
        }
        answered: dict[str, ServiceResponse] = {}
        if misses:
            with span(
                "batch.solve", size=len(requests), misses=len(misses)
            ):
                remaining = self._solve_donors(misses, answered)
                if self.max_workers and len(remaining) > 1:
                    self._fan_out(remaining, answered)
                else:
                    for fp, req in remaining.items():
                        answered[fp] = self._submit_safe(fp, req)

        # Resolution pass: the first occurrence of each solved miss keeps its
        # solve response; duplicates and pre-cached requests go through the
        # service so hits are accounted where they happen.
        out: list[ServiceResponse] = []
        for fp, req in zip(fingerprints, requests):
            fresh = answered.pop(fp, None)
            if fresh is not None:
                out.append(fresh)
                # Duplicates of a failed or degraded solve reuse the first
                # envelope rather than re-running a request that just died.
                if not fresh.ok or fresh.degraded:
                    answered[fp] = fresh
            elif fp in self.service.cache:
                out.append(self.service.submit(req))
            else:  # failed earlier in this batch; envelope re-used above
                out.append(self._submit_safe(fp, req))
        if self.slo is not None:
            for resp in out:
                if resp.degraded:
                    kind = "degraded"
                else:
                    kind = "ok" if resp.ok else "error"
                self.slo.record("batch", resp.latency, kind)
        return out

    # -- internals ---------------------------------------------------------

    def _retry_after(self, pending: int) -> float:
        """Back-off hint for shed work: the time to drain the excess.

        Estimated from the observed mean request latency (falling back to
        the per-request deadline, then to a conservative constant when the
        service has answered nothing yet).
        """
        mean = self.service.metrics.request_latency.mean
        if mean <= 0:
            mean = self.deadline if self.deadline is not None else 0.1
        excess = max(1, pending - self.max_pending)
        return excess * mean

    def _solve_donors(
        self,
        misses: dict[str, SolveRequest],
        answered: dict[str, ServiceResponse],
    ) -> dict[str, SolveRequest]:
        """Solve one donor per uncovered family; return the remaining misses."""
        families: dict[str, list[str]] = {}
        for fp, req in misses.items():
            families.setdefault(req.family_key(), []).append(fp)
        remaining = dict(misses)
        for key, members in families.items():
            if len(members) < 2 or self.service._families.get(key):
                continue  # singleton, or the cache already holds a donor
            donor_fp = min(members, key=lambda fp: misses[fp].total_nodes)
            answered[donor_fp] = self._submit_safe(donor_fp, misses[donor_fp])
            del remaining[donor_fp]
        return remaining

    def _submit_safe(self, fp: str, request: SolveRequest) -> ServiceResponse:
        try:
            return self.service.submit(request, deadline=self.deadline)
        except ServiceTimeoutError as exc:
            return ServiceResponse.error(
                fingerprint=fp, status=Status.TIME_LIMIT.value, message=str(exc)
            )
        except ServiceRejectedError as exc:
            return ServiceResponse.error(
                fingerprint=fp,
                status="rejected",
                message=str(exc),
                source="rejected",
            )
        except (WorkerCrashError, WorkerHangError) as exc:
            # Chaos without a resilience policy: surface the worker death as
            # a typed envelope rather than poisoning the batch.
            return ServiceResponse.error(
                fingerprint=fp, status=Status.ERROR.value, message=str(exc)
            )

    # -- supervised fan-out -------------------------------------------------

    def _fan_out(
        self,
        remaining: dict[str, SolveRequest],
        answered: dict[str, ServiceResponse],
    ) -> None:
        service = self.service
        policy = service.resilience
        attempts = policy.retry.max_attempts if policy else 1
        restart_budget = policy.restart_budget if policy else 3
        pool = SupervisedWorkerPool(
            self.max_workers,
            restart_budget=restart_budget,
            metrics=service.metrics,
        )
        # Per-fingerprint context: (request, x0, donor, last failure reason).
        donors = {
            fp: service._find_donor(req, fp) for fp, req in remaining.items()
        }
        pending = dict(remaining)
        reasons: dict[str, str] = {}
        try:
            for attempt in range(attempts):
                if not pending:
                    break
                if attempt and policy:
                    service.sleeper(policy.retry.backoff("batch", attempt))
                pending = self._fan_round(
                    pool, pending, donors, answered, reasons, attempt
                )
        finally:
            pool.shutdown()
        # Retries exhausted (or unavailable): remaining requests walk the
        # service's degradation ladder; its bottom is a typed envelope.
        for fp, req in pending.items():
            answered[fp] = self._degrade_safe(
                fp, req, reasons.get(fp, "fan-out failed")
            )

    def _fan_round(
        self,
        pool: SupervisedWorkerPool,
        pending: dict[str, SolveRequest],
        donors: dict,
        answered: dict[str, ServiceResponse],
        reasons: dict[str, str],
        attempt: int,
    ) -> dict[str, SolveRequest]:
        """Dispatch every pending request once; returns next round's misses."""
        service = self.service
        policy = service.resilience
        metrics = service.metrics
        chaos = service.chaos
        failures: dict[str, SolveRequest] = {}
        dispatches: dict[str, Dispatch] = {}
        for fp, req in pending.items():
            if service.breaker is not None and not service.breaker.allow(
                req.family_key()
            ):
                metrics.record_breaker_block()
                failures[fp] = req
                reasons[fp] = (
                    f"circuit breaker open for family {req.family_key()[:12]}"
                )
                continue
            x0, _donor = donors[fp]
            try:
                dispatches[fp] = self._dispatch(pool, req, x0, chaos, attempt)
            except (RestartBudgetError, WorkerCrashError) as exc:
                failures[fp] = req
                reasons[fp] = str(exc)
        # The solver's own wall budget enforces the deadline; the grace
        # below only covers process scheduling overhead — and turns a hung
        # worker into a typed, retryable failure instead of a stuck batch.
        if self.deadline is not None:
            grace = 2.0 * self.deadline + 5.0
            if policy:
                grace = min(grace, self.deadline + policy.hang_timeout)
        else:
            grace = policy.hang_timeout if policy else None
        for fp, dispatch in dispatches.items():
            req = pending[fp]
            try:
                payload = self._harvest(pool, dispatch, grace, fp)
                outcome = SolveOutcome.from_dict(payload)
            except (WorkerCrashError, WorkerHangError, RestartBudgetError) as exc:
                metrics.record_worker_failure(
                    "hang" if isinstance(exc, WorkerHangError) else "crash"
                )
                failures[fp] = req
                reasons[fp] = str(exc)
                continue
            if policy is not None:
                corrupt = validate_outcome(req, outcome)
                if corrupt is not None:
                    metrics.record_corruption()
                    failures[fp] = req
                    reasons[fp] = f"corrupt result: {corrupt}"
                    continue
            self._book_outcome(fp, req, outcome, donors[fp][1], answered, reasons)
        # Count retries for requests that will ride another round.
        if attempt + 1 < (policy.retry.max_attempts if policy else 1):
            for _ in failures:
                metrics.record_retry()
        return failures

    def _dispatch(
        self,
        pool: SupervisedWorkerPool,
        req: SolveRequest,
        x0: dict | None,
        chaos,
        attempt: int,
    ) -> Dispatch:
        if chaos is not None:
            from repro.faults.chaos import chaos_pool_solve

            return pool.submit(
                chaos_pool_solve, req.to_dict(), x0, self.deadline,
                chaos.to_dict(), attempt,
            )
        return pool.submit(_pool_solve, req.to_dict(), x0, self.deadline)

    def _harvest(
        self,
        pool: SupervisedWorkerPool,
        dispatch: Dispatch,
        grace: float | None,
        fp: str,
    ) -> dict:
        """Wait for one dispatch, hedging a straggler when policy allows."""
        policy = self.service.resilience
        hedge_after = policy.retry.hedge_after if policy else None
        if (
            hedge_after is None
            or grace is None
            or hedge_after >= grace
            or pool.capacity < 2
        ):
            return pool.result(dispatch, timeout=grace)
        done, _ = wait_any([dispatch.future], hedge_after)
        if done:
            return pool.result(dispatch, timeout=0)
        # Straggler: issue a duplicate dispatch; first answer wins.
        self.service.metrics.record_hedge()
        try:
            hedge = pool.submit(dispatch.fn, *dispatch.args)
        except (RestartBudgetError, WorkerCrashError):
            return pool.result(dispatch, timeout=max(0.0, grace - hedge_after))
        done, _ = wait_any(
            [dispatch.future, hedge.future], max(0.0, grace - hedge_after)
        )
        if dispatch.future.done():
            pool.forget(hedge)
            return pool.result(dispatch, timeout=0)
        if hedge.future.done():
            pool.forget(dispatch)
            return pool.result(hedge, timeout=0)
        # Both hung: reap the hedge's slot too, then surface the primary's
        # hang (result() kills and replaces the worker).
        pool.forget(hedge)
        return pool.result(dispatch, timeout=0)

    def _book_outcome(
        self,
        fp: str,
        req: SolveRequest,
        outcome: SolveOutcome,
        donor: str | None,
        answered: dict[str, ServiceResponse],
        reasons: dict[str, str],
    ) -> None:
        service = self.service
        metrics = service.metrics
        ok = outcome.status in (Status.OPTIMAL.value, Status.FEASIBLE.value)
        metrics.record_solve(
            outcome.wall_time,
            warm=outcome.warm_started,
            iterations=outcome.iterations,
            ok=ok,
        )
        if service.breaker is not None and (
            ok or outcome.status != Status.TIME_LIMIT.value
        ):
            service.breaker.record_success(req.family_key())
        if ok:
            service.admit(req, outcome)
        elif outcome.status == Status.TIME_LIMIT.value:
            metrics.record_timeout()
            if service.breaker is not None:
                service.breaker.record_failure(req.family_key())
            if service.resilience is not None:
                # A deadline miss with resilience installed still owes the
                # caller an answer: hand it to the ladder immediately.
                answered[fp] = self._degrade_safe(
                    fp, req, "worker solve exhausted its wall budget"
                )
                return
        answered[fp] = ServiceResponse.from_outcome(
            outcome, cached=False, latency=outcome.wall_time, donor=donor
        )

    def _degrade_safe(
        self, fp: str, req: SolveRequest, reason: str
    ) -> ServiceResponse:
        service = self.service
        if service.breaker is not None:
            service.breaker.record_failure(req.family_key())
        if service.resilience is None:
            return ServiceResponse.error(
                fingerprint=fp, status=Status.TIME_LIMIT.value, message=reason
            )
        try:
            return service.fallback(req, fp, reason=reason)
        except ServiceRejectedError as exc:
            return ServiceResponse.error(
                fingerprint=fp,
                status="rejected",
                message=str(exc),
                source="rejected",
            )
