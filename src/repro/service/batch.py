"""Batched solves: dedup, donor-first ordering, fan-out, backpressure.

A batch is answered in four moves:

1. **admission** — a batch larger than ``max_pending`` is refused outright
   with :class:`ServiceOverloadError`; the caller backs off and retries
   (classic queue backpressure, not silent truncation);
2. **dedup** — equal fingerprints collapse to one solve; duplicates are
   answered from cache afterwards;
3. **donor ordering** — misses are grouped into warm-start families
   (identical but for node budget); each family with no cached member gets
   its smallest-budget request solved first, in-process, so every other
   member of the family fans out with an ``x0`` seed;
4. **fan-out** — remaining misses run on a :class:`ProcessPoolExecutor`
   (``max_workers > 0``) or serially in-process (``max_workers == 0``, the
   deterministic mode tests use).  Each request carries a per-request
   ``deadline`` that caps the solver's own wall budget, so a deadline ends
   the tree search rather than orphaning a busy worker.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout

from repro.minlp.solution import Status
from repro.service.errors import ServiceOverloadError, ServiceTimeoutError
from repro.service.request import SolveRequest
from repro.service.response import ServiceResponse
from repro.service.service import AllocationService
from repro.service.solver import SolveOutcome, solve_request


def _pool_solve(payload: dict, x0: dict | None, deadline: float | None) -> dict:
    """Worker entry point: runs in a pool process, so wire formats only."""
    request = SolveRequest.from_dict(payload)
    return solve_request(request, x0=x0, deadline=deadline).to_dict()


class BatchExecutor:
    """Answer a batch of requests through one :class:`AllocationService`."""

    def __init__(
        self,
        service: AllocationService,
        *,
        max_workers: int = 0,
        deadline: float | None = None,
        max_pending: int = 1024,
    ) -> None:
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0 (0 = in-process)")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.service = service
        self.max_workers = max_workers
        self.deadline = deadline
        self.max_pending = max_pending

    def run(self, requests: Sequence[SolveRequest]) -> list[ServiceResponse]:
        """Answer every request, preserving input order.

        Failed requests (deadline, infeasible model) come back as error
        responses in their slot — one bad request never poisons the batch.
        """
        metrics = self.service.metrics
        if len(requests) > self.max_pending:
            metrics.record_batch(len(requests))
            metrics.record_overload()
            raise ServiceOverloadError(
                pending=len(requests), capacity=self.max_pending
            )

        fingerprints = [r.fingerprint() for r in requests]
        unique: dict[str, SolveRequest] = {}
        for fp, req in zip(fingerprints, requests):
            unique.setdefault(fp, req)
        metrics.record_batch(len(requests), deduped=len(requests) - len(unique))

        misses = {
            fp: req for fp, req in unique.items() if fp not in self.service.cache
        }
        answered: dict[str, ServiceResponse] = {}
        if misses:
            remaining = self._solve_donors(misses, answered)
            if self.max_workers and len(remaining) > 1:
                self._fan_out(remaining, answered)
            else:
                for fp, req in remaining.items():
                    answered[fp] = self._submit_safe(fp, req)

        # Resolution pass: the first occurrence of each solved miss keeps its
        # solve response; duplicates and pre-cached requests go through the
        # service so hits are accounted where they happen.
        out: list[ServiceResponse] = []
        for fp, req in zip(fingerprints, requests):
            fresh = answered.pop(fp, None)
            if fresh is not None:
                out.append(fresh)
                # Duplicates of a failed solve reuse the error envelope
                # rather than re-solving a request that just died.
                if not fresh.ok:
                    answered[fp] = fresh
            elif fp in self.service.cache:
                out.append(self.service.submit(req))
            else:  # failed earlier in this batch; envelope re-used above
                out.append(self._submit_safe(fp, req))
        return out

    # -- internals ---------------------------------------------------------

    def _solve_donors(
        self,
        misses: dict[str, SolveRequest],
        answered: dict[str, ServiceResponse],
    ) -> dict[str, SolveRequest]:
        """Solve one donor per uncovered family; return the remaining misses."""
        families: dict[str, list[str]] = {}
        for fp, req in misses.items():
            families.setdefault(req.family_key(), []).append(fp)
        remaining = dict(misses)
        for key, members in families.items():
            if len(members) < 2 or self.service._families.get(key):
                continue  # singleton, or the cache already holds a donor
            donor_fp = min(members, key=lambda fp: misses[fp].total_nodes)
            answered[donor_fp] = self._submit_safe(donor_fp, misses[donor_fp])
            del remaining[donor_fp]
        return remaining

    def _submit_safe(self, fp: str, request: SolveRequest) -> ServiceResponse:
        try:
            return self.service.submit(request, deadline=self.deadline)
        except ServiceTimeoutError as exc:
            return ServiceResponse.error(
                fingerprint=fp, status=Status.TIME_LIMIT.value, message=str(exc)
            )

    def _fan_out(
        self,
        remaining: dict[str, SolveRequest],
        answered: dict[str, ServiceResponse],
    ) -> None:
        metrics = self.service.metrics
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {}
            for fp, req in remaining.items():
                x0, donor = self.service._find_donor(req, fp)
                fut = pool.submit(_pool_solve, req.to_dict(), x0, self.deadline)
                futures[fp] = (fut, req, donor)
            # The solver's own wall budget enforces the deadline; the grace
            # below only covers process scheduling overhead.
            grace = None if self.deadline is None else 2.0 * self.deadline + 5.0
            for fp, (fut, req, donor) in futures.items():
                try:
                    outcome = SolveOutcome.from_dict(fut.result(timeout=grace))
                except FutureTimeout:
                    fut.cancel()
                    metrics.record_timeout()
                    answered[fp] = ServiceResponse.error(
                        fingerprint=fp,
                        status=Status.TIME_LIMIT.value,
                        message=f"worker missed its {self.deadline:.3g}s deadline",
                    )
                    continue
                ok = outcome.status in (
                    Status.OPTIMAL.value, Status.FEASIBLE.value
                )
                metrics.record_solve(
                    outcome.wall_time,
                    warm=outcome.warm_started,
                    iterations=outcome.iterations,
                    ok=ok,
                )
                if ok:
                    self.service.admit(req, outcome)
                elif outcome.status == Status.TIME_LIMIT.value:
                    metrics.record_timeout()
                answered[fp] = ServiceResponse.from_outcome(
                    outcome, cached=False, latency=outcome.wall_time, donor=donor
                )
