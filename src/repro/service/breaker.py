"""Per-family circuit breaker: stop hammering a fingerprint family that
keeps killing solves.

Requests in one *family* (same curves/objective/options, any node budget —
see :meth:`repro.service.request.SolveRequest.family_key`) hit the same
corner of the solver; when that corner reliably crashes or times out, every
further exact attempt burns a worker and a deadline for nothing.  The
breaker is the classic three-state machine, per family key:

* **closed** — normal operation; ``failure_threshold`` *consecutive* system
  failures open it (a single success resets the streak);
* **open** — exact solves are short-circuited straight to the degradation
  ladder for ``reset_timeout`` seconds (injectable clock);
* **half-open** — after the timeout, up to ``probe_limit`` trial requests
  pass through; ``successes_to_close`` probe successes close the breaker,
  one probe failure re-opens it (with a fresh timeout).

Only system failures (crash, hang, timeout, corruption) count; a model
that is legitimately infeasible is an *answer*, not a breaker event.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.obs.metrics import REGISTRY

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Thresholds for the per-family state machine."""

    failure_threshold: int = 3
    reset_timeout: float = 30.0
    probe_limit: int = 1
    successes_to_close: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if self.probe_limit < 1:
            raise ValueError("probe_limit must be >= 1")
        if not (1 <= self.successes_to_close <= self.probe_limit):
            raise ValueError("need 1 <= successes_to_close <= probe_limit")


@dataclass
class _FamilyState:
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    probes_issued: int = 0
    probe_successes: int = 0
    opens: int = 0  # lifetime count, for snapshots/tests


class CircuitBreaker:
    """Family-keyed breaker with an injectable clock (tests drive time)."""

    def __init__(
        self,
        policy: BreakerPolicy | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self.clock = clock
        self._families: dict[str, _FamilyState] = {}

    def _state(self, key: str) -> _FamilyState:
        return self._families.setdefault(key, _FamilyState())

    def _transition(self, key: str, st: _FamilyState, to: str) -> None:
        st.state = to
        REGISTRY.counter("service_breaker_transitions_total").inc(to=to)
        if to == OPEN:
            st.opens += 1
            st.opened_at = self.clock()
            st.probes_issued = 0
            st.probe_successes = 0
        elif to == HALF_OPEN:
            st.probes_issued = 0
            st.probe_successes = 0
        elif to == CLOSED:
            st.consecutive_failures = 0

    # -- the three questions ------------------------------------------------

    def allow(self, key: str) -> bool:
        """May an exact solve for this family proceed right now?

        In the half-open state each ``True`` answer *consumes* one probe
        slot, so callers must follow through with ``record_success`` or
        ``record_failure`` for the state machine to advance.
        """
        st = self._state(key)
        if st.state == CLOSED:
            return True
        if st.state == OPEN:
            if self.clock() - st.opened_at < self.policy.reset_timeout:
                return False
            self._transition(key, st, HALF_OPEN)
        if st.probes_issued >= self.policy.probe_limit:
            return False
        st.probes_issued += 1
        return True

    def record_success(self, key: str) -> None:
        st = self._state(key)
        if st.state == HALF_OPEN:
            st.probe_successes += 1
            if st.probe_successes >= self.policy.successes_to_close:
                self._transition(key, st, CLOSED)
            return
        st.consecutive_failures = 0

    def record_failure(self, key: str) -> None:
        st = self._state(key)
        if st.state == HALF_OPEN:
            self._transition(key, st, OPEN)
            return
        st.consecutive_failures += 1
        if st.state == CLOSED and (
            st.consecutive_failures >= self.policy.failure_threshold
        ):
            self._transition(key, st, OPEN)

    # -- introspection ------------------------------------------------------

    def state(self, key: str) -> str:
        """Current state name, advancing open -> half-open lazily on read."""
        st = self._state(key)
        if st.state == OPEN and (
            self.clock() - st.opened_at >= self.policy.reset_timeout
        ):
            return HALF_OPEN
        return st.state

    def snapshot(self) -> dict:
        return {
            key: {
                "state": self.state(key),
                "consecutive_failures": st.consecutive_failures,
                "opens": st.opens,
            }
            for key, st in sorted(self._families.items())
        }


__all__ = ["BreakerPolicy", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]
