"""Retry and hedging policy: idempotent re-dispatch with deterministic jitter.

HSLB solves are idempotent — fingerprint-seeded and side-effect free — so a
crashed or hung solve can simply be dispatched again.  Two knobs govern how:

* **retries** — up to ``max_attempts`` tries per request, separated by
  capped exponential backoff.  The jitter is *deterministic*: it is drawn
  from a stable hash of ``(key, attempt)``, never from wall-clock entropy,
  so a seeded chaos run replays bit-identically (the same property
  :class:`repro.faults.plan.FaultPlan` pins for injection draws).
* **hedging** — for p99 stragglers, a duplicate dispatch is issued when the
  primary has not answered after ``hedge_after`` seconds and the first
  result wins.  Hedging only fires on pools with a spare worker; with
  inline (deterministic) executors futures complete at submit time, so
  hedges never launch and determinism is preserved.

The module is policy only; the supervised pool and the service own the
dispatch mechanics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def _unit(key: str, attempt: int) -> float:
    """Stable uniform-ish draw in [0, 1) keyed by (key, attempt)."""
    digest = hashlib.blake2b(
        f"{key}\x1f{attempt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving a request to the degradation ladder.

    ``max_attempts``
        Total tries (1 = no retries).  Only *system* failures — worker
        crashes, hangs, corrupted results — are retried; a deterministic
        solver outcome (infeasible, wall-budget exhausted) never is,
        because re-running a deterministic failure reproduces it.
    ``base_delay`` / ``max_delay`` / ``jitter``
        Backoff before attempt ``k`` is ``min(max_delay, base_delay *
        2**(k-1))``, shrunk by up to ``jitter`` (fraction) of itself via the
        deterministic draw.  Jitter only ever shortens the wait, so
        ``max_delay`` is a hard cap.
    ``hedge_after``
        Seconds to wait on the primary dispatch before issuing a duplicate
        (``None`` disables hedging).
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    max_delay: float = 1.0
    jitter: float = 0.5
    hedge_after: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be in [0, 1]")
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ValueError("hedge_after must be positive (or None)")

    def backoff(self, key: str, attempt: int) -> float:
        """Deterministic pre-attempt delay in seconds (attempt >= 1)."""
        if attempt < 1:
            return 0.0
        base = min(self.max_delay, self.base_delay * 2 ** (attempt - 1))
        if not self.jitter:
            return base
        return base * (1.0 - self.jitter * _unit(key, attempt))

    @property
    def retries(self) -> int:
        return self.max_attempts - 1


__all__ = ["RetryPolicy"]
