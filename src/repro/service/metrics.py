"""Service observability: counters, latency histograms, derived ratios.

Prometheus-style fixed-bucket histograms (cumulative ``le`` counts) rather
than reservoirs: snapshots are cheap, mergeable, and deterministic.  The
headline derived numbers are the **cache hit rate** and the **warm-start
speedup ratio** — mean solver iterations of cold solves over warm ones,
the quantity the acceptance tests pin.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.obs.metrics import REGISTRY
from repro.util.tables import format_table

#: Log-spaced latency bucket upper bounds, in seconds.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Raw observations retained for exact quantiles.  Tail quantiles (p999)
#: on fewer samples than this are *exact*; beyond it the histogram falls
#: back to bucket interpolation.  2048 floats is ~16 KiB per histogram.
EXACT_SAMPLE_CAP = 2048


def exact_quantile(samples: list[float], q: float) -> float:
    """Linear-interpolated order statistic of ``samples`` (must be sorted)."""
    if not samples:
        return 0.0
    pos = q * (len(samples) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(samples) - 1)
    return samples[lo] + (samples[hi] - samples[lo]) * (pos - lo)


@dataclass
class LatencyHistogram:
    """Fixed-bucket histogram of seconds, with count/sum like Prometheus.

    Quantiles are **exact** while every observation is still retained (up
    to :data:`EXACT_SAMPLE_CAP` raw samples — small-sample p999 is an order
    statistic, not a bucket bound) and linearly interpolated within the
    covering bucket once the reservoir overflows.
    """

    buckets: tuple[float, ...] = LATENCY_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0
    sample_cap: int = EXACT_SAMPLE_CAP

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # +1: overflow
        self._samples: list[float] = []

    def observe(self, seconds: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, seconds)] += 1
        self.total += 1
        self.sum += seconds
        if len(self._samples) < self.sample_cap:
            self._samples.append(seconds)

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0
        self.sum = 0.0
        self._samples = []

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Quantile estimate: exact on small samples, interpolated after.

        While every observation is retained (``total <= sample_cap``) this
        is the interpolated order statistic of the raw samples.  Once the
        reservoir has overflowed, it interpolates linearly inside the
        bucket covering the target rank — a strictly better estimate than
        the bucket's upper bound, and identical at the bucket boundaries.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        if self.total <= len(self._samples):
            return exact_quantile(sorted(self._samples), q)
        target = q * self.total
        seen = 0
        lower = 0.0
        for bound, count in zip(self.buckets, self.counts):
            if seen + count >= target and count:
                fraction = (target - seen) / count
                return lower + (bound - lower) * fraction
            seen += count
            lower = bound
        return float("inf")  # landed in the overflow bucket

    def snapshot(self) -> dict:
        return {
            "count": self.total,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
            "buckets": {
                str(b): c for b, c in zip(self.buckets, self.counts) if c
            },
        }


@dataclass
class ServiceMetrics:
    """Everything the service counts, plus the derived headline ratios."""

    requests: int = 0
    cache_hits: int = 0
    cold_solves: int = 0
    warm_solves: int = 0
    solve_errors: int = 0
    timeouts: int = 0
    overloads: int = 0
    batch_requests: int = 0
    batch_deduped: int = 0
    request_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    cold_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    warm_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    cold_iterations: int = 0
    warm_iterations: int = 0
    # -- resilience accounting (supervisor / retry / breaker / ladder) -----
    retries: int = 0
    hedges: int = 0
    worker_crashes: int = 0
    worker_hangs: int = 0
    worker_restarts: int = 0
    corruptions: int = 0
    degraded_stale: int = 0
    degraded_greedy: int = 0
    rejections: int = 0
    breaker_blocks: int = 0

    @property
    def misses(self) -> int:
        return self.cold_solves + self.warm_solves

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def warm_start_speedup(self) -> float:
        """Mean cold iterations / mean warm iterations (1.0 until both seen)."""
        if not (self.cold_solves and self.warm_solves):
            return 1.0
        cold = self.cold_iterations / self.cold_solves
        warm = self.warm_iterations / self.warm_solves
        return cold / warm if warm else float("inf")

    def record_hit(self, latency: float) -> None:
        self.requests += 1
        self.cache_hits += 1
        self.request_latency.observe(latency)
        REGISTRY.counter("service_requests_total").inc(outcome="hit")
        REGISTRY.histogram("service_request_seconds").observe(latency)

    def record_solve(
        self, latency: float, *, warm: bool, iterations: int, ok: bool
    ) -> None:
        self.requests += 1
        self.request_latency.observe(latency)
        REGISTRY.histogram("service_request_seconds").observe(latency)
        if not ok:
            self.solve_errors += 1
            REGISTRY.counter("service_requests_total").inc(outcome="error")
            return
        if warm:
            self.warm_solves += 1
            self.warm_iterations += iterations
            self.warm_latency.observe(latency)
            REGISTRY.counter("service_requests_total").inc(outcome="warm")
        else:
            self.cold_solves += 1
            self.cold_iterations += iterations
            self.cold_latency.observe(latency)
            REGISTRY.counter("service_requests_total").inc(outcome="cold")

    def record_timeout(self) -> None:
        self.timeouts += 1
        REGISTRY.counter("service_timeouts_total").inc()

    def record_retry(self) -> None:
        self.retries += 1
        REGISTRY.counter("service_retries_total").inc()

    def record_hedge(self) -> None:
        self.hedges += 1
        REGISTRY.counter("service_hedges_total").inc()

    def record_worker_failure(self, kind: str) -> None:
        """One worker death booked by the supervised pool (crash or hang).

        The ``service_worker_failures_total`` registry counter is bumped by
        the pool itself (it fires even on metrics-less pools); this method
        only maintains the service-local mirror.
        """
        if kind == "hang":
            self.worker_hangs += 1
        else:
            self.worker_crashes += 1

    def record_worker_restart(self) -> None:
        self.worker_restarts += 1

    def record_corruption(self) -> None:
        self.corruptions += 1
        REGISTRY.counter("service_corruptions_total").inc()

    def record_degraded(self, mode: str, latency: float) -> None:
        """A request answered by a ladder rung below exact (stale/greedy)."""
        self.requests += 1
        self.request_latency.observe(latency)
        if mode == "stale":
            self.degraded_stale += 1
        elif mode == "greedy":
            self.degraded_greedy += 1
        else:
            raise ValueError(f"unknown degraded mode {mode!r}")
        REGISTRY.counter("service_requests_total").inc(outcome=mode)
        REGISTRY.counter("service_degraded_total").inc(mode=mode)
        REGISTRY.histogram("service_request_seconds").observe(latency)

    def record_rejection(self, latency: float) -> None:
        """The ladder's explicit bottom: a typed refusal."""
        self.requests += 1
        self.rejections += 1
        self.request_latency.observe(latency)
        REGISTRY.counter("service_requests_total").inc(outcome="rejected")
        REGISTRY.counter("service_rejections_total").inc()
        REGISTRY.histogram("service_request_seconds").observe(latency)

    def record_breaker_block(self) -> None:
        self.breaker_blocks += 1
        REGISTRY.counter("service_breaker_blocks_total").inc()

    def record_overload(self) -> None:
        self.overloads += 1
        REGISTRY.counter("service_overloads_total").inc()

    def record_batch(self, requests: int, *, deduped: int = 0) -> None:
        self.batch_requests += requests
        self.batch_deduped += deduped
        REGISTRY.counter("service_batch_requests_total").inc(requests)
        if deduped:
            REGISTRY.counter("service_batch_deduped_total").inc(deduped)

    def reset(self) -> None:
        """Zero every counter and histogram (the registry mirror is global
        and keeps accumulating; reset that separately if needed)."""
        self.requests = 0
        self.cache_hits = 0
        self.cold_solves = 0
        self.warm_solves = 0
        self.solve_errors = 0
        self.timeouts = 0
        self.overloads = 0
        self.batch_requests = 0
        self.batch_deduped = 0
        self.cold_iterations = 0
        self.warm_iterations = 0
        self.retries = 0
        self.hedges = 0
        self.worker_crashes = 0
        self.worker_hangs = 0
        self.worker_restarts = 0
        self.corruptions = 0
        self.degraded_stale = 0
        self.degraded_greedy = 0
        self.rejections = 0
        self.breaker_blocks = 0
        self.request_latency.reset()
        self.cold_latency.reset()
        self.warm_latency.reset()

    def snapshot(self) -> dict:
        """One structured, JSON-ready view of every counter and histogram."""
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "cache_misses": self.misses,
            "hit_rate": self.hit_rate,
            "cold_solves": self.cold_solves,
            "warm_solves": self.warm_solves,
            "solve_errors": self.solve_errors,
            "timeouts": self.timeouts,
            "overloads": self.overloads,
            "batch_requests": self.batch_requests,
            "batch_deduped": self.batch_deduped,
            "warm_start_speedup": self.warm_start_speedup,
            "latency": self.request_latency.snapshot(),
            "cold_latency": self.cold_latency.snapshot(),
            "warm_latency": self.warm_latency.snapshot(),
            "resilience": {
                "retries": self.retries,
                "hedges": self.hedges,
                "worker_crashes": self.worker_crashes,
                "worker_hangs": self.worker_hangs,
                "worker_restarts": self.worker_restarts,
                "corruptions": self.corruptions,
                "degraded_stale": self.degraded_stale,
                "degraded_greedy": self.degraded_greedy,
                "rejections": self.rejections,
                "breaker_blocks": self.breaker_blocks,
            },
        }

    def render(self) -> str:
        """Human-readable summary table (printed by the CLI)."""
        snap = self.snapshot()
        rows = [
            ["requests", snap["requests"]],
            ["cache hits", snap["cache_hits"]],
            ["hit rate", f"{snap['hit_rate']:.1%}"],
            ["cold solves", snap["cold_solves"]],
            ["warm solves", snap["warm_solves"]],
            ["errors / timeouts / overloads",
             f"{snap['solve_errors']} / {snap['timeouts']} / {snap['overloads']}"],
            ["retries / hedges",
             f"{self.retries} / {self.hedges}"],
            ["worker crashes / hangs / restarts",
             f"{self.worker_crashes} / {self.worker_hangs} / {self.worker_restarts}"],
            ["degraded stale / greedy / rejected",
             f"{self.degraded_stale} / {self.degraded_greedy} / {self.rejections}"],
            ["warm-start speedup", f"{snap['warm_start_speedup']:.2f}x"],
            ["mean latency", f"{self.request_latency.mean * 1e3:.2f} ms"],
            ["p95 latency", f"{self.request_latency.quantile(0.95) * 1e3:.2f} ms"],
        ]
        return format_table(["metric", "value"], rows, title="allocation service")
