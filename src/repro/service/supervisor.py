"""Supervised worker pool: per-worker health, crash detection, replacement.

The batch executor used to hand its fan-out to one shared
:class:`~concurrent.futures.ProcessPoolExecutor`; one worker dying took the
whole pool (and every in-flight future) with it.  The supervisor instead
gives each worker its own single-process executor — a **slot** — so

* a crash (``BrokenProcessPool``) is contained to the slot that died and is
  surfaced as a typed :class:`WorkerCrashError` for *that* request only;
* a hang (harvest timeout) gets the slot's process killed and surfaces as
  :class:`WorkerHangError` — the stuck request is re-dispatchable, the
  worker is not left orphaned;
* the dead slot is **replaced** (a fresh executor) under a pool-wide
  ``restart_budget``; when the budget is gone the slot retires, and when
  every slot has retired :class:`RestartBudgetError` tells the caller to
  degrade instead of dispatch.

Slots are picked least-inflight-first, so replacement workers rejoin the
rotation immediately.  An :class:`InlineExecutor` factory runs tasks
synchronously in-process — the deterministic mode the seeded chaos suite
uses, where injected faults arrive as exceptions rather than dead processes.
"""

from __future__ import annotations

from collections.abc import Callable
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeout,
)
from dataclasses import dataclass, field

from repro.obs.metrics import REGISTRY
from repro.obs.trace import get_tracer, run_traced_child
from repro.service.errors import (
    RestartBudgetError,
    WorkerCrashError,
    WorkerHangError,
)

_TRACED_MARKER = "__hslb_traced__"


def _traced_call(context: dict, fn: Callable, args: tuple) -> dict:
    """Worker-side wrapper: run ``fn(*args)`` under a shipped trace context.

    Returns a marker envelope carrying the task's value plus the spans the
    worker recorded, for :meth:`SupervisedWorkerPool.result` to unwrap and
    graft.  Module-level so it pickles into pool processes.
    """
    value, spans = run_traced_child(context, lambda: fn(*args))
    return {_TRACED_MARKER: True, "value": value, "spans": spans}


class InlineExecutor:
    """Executor-shaped synchronous runner (tasks run at ``submit`` time).

    Crash/hang faults arrive as exceptions raised by the task itself (the
    chaos harness raises :class:`WorkerCrashError`/:class:`WorkerHangError`),
    which the pool books against the slot exactly like a real process death.
    """

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 — forwarded via the future
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        pass


@dataclass
class WorkerHealth:
    """Lifetime accounting for one worker slot (survives replacement)."""

    worker_id: int
    dispatched: int = 0
    completed: int = 0
    crashes: int = 0
    hangs: int = 0
    restarts: int = 0
    consecutive_failures: int = 0

    def as_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
        }


@dataclass
class _Slot:
    worker_id: int
    executor: object
    health: WorkerHealth
    inflight: int = 0
    retired: bool = False
    broken: bool = False  # a forgotten future died; replace before reuse


@dataclass
class Dispatch:
    """One submitted task: the slot it landed on plus its future.

    ``fn``/``args`` are kept so retry and hedging policies can re-dispatch
    the identical task without the caller re-plumbing its arguments.
    """

    slot: _Slot = field(repr=False)
    future: Future = field(repr=False)
    fn: Callable = field(repr=False)
    args: tuple = ()

    @property
    def worker_id(self) -> int:
        return self.slot.worker_id


def _kill_executor(executor: object) -> None:
    """Stop an executor *now*, terminating its processes if it has any."""
    processes = getattr(executor, "_processes", None)
    if processes:
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except (OSError, ValueError):
                pass  # already gone
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # executors predating cancel_futures
        executor.shutdown(wait=False)


class SupervisedWorkerPool:
    """A crash-isolating pool of single-worker executors.

    ``factory`` builds one worker's executor; the default is a real
    one-process :class:`ProcessPoolExecutor`.  ``metrics`` (a
    :class:`repro.service.metrics.ServiceMetrics`) receives worker-failure
    and restart events when provided; the ``service_*`` registry counters
    are bumped either way.
    """

    #: Exceptions that mean "the worker died" rather than "the task failed".
    CRASH_EXCEPTIONS = (BrokenExecutor, WorkerCrashError)

    def __init__(
        self,
        max_workers: int = 1,
        *,
        restart_budget: int = 3,
        factory: Callable[[], object] | None = None,
        metrics: object | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if restart_budget < 0:
            raise ValueError("restart_budget must be >= 0")
        self.restart_budget = restart_budget
        self.restarts_used = 0
        self.metrics = metrics
        self._factory = factory or (lambda: ProcessPoolExecutor(max_workers=1))
        self._slots = [
            _Slot(i, self._factory(), WorkerHealth(i)) for i in range(max_workers)
        ]

    @classmethod
    def inline(cls, max_workers: int = 1, **kwargs) -> "SupervisedWorkerPool":
        """A deterministic in-process pool (tasks run at submit time)."""
        return cls(max_workers, factory=InlineExecutor, **kwargs)

    # -- dispatch ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Slots still able to take work (live or replaceable)."""
        return sum(1 for s in self._slots if not s.retired)

    def submit(self, fn: Callable, *args) -> Dispatch:
        """Run ``fn(*args)`` on the least-loaded healthy worker.

        With tracing enabled, the call is transparently wrapped so the
        worker records its spans under the caller's current trace context
        and ships them back; hedged re-dispatches (``Dispatch.fn``/
        ``args``) re-use the wrapped form, so duplicates trace too.
        """
        tracer = get_tracer()
        if tracer.enabled:
            context = tracer.current_context()
            if context is not None:
                fn, args = _traced_call, (context.to_dict(), fn, args)
        slot = self._pick()
        slot.health.dispatched += 1
        slot.inflight += 1
        try:
            future = slot.executor.submit(fn, *args)
        except (RuntimeError, BrokenExecutor) as exc:
            # The executor died between tasks; replace it and try once more.
            slot.inflight -= 1
            self._book_failure(slot, "crash")
            self._replace(slot)
            if slot.retired:
                raise WorkerCrashError(
                    worker_id=slot.worker_id, detail=str(exc)
                ) from exc
            slot.inflight += 1
            future = slot.executor.submit(fn, *args)
        return Dispatch(slot, future, fn, args)

    def result(self, dispatch: Dispatch, timeout: float | None = None):
        """Harvest one dispatch; books health and replaces dead workers.

        Raises :class:`WorkerHangError` when the future misses ``timeout``
        (the slot's process is killed and replaced) and
        :class:`WorkerCrashError` when the worker died mid-task.  Any other
        exception is the *task's* and propagates unchanged.
        """
        slot = dispatch.slot
        try:
            value = dispatch.future.result(timeout=timeout)
        except FutureTimeout:
            slot.inflight -= 1
            self._book_failure(slot, "hang")
            self._replace(slot)
            raise WorkerHangError(
                worker_id=slot.worker_id, timeout=timeout
            ) from None
        except WorkerHangError:
            # Simulated hang (inline chaos): same bookkeeping as a real one.
            slot.inflight -= 1
            self._book_failure(slot, "hang")
            self._replace(slot)
            raise
        except self.CRASH_EXCEPTIONS as exc:
            slot.inflight -= 1
            self._book_failure(slot, "crash")
            self._replace(slot)
            if isinstance(exc, WorkerCrashError):
                raise
            raise WorkerCrashError(
                worker_id=slot.worker_id, detail=str(exc)
            ) from exc
        slot.inflight -= 1
        slot.health.completed += 1
        slot.health.consecutive_failures = 0
        if isinstance(value, dict) and value.get(_TRACED_MARKER):
            tracer = get_tracer()
            spans = value.get("spans")
            if spans and tracer.enabled:
                tracer.attach_remote(spans, anchor=tracer.current())
            value = value["value"]
        return value

    def forget(self, dispatch: Dispatch) -> None:
        """Abandon a dispatch (hedging loser): release the slot when done."""
        slot = dispatch.slot

        def _done(future: Future) -> None:
            slot.inflight = max(0, slot.inflight - 1)
            exc = future.exception()
            if isinstance(exc, self.CRASH_EXCEPTIONS):
                slot.broken = True  # replaced lazily on next pick

        dispatch.future.add_done_callback(_done)

    # -- supervision -------------------------------------------------------

    def _pick(self) -> _Slot:
        candidates = []
        for slot in self._slots:
            if slot.retired:
                continue
            if slot.broken:
                self._book_failure(slot, "crash")
                self._replace(slot)
                if slot.retired:
                    continue
            candidates.append(slot)
        if not candidates:
            raise RestartBudgetError(budget=self.restart_budget)
        return min(candidates, key=lambda s: (s.inflight, s.worker_id))

    def _book_failure(self, slot: _Slot, kind: str) -> None:
        if kind == "hang":
            slot.health.hangs += 1
        else:
            slot.health.crashes += 1
        slot.health.consecutive_failures += 1
        REGISTRY.counter("service_worker_failures_total").inc(kind=kind)
        if self.metrics is not None:
            self.metrics.record_worker_failure(kind)

    def _replace(self, slot: _Slot) -> None:
        """Kill the slot's executor and install a fresh one, budget allowing."""
        _kill_executor(slot.executor)
        slot.broken = False
        if self.restarts_used >= self.restart_budget:
            slot.retired = True
            return
        self.restarts_used += 1
        slot.executor = self._factory()
        slot.health.restarts += 1
        REGISTRY.counter("service_worker_restarts_total").inc()
        if self.metrics is not None:
            self.metrics.record_worker_restart()

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "workers": [s.health.as_dict() for s in self._slots],
            "retired": sum(1 for s in self._slots if s.retired),
            "restarts_used": self.restarts_used,
            "restart_budget": self.restart_budget,
        }

    def shutdown(self) -> None:
        for slot in self._slots:
            _kill_executor(slot.executor)
            slot.retired = True

    def __enter__(self) -> "SupervisedWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def wait_any(
    futures: list[Future], timeout: float | None
) -> tuple[set[Future], set[Future]]:
    """``concurrent.futures.wait(FIRST_COMPLETED)`` with a stable import."""
    from concurrent.futures import FIRST_COMPLETED, wait

    done, pending = wait(futures, timeout=timeout, return_when=FIRST_COMPLETED)
    return done, pending


def sleep_until_done(future: Future, timeout: float | None) -> bool:
    """True when ``future`` completes within ``timeout`` (no exceptions)."""
    if timeout is None:
        future.exception()
        return True
    done, _ = wait_any([future], timeout)
    return bool(done)


__all__ = [
    "Dispatch",
    "InlineExecutor",
    "SupervisedWorkerPool",
    "WorkerHealth",
    "sleep_until_done",
    "wait_any",
]
