"""The service's answer envelope: allocation plus provenance.

``cached``/``warm_started``/``donor`` tell the caller *how* the answer was
produced — the service analogue of :class:`repro.core.hslb.SolverProvenance`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minlp.solution import Status
from repro.service.solver import SolveOutcome


@dataclass(frozen=True)
class ServiceResponse:
    """One answered request, with full provenance."""

    fingerprint: str
    allocation: dict[str, int]
    objective: float
    status: str
    cached: bool
    warm_started: bool
    donor: str | None  # fingerprint of the warm-start donor, if any
    iterations: int
    latency: float  # seconds spent answering, queue to response
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.status in (Status.OPTIMAL.value, Status.FEASIBLE.value)

    @classmethod
    def from_outcome(
        cls,
        outcome: SolveOutcome,
        *,
        cached: bool,
        latency: float,
        donor: str | None = None,
    ) -> "ServiceResponse":
        return cls(
            fingerprint=outcome.fingerprint,
            allocation=dict(outcome.allocation),
            objective=outcome.objective,
            status=outcome.status,
            cached=cached,
            warm_started=outcome.warm_started,
            donor=donor,
            iterations=outcome.iterations,
            latency=latency,
            message=outcome.message,
        )

    @classmethod
    def error(cls, *, fingerprint: str, status: str, message: str) -> "ServiceResponse":
        """A failed request (timeout, overload) as a response envelope."""
        return cls(
            fingerprint=fingerprint,
            allocation={},
            objective=float("nan"),
            status=status,
            cached=False,
            warm_started=False,
            donor=None,
            iterations=0,
            latency=0.0,
            message=message,
        )

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "allocation": dict(self.allocation),
            "objective": self.objective,
            "status": self.status,
            "cached": self.cached,
            "warm_started": self.warm_started,
            "donor": self.donor,
            "iterations": self.iterations,
            "latency": self.latency,
            "message": self.message,
        }
