"""The service's answer envelope: allocation plus provenance.

``cached``/``warm_started``/``donor`` tell the caller *how* the answer was
produced — the service analogue of :class:`repro.core.hslb.SolverProvenance`
— and ``source`` records which rung of the degradation ladder answered:

* ``"exact"``  — a fresh solve finished normally;
* ``"cache"``  — a live cache hit (bit-identical to the exact answer);
* ``"stale"``  — a cache entry past its TTL, served under bounded
  staleness (``staleness`` carries its age in seconds);
* ``"greedy"`` — the polynomial-time approximate fallback;
* ``"rejected"`` — no rung could answer; a typed refusal envelope.

Every response is explicit about its rung, so a caller (or a metrics
scrape) can always distinguish a first-class answer from a degraded one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minlp.solution import Status
from repro.service.solver import SolveOutcome

#: Degradation rungs, best to worst.
SOURCES = ("exact", "cache", "stale", "greedy", "rejected")


@dataclass(frozen=True)
class ServiceResponse:
    """One answered request, with full provenance."""

    fingerprint: str
    allocation: dict[str, int]
    objective: float
    status: str
    cached: bool
    warm_started: bool
    donor: str | None  # fingerprint of the warm-start donor, if any
    iterations: int
    latency: float  # seconds spent answering, queue to response
    message: str = ""
    source: str = "exact"  # which ladder rung answered (see SOURCES)
    staleness: float = 0.0  # age in seconds of a stale-served answer
    trace_id: str = ""  # the request's trace, when tracing was enabled

    def __post_init__(self) -> None:
        if self.source not in SOURCES:
            raise ValueError(f"unknown response source {self.source!r}")

    @property
    def ok(self) -> bool:
        return self.status in (Status.OPTIMAL.value, Status.FEASIBLE.value)

    @property
    def degraded(self) -> bool:
        """True when any rung below exact/cache produced this answer."""
        return self.source in ("stale", "greedy", "rejected")

    @classmethod
    def from_outcome(
        cls,
        outcome: SolveOutcome,
        *,
        cached: bool,
        latency: float,
        donor: str | None = None,
        source: str | None = None,
        staleness: float = 0.0,
    ) -> "ServiceResponse":
        return cls(
            fingerprint=outcome.fingerprint,
            allocation=dict(outcome.allocation),
            objective=outcome.objective,
            status=outcome.status,
            cached=cached,
            warm_started=outcome.warm_started,
            donor=donor,
            iterations=outcome.iterations,
            latency=latency,
            message=outcome.message,
            source=source or ("cache" if cached else "exact"),
            staleness=staleness,
        )

    @classmethod
    def error(
        cls,
        *,
        fingerprint: str,
        status: str,
        message: str,
        source: str = "exact",
        latency: float = 0.0,
    ) -> "ServiceResponse":
        """A failed request (timeout, overload, rejection) as an envelope."""
        return cls(
            fingerprint=fingerprint,
            allocation={},
            objective=float("nan"),
            status=status,
            cached=False,
            warm_started=False,
            donor=None,
            iterations=0,
            latency=latency,
            message=message,
            source=source,
        )

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "allocation": dict(self.allocation),
            "objective": self.objective,
            "status": self.status,
            "cached": self.cached,
            "warm_started": self.warm_started,
            "donor": self.donor,
            "iterations": self.iterations,
            "latency": self.latency,
            "message": self.message,
            "source": self.source,
            "staleness": self.staleness,
            "trace_id": self.trace_id,
        }
