"""Allocation-as-a-service: the HSLB optimizer as a query engine.

The pipeline in :mod:`repro.core.hslb` answers one question per call.  This
subsystem turns it into a service for heavy allocation traffic — many users
asking "how do I split N nodes across these components?" for overlapping
curves and budgets — by exploiting the fact that HSLB is *static*: a solve
depends only on its canonical request, so answers cache perfectly and
neighboring solves warm-start each other.

Layers (each its own module, composable in isolation):

* :mod:`~repro.service.request`   — canonicalization + fingerprinting;
* :mod:`~repro.service.cache`     — LRU/TTL solution cache with accounting;
* :mod:`~repro.service.solver`    — the pure fingerprint-seeded solve;
* :mod:`~repro.service.service`   — cache + warm-start pool + metrics;
* :mod:`~repro.service.batch`     — dedup, donor ordering, process fan-out,
  deadlines, admission backpressure;
* :mod:`~repro.service.server`    — the ``repro serve`` JSONL loop;
* :mod:`~repro.service.metrics`   — counters/histograms and their snapshot;
* :mod:`~repro.service.errors`    — typed failures (timeout, overload).
"""

from repro.service.batch import BatchExecutor
from repro.service.cache import CacheStats, SolutionCache
from repro.service.errors import (
    ServiceError,
    ServiceOverloadError,
    ServiceRequestError,
    ServiceTimeoutError,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.request import ComponentSpec, SolveRequest
from repro.service.response import ServiceResponse
from repro.service.server import serve_loop
from repro.service.service import AllocationService
from repro.service.solver import SolveOutcome, solve_request

__all__ = [
    "AllocationService",
    "BatchExecutor",
    "CacheStats",
    "ComponentSpec",
    "LatencyHistogram",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadError",
    "ServiceRequestError",
    "ServiceResponse",
    "ServiceTimeoutError",
    "SolutionCache",
    "SolveOutcome",
    "SolveRequest",
    "serve_loop",
    "solve_request",
]
