"""Allocation-as-a-service: the HSLB optimizer as a query engine.

The pipeline in :mod:`repro.core.hslb` answers one question per call.  This
subsystem turns it into a service for heavy allocation traffic — many users
asking "how do I split N nodes across these components?" for overlapping
curves and budgets — by exploiting the fact that HSLB is *static*: a solve
depends only on its canonical request, so answers cache perfectly and
neighboring solves warm-start each other.

Layers (each its own module, composable in isolation):

* :mod:`~repro.service.request`    — canonicalization + fingerprinting;
* :mod:`~repro.service.cache`      — LRU/TTL solution cache with accounting
  (expired entries retained for bounded-staleness serving);
* :mod:`~repro.service.solver`     — the pure fingerprint-seeded solve, its
  corruption validator, and the greedy approximate fallback;
* :mod:`~repro.service.service`    — cache + warm-start pool + metrics +
  the degradation ladder (exact → stale → greedy → typed rejection);
* :mod:`~repro.service.supervisor` — crash-isolating worker pool with
  per-worker health and bounded restarts;
* :mod:`~repro.service.retry`      — deterministic capped backoff + hedging;
* :mod:`~repro.service.breaker`    — per-family circuit breaker;
* :mod:`~repro.service.batch`      — dedup, donor ordering, supervised
  process fan-out, deadlines, admission backpressure;
* :mod:`~repro.service.server`     — the ``repro serve`` JSONL loop;
* :mod:`~repro.service.sharding`   — consistent-hash ring placing request
  families onto cache shards;
* :mod:`~repro.service.coalesce`   — single-flight coalescing of identical
  in-flight requests;
* :mod:`~repro.service.admission`  — tiered admission control (accept /
  degrade / shed by priority class);
* :mod:`~repro.service.frontend`   — the asyncio serving tier and its JSONL
  stream transport (``hslb serve --async``);
* :mod:`~repro.service.loadgen`    — trace-driven load generation (Zipf +
  diurnal + flash-crowd shapes) and async replay;
* :mod:`~repro.service.metrics`    — counters/histograms and their snapshot;
* :mod:`~repro.service.errors`     — typed failures (timeout, overload,
  rejection, worker crash/hang, restart-budget exhaustion).
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    ClassThresholds,
)
from repro.service.batch import BatchExecutor
from repro.service.breaker import BreakerPolicy, CircuitBreaker
from repro.service.cache import CacheStats, SolutionCache
from repro.service.coalesce import FlightStats, SingleFlight
from repro.service.errors import (
    RestartBudgetError,
    ServiceError,
    ServiceOverloadError,
    ServiceRejectedError,
    ServiceRequestError,
    ServiceTimeoutError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.service.frontend import (
    AsyncServingTier,
    TierConfig,
    run_requests,
    serve_stdio,
    serve_stream,
)
from repro.service.loadgen import (
    ReplayReport,
    TraceEvent,
    TraceSpec,
    generate_trace,
    replay,
    replay_async,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.request import ComponentSpec, SolveRequest
from repro.service.response import ServiceResponse
from repro.service.retry import RetryPolicy
from repro.service.server import serve_loop
from repro.service.service import AllocationService, ResiliencePolicy
from repro.service.sharding import HashRing
from repro.service.solver import SolveOutcome, greedy_outcome, solve_request
from repro.service.supervisor import (
    InlineExecutor,
    SupervisedWorkerPool,
    WorkerHealth,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AllocationService",
    "AsyncServingTier",
    "BatchExecutor",
    "BreakerPolicy",
    "CacheStats",
    "CircuitBreaker",
    "ClassThresholds",
    "ComponentSpec",
    "FlightStats",
    "HashRing",
    "InlineExecutor",
    "LatencyHistogram",
    "ResiliencePolicy",
    "ReplayReport",
    "RestartBudgetError",
    "RetryPolicy",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadError",
    "ServiceRejectedError",
    "ServiceRequestError",
    "ServiceResponse",
    "ServiceTimeoutError",
    "SingleFlight",
    "SolutionCache",
    "SolveOutcome",
    "SolveRequest",
    "SupervisedWorkerPool",
    "TierConfig",
    "TraceEvent",
    "TraceSpec",
    "WorkerCrashError",
    "WorkerHangError",
    "WorkerHealth",
    "generate_trace",
    "greedy_outcome",
    "replay",
    "replay_async",
    "run_requests",
    "serve_loop",
    "serve_stdio",
    "serve_stream",
    "solve_request",
]
