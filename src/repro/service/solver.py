"""The pure solve at the bottom of the service: request in, outcome out.

Kept free of any cache/metrics state so the same function runs in-process
(the service's own misses) and inside :class:`~concurrent.futures.\
ProcessPoolExecutor` workers (the batch executor's fan-out).  Determinism
rule: the solve RNG is seeded from the request fingerprint, so the same
canonical request produces a bit-identical answer in any process — the
property that lets cached responses stand in for fresh solves.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.core.builder import AllocationModelBuilder
from repro.core.objectives import Objective
from repro.minlp import solve
from repro.minlp.solution import Solution, Status
from repro.service.request import SolveRequest
from repro.util.rng import default_rng


@dataclass(frozen=True)
class SolveOutcome:
    """Everything the service stores (and ships across process boundaries)."""

    fingerprint: str
    allocation: dict[str, int]
    objective: float
    status: str
    iterations: int  # B&B nodes + NLP solves: the warm-start speedup metric
    wall_time: float
    values: dict[str, float]  # full variable values: the warm-start donor
    warm_started: bool
    message: str = ""

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "allocation": dict(self.allocation),
            "objective": self.objective,
            "status": self.status,
            "iterations": self.iterations,
            "wall_time": self.wall_time,
            "values": dict(self.values),
            "warm_started": self.warm_started,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SolveOutcome":
        return cls(
            fingerprint=str(payload["fingerprint"]),
            allocation={k: int(v) for k, v in payload["allocation"].items()},
            objective=float(payload["objective"]),
            status=str(payload["status"]),
            iterations=int(payload["iterations"]),
            wall_time=float(payload["wall_time"]),
            values={k: float(v) for k, v in payload["values"].items()},
            warm_started=bool(payload["warm_started"]),
            message=str(payload.get("message", "")),
        )


def build_problem(request: SolveRequest):
    """The request's MINLP, via the shared allocation-model builder."""
    objective = Objective(request.objective)
    b = AllocationModelBuilder(
        f"service-{request.fingerprint()[:8]}", request.total_nodes
    )
    for name, spec in request.components.items():
        b.add_component(
            name, spec.model, min_nodes=spec.min_nodes, max_nodes=spec.max_nodes
        )
    # Same budget convention as the FMO scheduler: MAX_MIN needs the exact
    # budget or "raising the floor" degenerates into starving everything.
    b.limit_total_nodes(exact=objective is Objective.MAX_MIN)
    b.set_objective(objective)
    return b.build()


def solve_request(
    request: SolveRequest,
    *,
    x0: dict[str, float] | None = None,
    deadline: float | None = None,
    cut_pool=None,
) -> SolveOutcome:
    """Solve one request, optionally warm-started and deadline-capped.

    ``deadline`` shrinks the solver's wall budget (never loosens it), so a
    per-request deadline terminates the tree search itself rather than
    abandoning a runaway subprocess.

    ``cut_pool`` optionally carries a per-family
    :class:`repro.minlp.OACutPool` so OA re-solves on the same model family
    reactivate earlier linearization cuts.  CAUTION: a shared pool makes
    the solve depend on pool history, which breaks the bit-identical-replay
    guarantee — only the service's opt-in ``share_cuts`` mode passes one.
    """
    fingerprint = request.fingerprint()
    problem = build_problem(request)
    if x0 is not None:
        # Seed only the discrete decision variables: a donor's continuous
        # auxiliaries (epigraph T, eta) belong to *its* budget and would
        # drag the root relaxation toward the donor's optimum.
        discrete = {v.name for v in problem.discrete_variables()}
        x0 = {k: v for k, v in x0.items() if k in discrete} or None
    options = request.options
    if deadline is not None:
        options = options.with_budget(wall_seconds=deadline)
    # MAX_MIN epigraph rows (t <= convex) are nonconvex; OA cuts would be
    # invalid there, so route it to NLP-based branch-and-bound.
    algorithm = request.algorithm
    if algorithm == "auto" and Objective(request.objective) is Objective.MAX_MIN:
        algorithm = "nlpbb"
    rng = default_rng(int(fingerprint[:8], 16))
    sol = solve(
        problem, options, algorithm=algorithm, rng=rng, x0=x0, cut_pool=cut_pool
    )
    return _outcome(request, fingerprint, sol, warm_started=x0 is not None)


def _outcome(
    request: SolveRequest,
    fingerprint: str,
    sol: Solution,
    *,
    warm_started: bool,
) -> SolveOutcome:
    allocation: dict[str, int] = {}
    if sol.status.is_ok:
        allocation = {
            name: int(round(sol.values[f"n_{name}"])) for name in request.components
        }
    return SolveOutcome(
        fingerprint=fingerprint,
        allocation=allocation,
        objective=float(sol.objective),
        status=sol.status.value,
        iterations=sol.stats.nodes_explored + sol.stats.nlp_solves,
        wall_time=float(sol.stats.wall_time),
        values={k: float(v) for k, v in sol.values.items()},
        warm_started=warm_started,
        message=sol.message,
    )


def outcome_is_timeout(outcome: SolveOutcome) -> bool:
    """True when the solver died on its wall budget with no usable point."""
    return outcome.status == Status.TIME_LIMIT.value


def validate_outcome(request: SolveRequest, outcome: SolveOutcome) -> str | None:
    """Sanity-check a (possibly worker-produced) outcome against its request.

    Returns a human-readable reason when the outcome is *corrupt* — the
    allocation does not answer the request it claims to — and ``None`` when
    it is structurally sound.  A worker that died halfway through writing
    its result, or chaos-injected corruption, fails here and is retried
    like a crash; a legitimately infeasible model passes (empty allocation
    with a not-ok status is an answer, not corruption).
    """
    if outcome.fingerprint != request.fingerprint():
        return "fingerprint mismatch (answer belongs to a different request)"
    if outcome.status not in (Status.OPTIMAL.value, Status.FEASIBLE.value):
        return None
    if set(outcome.allocation) != set(request.components):
        return "allocation components do not match the request"
    total = sum(outcome.allocation.values())
    if total > request.total_nodes:
        return (
            f"allocation spends {total} nodes against a budget of "
            f"{request.total_nodes}"
        )
    if any(count < 1 for count in outcome.allocation.values()):
        return "allocation grants a component less than one node"
    if not math.isfinite(outcome.objective):
        return f"objective is not finite ({outcome.objective!r})"
    return None


def greedy_outcome(request: SolveRequest) -> SolveOutcome:
    """Polynomial-time approximate answer: the degradation ladder's third rung.

    A bounded marginal greedy in the spirit of
    :func:`repro.core.greedy.greedy_minmax_allocation`, generalized to
    honor per-component ``min_nodes``/``max_nodes`` bounds: every component
    starts at its floor, then the remaining budget goes one node at a time
    to the currently slowest component, never pushing a component past its
    curve minimum while another can still improve.  Exact for the
    single-constraint min-max family; a feasible approximation otherwise —
    either way an answer with explicit ``greedy fallback`` provenance
    instead of a refused request.
    """
    fingerprint = request.fingerprint()
    total = request.total_nodes
    models = {name: spec.model for name, spec in request.components.items()}
    hard_cap = {
        name: min(total, spec.max_nodes if spec.max_nodes is not None else total)
        for name, spec in request.components.items()
    }
    soft_cap = {
        name: min(
            hard_cap[name], max(1, int(models[name].optimal_nodes(n_max=total)))
        )
        for name in models
    }
    alloc = {
        name: min(max(1, spec.min_nodes), hard_cap[name])
        for name, spec in request.components.items()
    }
    budget = total - sum(alloc.values())
    # Phase 1: grant to the slowest component still below its curve minimum.
    heap = [(-float(models[n].time(alloc[n])), n) for n in models]
    heapq.heapify(heap)
    while budget > 0 and heap:
        _, name = heapq.heappop(heap)
        if alloc[name] >= soft_cap[name]:
            continue
        alloc[name] += 1
        budget -= 1
        heapq.heappush(heap, (-float(models[name].time(alloc[name])), name))
    # Phase 2 (exact-budget objectives): everyone is at their sweet spot but
    # nodes remain — spread the remainder round-robin up to the hard caps.
    if budget > 0 and Objective(request.objective) is Objective.MAX_MIN:
        for name in sorted(alloc):
            while budget > 0 and alloc[name] < hard_cap[name]:
                alloc[name] += 1
                budget -= 1
    times = {name: float(models[name].time(alloc[name])) for name in alloc}
    objective = Objective(request.objective)
    if objective is Objective.MIN_SUM:
        value = sum(times.values())
    elif objective is Objective.MAX_MIN:
        value = min(times.values())
    else:
        value = max(times.values())
    return SolveOutcome(
        fingerprint=fingerprint,
        allocation=dict(alloc),
        objective=float(value),
        status=Status.FEASIBLE.value,
        iterations=0,
        wall_time=0.0,
        values={f"n_{name}": float(count) for name, count in alloc.items()},
        warm_started=False,
        message="greedy fallback (exact solve unavailable)",
    )
