"""The pure solve at the bottom of the service: request in, outcome out.

Kept free of any cache/metrics state so the same function runs in-process
(the service's own misses) and inside :class:`~concurrent.futures.\
ProcessPoolExecutor` workers (the batch executor's fan-out).  Determinism
rule: the solve RNG is seeded from the request fingerprint, so the same
canonical request produces a bit-identical answer in any process — the
property that lets cached responses stand in for fresh solves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.builder import AllocationModelBuilder
from repro.core.objectives import Objective
from repro.minlp import solve
from repro.minlp.solution import Solution, Status
from repro.service.request import SolveRequest
from repro.util.rng import default_rng


@dataclass(frozen=True)
class SolveOutcome:
    """Everything the service stores (and ships across process boundaries)."""

    fingerprint: str
    allocation: dict[str, int]
    objective: float
    status: str
    iterations: int  # B&B nodes + NLP solves: the warm-start speedup metric
    wall_time: float
    values: dict[str, float]  # full variable values: the warm-start donor
    warm_started: bool
    message: str = ""

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "allocation": dict(self.allocation),
            "objective": self.objective,
            "status": self.status,
            "iterations": self.iterations,
            "wall_time": self.wall_time,
            "values": dict(self.values),
            "warm_started": self.warm_started,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SolveOutcome":
        return cls(
            fingerprint=str(payload["fingerprint"]),
            allocation={k: int(v) for k, v in payload["allocation"].items()},
            objective=float(payload["objective"]),
            status=str(payload["status"]),
            iterations=int(payload["iterations"]),
            wall_time=float(payload["wall_time"]),
            values={k: float(v) for k, v in payload["values"].items()},
            warm_started=bool(payload["warm_started"]),
            message=str(payload.get("message", "")),
        )


def build_problem(request: SolveRequest):
    """The request's MINLP, via the shared allocation-model builder."""
    objective = Objective(request.objective)
    b = AllocationModelBuilder(
        f"service-{request.fingerprint()[:8]}", request.total_nodes
    )
    for name, spec in request.components.items():
        b.add_component(
            name, spec.model, min_nodes=spec.min_nodes, max_nodes=spec.max_nodes
        )
    # Same budget convention as the FMO scheduler: MAX_MIN needs the exact
    # budget or "raising the floor" degenerates into starving everything.
    b.limit_total_nodes(exact=objective is Objective.MAX_MIN)
    b.set_objective(objective)
    return b.build()


def solve_request(
    request: SolveRequest,
    *,
    x0: dict[str, float] | None = None,
    deadline: float | None = None,
) -> SolveOutcome:
    """Solve one request, optionally warm-started and deadline-capped.

    ``deadline`` shrinks the solver's wall budget (never loosens it), so a
    per-request deadline terminates the tree search itself rather than
    abandoning a runaway subprocess.
    """
    fingerprint = request.fingerprint()
    problem = build_problem(request)
    if x0 is not None:
        # Seed only the discrete decision variables: a donor's continuous
        # auxiliaries (epigraph T, eta) belong to *its* budget and would
        # drag the root relaxation toward the donor's optimum.
        discrete = {v.name for v in problem.discrete_variables()}
        x0 = {k: v for k, v in x0.items() if k in discrete} or None
    options = request.options
    if deadline is not None:
        options = options.with_budget(wall_seconds=deadline)
    # MAX_MIN epigraph rows (t <= convex) are nonconvex; OA cuts would be
    # invalid there, so route it to NLP-based branch-and-bound.
    algorithm = request.algorithm
    if algorithm == "auto" and Objective(request.objective) is Objective.MAX_MIN:
        algorithm = "nlpbb"
    rng = default_rng(int(fingerprint[:8], 16))
    sol = solve(problem, options, algorithm=algorithm, rng=rng, x0=x0)
    return _outcome(request, fingerprint, sol, warm_started=x0 is not None)


def _outcome(
    request: SolveRequest,
    fingerprint: str,
    sol: Solution,
    *,
    warm_started: bool,
) -> SolveOutcome:
    allocation: dict[str, int] = {}
    if sol.status.is_ok:
        allocation = {
            name: int(round(sol.values[f"n_{name}"])) for name in request.components
        }
    return SolveOutcome(
        fingerprint=fingerprint,
        allocation=allocation,
        objective=float(sol.objective),
        status=sol.status.value,
        iterations=sol.stats.nodes_explored + sol.stats.nlp_solves,
        wall_time=float(sol.stats.wall_time),
        values={k: float(v) for k, v in sol.values.items()},
        warm_started=warm_started,
        message=sol.message,
    )


def outcome_is_timeout(outcome: SolveOutcome) -> bool:
    """True when the solver died on its wall budget with no usable point."""
    return outcome.status == Status.TIME_LIMIT.value
