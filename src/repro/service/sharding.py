"""Consistent-hash sharding of request families onto cache shards.

The async serving tier routes every request by its **family key** (the
fingerprint minus the node budget — see :meth:`repro.service.request.\
SolveRequest.family_key`) so that all budgets of one curve set land on the
same shard.  That placement is what makes per-shard state pay off: the
shard that owns a family owns its cached solutions, its warm-start donor
pool, and its OA cut pool, so a neighbor-budget request finds its donor
locally instead of winning a cross-process lottery.

The ring is the textbook consistent-hash construction:

* each shard contributes ``vnodes`` points on a 64-bit ring, placed at
  ``blake2b(f"{shard}#{i}")`` — a pure function of the shard name, so the
  same shard set always yields the same ring in every process and on every
  run (no RNG, no insertion-order dependence);
* a key is routed to the first shard point clockwise from
  ``blake2b(key)``;
* adding or removing one shard of ``N`` therefore moves only the keys in
  the arcs it gains or loses — ~``K/N`` of ``K`` keys, an invariant the
  test suite pins — while every other key keeps its shard, and the cache
  entries behind it.

Virtual nodes smooth the arc lengths: with ``vnodes`` in the tens to
hundreds, shard load imbalance concentrates around the ~``1/sqrt(vnodes)``
level instead of the factor-of-several spread single-point hashing gives.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from collections.abc import Iterable, Sequence

#: Virtual nodes per shard.  96 keeps the max/mean family-count spread
#: within ~1.3x for the shard counts the tier runs (2-32) while keeping
#: ring rebuilds trivially cheap.
DEFAULT_VNODES = 96

_RING_BITS = 64


def _point(label: str) -> int:
    """Deterministic 64-bit ring position of a label."""
    digest = hashlib.blake2b(label.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring mapping string keys onto named shards."""

    def __init__(
        self, shards: Sequence[str] | Iterable[str], *, vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._shards: list[str] = []
        self._points: list[int] = []  # sorted ring positions
        self._owners: list[str] = []  # shard owning each position
        for shard in shards:
            self.add_shard(shard)
        if not self._shards:
            raise ValueError("a ring needs at least one shard")

    # -- membership ---------------------------------------------------------

    @property
    def shards(self) -> tuple[str, ...]:
        """Current shard names, in insertion order."""
        return tuple(self._shards)

    def add_shard(self, shard: str) -> None:
        """Add ``shard``'s virtual nodes; idempotence is an error (a shard
        joining twice would silently double its ring share)."""
        shard = str(shard)
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} is already on the ring")
        self._shards.append(shard)
        for i in range(self.vnodes):
            point = _point(f"{shard}#{i}")
            idx = bisect.bisect_left(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, shard)

    def remove_shard(self, shard: str) -> None:
        """Remove ``shard``; its arcs fall to their clockwise successors."""
        shard = str(shard)
        if shard not in self._shards:
            raise ValueError(f"shard {shard!r} is not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.remove(shard)
        keep = [i for i, owner in enumerate(self._owners) if owner != shard]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- routing ------------------------------------------------------------

    def lookup(self, key: str) -> str:
        """The shard owning ``key``: first ring point clockwise of its hash."""
        idx = bisect.bisect_right(self._points, _point(str(key)))
        if idx == len(self._points):  # wrapped past the top of the ring
            idx = 0
        return self._owners[idx]

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each shard owns (diagnostics / tests)."""
        counts: Counter[str] = Counter({shard: 0 for shard in self._shards})
        for key in keys:
            counts[self.lookup(key)] += 1
        return dict(counts)

    def __len__(self) -> int:
        return len(self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"HashRing(shards={len(self._shards)}, vnodes={self.vnodes}, "
            f"points={len(self._points)})"
        )
