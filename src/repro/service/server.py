"""The ``repro serve`` request loop: JSONL in, JSONL out.

One request object per line on stdin, one response object per line on
stdout — the lingua franca of shell pipelines and load generators alike::

    $ echo '{"components": {"atm": {"a": 1200}, "ocn": {"a": 800}},
             "total_nodes": 64}' | hslb serve

Control lines (``{"cmd": ...}``) are answered inline:

* ``{"cmd": "metrics"}`` — the structured metrics snapshot;
* ``{"cmd": "quit"}``    — stop reading (EOF works too).

Malformed lines produce an ``{"error": ...}`` response and the loop keeps
going; a broken client must not take the service down.
"""

from __future__ import annotations

import json
from typing import IO

from repro.service.errors import (
    ServiceError,
    ServiceRejectedError,
    ServiceTimeoutError,
)
from repro.service.service import AllocationService


def serve_loop(
    service: AllocationService,
    stdin: IO[str],
    stdout: IO[str],
    *,
    deadline: float | None = None,
) -> int:
    """Run the request loop until EOF/quit; returns the number served."""
    served = 0
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            _emit(stdout, {"error": f"bad JSON: {exc}"})
            continue
        if not isinstance(payload, dict):
            _emit(stdout, {"error": "each line must be a JSON object"})
            continue
        cmd = payload.get("cmd")
        if cmd == "quit":
            break
        if cmd == "metrics":
            _emit(stdout, {"metrics": service.metrics.snapshot()})
            continue
        if cmd is not None:
            _emit(stdout, {"error": f"unknown command {cmd!r}"})
            continue
        try:
            response = service.submit_dict(payload, deadline=deadline)
        except ServiceTimeoutError as exc:
            response = {
                "error": str(exc),
                "status": "time_limit",
                "fingerprint": exc.fingerprint,
            }
        except ServiceRejectedError as exc:
            response = {
                "error": str(exc),
                "status": "rejected",
                "fingerprint": exc.fingerprint,
            }
        except ServiceError as exc:
            response = {"error": str(exc)}
        _emit(stdout, response)
        served += 1
    return served


def _emit(stdout: IO[str], payload: dict) -> None:
    stdout.write(json.dumps(payload) + "\n")
    stdout.flush()
