"""Solve requests: canonicalization and fingerprinting.

A :class:`SolveRequest` is the service's unit of work: "split
``total_nodes`` nodes across these components, whose fitted performance
curves are ``T_j(n) = a/n + b n^c + d``".  Two requests that describe the
same optimization problem must map to the same **fingerprint** so they share
one cache slot, regardless of:

* the order components were listed in,
* dict key order inside each component's parameter block,
* float noise below :data:`PARAM_SIG_DIGITS` significant digits (fitted
  parameters re-derived from the same benchmark data differ in the last
  couple of bits run-to-run).

Anything that changes the *answer* — node budget, objective, algorithm,
per-component node bounds, solver tolerances — is part of the fingerprint.
The **family key** is the same hash with the node budget removed: requests
in one family differ only in machine size, which is exactly the population
the warm-start pool draws donors from.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.objectives import Objective
from repro.minlp.bnb import BnBOptions
from repro.perf.model import PerformanceModel
from repro.service.errors import ServiceRequestError

#: Significant digits fitted parameters are rounded to before hashing.
#: 12 digits is far below any physically meaningful difference in a fitted
#: curve but far above float round-off noise.
PARAM_SIG_DIGITS = 12

_ALGORITHMS = ("auto", "oa", "nlpbb")


def _sig(value: float) -> float:
    """Round to :data:`PARAM_SIG_DIGITS` significant digits, stably."""
    return float(f"{float(value):.{PARAM_SIG_DIGITS}g}")


@dataclass(frozen=True)
class ComponentSpec:
    """One component: fitted curve parameters plus optional node bounds."""

    model: PerformanceModel
    min_nodes: int = 1
    max_nodes: int | None = None

    def canonical(self) -> dict:
        out = {
            "a": _sig(self.model.a),
            "b": _sig(self.model.b),
            "c": _sig(self.model.c),
            "d": _sig(self.model.d),
            "min_nodes": int(self.min_nodes),
        }
        if self.max_nodes is not None:
            out["max_nodes"] = int(self.max_nodes)
        return out


@dataclass(frozen=True)
class SolveRequest:
    """One allocation query, canonicalizable and hashable."""

    components: Mapping[str, ComponentSpec]
    total_nodes: int
    objective: str = Objective.MIN_MAX.value
    algorithm: str = "auto"
    options: BnBOptions = field(default_factory=BnBOptions)

    def __post_init__(self) -> None:
        if not self.components:
            raise ServiceRequestError("request has no components")
        if self.total_nodes < len(self.components):
            raise ServiceRequestError(
                f"{self.total_nodes} nodes cannot give "
                f"{len(self.components)} components one node each"
            )
        try:
            Objective(self.objective)
        except ValueError:
            raise ServiceRequestError(
                f"unknown objective {self.objective!r}"
            ) from None
        if self.algorithm not in _ALGORITHMS:
            raise ServiceRequestError(
                f"unknown algorithm {self.algorithm!r}; expected one of {_ALGORITHMS}"
            )

    # -- canonical form ----------------------------------------------------

    def canonical(self) -> dict:
        """The request as a canonical, JSON-stable payload."""
        return {
            "components": {
                name: self.components[name].canonical()
                for name in sorted(self.components)
            },
            "total_nodes": int(self.total_nodes),
            "objective": self.objective,
            "algorithm": self.algorithm,
            "solver": {
                "int_tol": _sig(self.options.int_tol),
                "gap_abs": _sig(self.options.gap_abs),
                "gap_rel": _sig(self.options.gap_rel),
                "node_limit": int(self.options.node_limit),
                "time_limit": _sig(self.options.time_limit),
            },
        }

    def fingerprint(self) -> str:
        """Stable identity of the solve: equal problems, equal digests."""
        return _digest(self.canonical())

    def family_key(self) -> str:
        """Identity minus the node budget: the warm-start donor family."""
        payload = self.canonical()
        del payload["total_nodes"]
        return _digest(payload)

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``repro serve``/``batch`` schema)."""
        return self.canonical()

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SolveRequest":
        """Parse the wire format; raises :class:`ServiceRequestError`."""
        try:
            raw = payload["components"]
        except (KeyError, TypeError):
            raise ServiceRequestError(
                "request must carry a 'components' mapping"
            ) from None
        if not isinstance(raw, Mapping):
            raise ServiceRequestError("'components' must map name -> parameters")
        components: dict[str, ComponentSpec] = {}
        for name, params in raw.items():
            try:
                model = PerformanceModel(
                    a=float(params["a"]),
                    b=float(params.get("b", 0.0)),
                    c=float(params.get("c", 1.0)),
                    d=float(params.get("d", 0.0)),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ServiceRequestError(
                    f"component {name!r}: bad curve parameters ({exc})"
                ) from None
            max_nodes = params.get("max_nodes")
            components[str(name)] = ComponentSpec(
                model=model,
                min_nodes=int(params.get("min_nodes", 1)),
                max_nodes=None if max_nodes is None else int(max_nodes),
            )
        solver = payload.get("solver", {})
        defaults = BnBOptions()
        options = BnBOptions(
            int_tol=float(solver.get("int_tol", defaults.int_tol)),
            gap_abs=float(solver.get("gap_abs", defaults.gap_abs)),
            gap_rel=float(solver.get("gap_rel", defaults.gap_rel)),
            node_limit=int(solver.get("node_limit", defaults.node_limit)),
            time_limit=float(solver.get("time_limit", defaults.time_limit)),
        )
        try:
            total_nodes = int(payload["total_nodes"])
        except (KeyError, TypeError, ValueError):
            raise ServiceRequestError(
                "request must carry an integer 'total_nodes'"
            ) from None
        return cls(
            components=components,
            total_nodes=total_nodes,
            objective=str(payload.get("objective", Objective.MIN_MAX.value)),
            algorithm=str(payload.get("algorithm", "auto")),
            options=options,
        )


def _digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()
