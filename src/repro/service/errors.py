"""Typed service failures, following the :mod:`repro.faults` conventions.

Every error carries the identity of the event (which request, which limit)
as attributes, so callers — the batch executor, the JSONL serve loop, tests
— can reason about failures instead of string-matching messages.
"""

from __future__ import annotations


class ServiceError(RuntimeError):
    """Base class for every allocation-service failure."""


class ServiceRequestError(ServiceError):
    """A request that cannot be canonicalized or solved (caller's fault)."""


class ServiceTimeoutError(ServiceError):
    """A solve blew through its per-request deadline without an answer."""

    def __init__(self, *, fingerprint: str, deadline: float, elapsed: float) -> None:
        self.fingerprint = fingerprint
        self.deadline = float(deadline)
        self.elapsed = float(elapsed)
        super().__init__(
            f"request {fingerprint[:12]} missed its {self.deadline:.3g}s "
            f"deadline ({self.elapsed:.3g}s elapsed, no incumbent)"
        )


class ServiceOverloadError(ServiceError):
    """The admission queue is full; the caller must back off and retry."""

    def __init__(self, *, pending: int, capacity: int) -> None:
        self.pending = pending
        self.capacity = capacity
        super().__init__(
            f"admission queue full: {pending} request(s) against a capacity "
            f"of {capacity}; retry after the backlog drains"
        )
