"""Typed service failures, following the :mod:`repro.faults` conventions.

Every error carries the identity of the event (which request, which limit)
as attributes, so callers — the batch executor, the JSONL serve loop, tests
— can reason about failures instead of string-matching messages.
"""

from __future__ import annotations


class ServiceError(RuntimeError):
    """Base class for every allocation-service failure."""


class ServiceRequestError(ServiceError):
    """A request that cannot be canonicalized or solved (caller's fault)."""


class ServiceTimeoutError(ServiceError):
    """A solve blew through its per-request deadline without an answer."""

    def __init__(self, *, fingerprint: str, deadline: float, elapsed: float) -> None:
        self.fingerprint = fingerprint
        self.deadline = float(deadline)
        self.elapsed = float(elapsed)
        super().__init__(
            f"request {fingerprint[:12]} missed its {self.deadline:.3g}s "
            f"deadline ({self.elapsed:.3g}s elapsed, no incumbent)"
        )


class ServiceOverloadError(ServiceError):
    """The admission queue is full; the caller must back off and retry.

    ``retry_after`` is the service's estimate (seconds) of when the backlog
    will have drained enough to admit the shed work — the JSONL loop and
    HTTP-ish front ends surface it as a ``Retry-After`` hint.
    """

    def __init__(
        self, *, pending: int, capacity: int, retry_after: float = 0.0
    ) -> None:
        self.pending = pending
        self.capacity = capacity
        self.retry_after = max(0.0, float(retry_after))
        hint = f"; retry after ~{self.retry_after:.3g}s" if self.retry_after else ""
        super().__init__(
            f"admission queue full: {pending} request(s) against a capacity "
            f"of {capacity}; retry after the backlog drains{hint}"
        )


class ServiceRejectedError(ServiceError):
    """Every rung of the degradation ladder failed; the request is refused.

    This is the explicit bottom of exact -> stale -> greedy: the caller gets
    a typed rejection carrying why each rung was unavailable, never a silent
    drop or an unbounded wait.
    """

    def __init__(self, *, fingerprint: str, reason: str) -> None:
        self.fingerprint = fingerprint
        self.reason = reason
        super().__init__(
            f"request {fingerprint[:12]} rejected: {reason} "
            "(no exact answer, no stale cache entry, no greedy fallback)"
        )


class WorkerCrashError(ServiceError):
    """A pool worker died mid-solve (process exit or injected crash)."""

    def __init__(
        self, *, worker_id: int, fingerprint: str = "", detail: str = ""
    ) -> None:
        self.worker_id = worker_id
        self.fingerprint = fingerprint
        self.detail = detail
        what = f" solving {fingerprint[:12]}" if fingerprint else ""
        why = f": {detail}" if detail else ""
        super().__init__(f"worker {worker_id} crashed{what}{why}")


class WorkerHangError(ServiceError):
    """A pool worker stopped answering; its slot was killed and replaced."""

    def __init__(
        self, *, worker_id: int, timeout: float | None, fingerprint: str = ""
    ) -> None:
        self.worker_id = worker_id
        self.timeout = timeout
        self.fingerprint = fingerprint
        what = f" on {fingerprint[:12]}" if fingerprint else ""
        budget = f"{timeout:.3g}s" if timeout is not None else "its"
        super().__init__(f"worker {worker_id} hung{what} past {budget} budget")


class RestartBudgetError(ServiceError):
    """The supervised pool burned its whole worker-restart budget."""

    def __init__(self, *, budget: int) -> None:
        self.budget = budget
        super().__init__(
            f"supervised pool exhausted its restart budget ({budget} worker "
            "replacement(s)); remaining work must degrade or be rejected"
        )
