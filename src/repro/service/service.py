"""The allocation service: cached, warm-started solves behind one entry point.

Request lifecycle::

    submit(request)
      -> canonicalize + fingerprint            (request.py)
      -> cache lookup                          (cache.py; hit: done, ~µs)
      -> circuit breaker check                 (breaker.py; open: degrade)
      -> warm-start donor: nearest cached node
         budget in the same request family     (this module)
      -> solve, x0 threaded through the
         oa/nlpbb chain, retried on system
         failures with deterministic backoff   (solver.py, retry.py)
      -> result validation (corruption check)  (solver.py)
      -> cache insert + donor-pool registration
      -> metrics

Cached answers are bit-identical to fresh solves: the solve RNG is seeded
from the fingerprint, so replaying the request in any process yields the
same allocation and objective the cache stored.

**The degradation ladder.**  With a :class:`ResiliencePolicy` installed, a
request that cannot get an exact answer — worker crashes/hangs exhausted
their retries, the solver blew its deadline, the family's circuit breaker
is open — walks down explicit rungs instead of failing:

1. **stale cache** — a TTL-expired entry within ``max_stale`` seconds of
   age, served with ``source="stale"`` and its age attached;
2. **greedy approximate** — the polynomial-time bounded greedy (the same
   final rung as the PR 1 oa -> nlpbb -> greedy chain), ``source="greedy"``;
3. **typed rejection** — :class:`ServiceRejectedError`, never a silent drop.

Every rung records ``service_degraded_total``/``service_rejections_total``
and a span tag, so degradation is always visible in the metrics scrape.
"""

from __future__ import annotations

import time
from collections import defaultdict
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.minlp.cutpool import OACutPool
from repro.minlp.solution import Status
from repro.obs.trace import span
from repro.service.breaker import BreakerPolicy, CircuitBreaker
from repro.service.cache import SolutionCache
from repro.service.errors import (
    ServiceRejectedError,
    ServiceTimeoutError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.request import SolveRequest
from repro.service.response import ServiceResponse
from repro.service.retry import RetryPolicy
from repro.service.solver import (
    SolveOutcome,
    greedy_outcome,
    solve_request,
    validate_outcome,
)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Every knob of the resilient request path, in one value object.

    ``retry`` / ``breaker``
        Re-dispatch and circuit-breaking policies (their own modules).
    ``max_stale``
        Oldest entry age (seconds since insert) the stale rung may serve;
        ``None`` serves any entry still physically cached.
    ``allow_stale`` / ``allow_greedy``
        Switch individual rungs off (a rejected request is still typed).
    ``restart_budget``
        Worker replacements the supervised pool may spend per batch.
    ``hang_timeout``
        Harvest timeout (seconds) for pool dispatches when no per-request
        deadline implies one; the backstop that turns a silent worker hang
        into a typed, retryable failure.
    ``min_attempt_budget``
        Do not start another attempt with less deadline than this left.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    max_stale: float | None = None
    allow_stale: bool = True
    allow_greedy: bool = True
    restart_budget: int = 3
    hang_timeout: float = 30.0
    min_attempt_budget: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_stale is not None and self.max_stale < 0:
            raise ValueError("max_stale must be >= 0 (or None)")
        if self.restart_budget < 0:
            raise ValueError("restart_budget must be >= 0")
        if self.hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive")


class AllocationService:
    """High-throughput query engine over the HSLB optimizer."""

    def __init__(
        self,
        *,
        cache_capacity: int = 256,
        ttl: float | None = None,
        warm_start: bool = True,
        clock: Callable[[], float] = time.monotonic,
        resilience: ResiliencePolicy | None = None,
        chaos=None,  # ChaosPlan | None; annotation-free to avoid an import cycle
        sleeper: Callable[[float], None] = time.sleep,
        share_cuts: bool = False,
    ) -> None:
        self.cache: SolutionCache[SolveOutcome] = SolutionCache(
            capacity=cache_capacity, ttl=ttl, clock=clock
        )
        self.metrics = ServiceMetrics()
        self.warm_start = warm_start
        self.resilience = resilience
        self.chaos = chaos
        self.sleeper = sleeper
        self.breaker = (
            CircuitBreaker(resilience.breaker, clock=clock) if resilience else None
        )
        # Opt-in cross-solve OA cut sharing: one cut pool per model family,
        # threaded into in-process solves so a re-solve on a family starts
        # from its surviving linearizations.  Off by default — pooled cuts
        # make an answer depend on pool history, which trades away the
        # bit-identical-replay guarantee for latency.
        self.share_cuts = share_cuts
        self._cut_pools: dict[str, OACutPool] = defaultdict(OACutPool)
        if chaos is not None:
            from repro.faults.chaos import chaotic_solve

            self._solve = chaotic_solve(chaos, solve_request)
        else:
            self._solve = (
                lambda request, *, x0=None, deadline=None, attempt=0: solve_request(
                    request,
                    x0=x0,
                    deadline=deadline,
                    cut_pool=(
                        self._cut_pools[request.family_key()]
                        if self.share_cuts
                        else None
                    ),
                )
            )
        # family key -> {fingerprint: total_nodes}; entries go stale when the
        # cache evicts/expires them and are pruned lazily on donor lookups.
        self._families: dict[str, dict[str, int]] = defaultdict(dict)

    # -- the request path --------------------------------------------------

    def submit(
        self, request: SolveRequest, *, deadline: float | None = None
    ) -> ServiceResponse:
        """Answer one request from cache, a (warm-started) solve, or the ladder.

        Raises :class:`ServiceTimeoutError` when the per-request ``deadline``
        expires with no usable incumbent and no resilience policy is
        installed, and :class:`ServiceRejectedError` when the degradation
        ladder runs out of rungs; solver failures that are the *model's*
        fault (infeasible, error) come back as a response with ``ok=False``
        instead — the caller's retry policy differs.
        """
        with span("service.submit") as sp:
            response = self._submit(request, deadline=deadline)
            sp.set_tag("cached", response.cached)
            sp.set_tag("status", response.status)
            sp.set_tag("source", response.source)
        return response

    def _submit(
        self, request: SolveRequest, *, deadline: float | None
    ) -> ServiceResponse:
        start = time.perf_counter()
        fingerprint = request.fingerprint()
        cached = self.cache.get(fingerprint)
        if cached is not None:
            latency = time.perf_counter() - start
            self.metrics.record_hit(latency)
            return ServiceResponse.from_outcome(
                cached, cached=True, latency=latency
            )
        policy = self.resilience
        family = request.family_key()
        if self.breaker is not None and not self.breaker.allow(family):
            self.metrics.record_breaker_block()
            return self.fallback(
                request,
                fingerprint,
                reason=f"circuit breaker open for family {family[:12]}",
                start=start,
            )
        x0, donor = self._find_donor(request, fingerprint)
        attempts = policy.retry.max_attempts if policy else 1
        last_reason = "no solve attempt ran"
        for attempt in range(attempts):
            if attempt:
                self.metrics.record_retry()
                self.sleeper(policy.retry.backoff(fingerprint, attempt))
            budget = deadline
            if deadline is not None:
                budget = deadline - (time.perf_counter() - start)
                if policy and budget <= policy.min_attempt_budget:
                    last_reason = "deadline exhausted before another attempt"
                    break
            try:
                outcome = self._solve(
                    request, x0=x0, deadline=budget, attempt=attempt
                )
            except (WorkerCrashError, WorkerHangError) as exc:
                self.metrics.record_worker_failure(
                    "hang" if isinstance(exc, WorkerHangError) else "crash"
                )
                last_reason = str(exc)
                if policy is None:
                    raise
                continue
            if policy is not None:
                corrupt = validate_outcome(request, outcome)
                if corrupt is not None:
                    self.metrics.record_corruption()
                    last_reason = f"corrupt result: {corrupt}"
                    continue
            latency = time.perf_counter() - start
            ok = outcome.status in (Status.OPTIMAL.value, Status.FEASIBLE.value)
            if ok or outcome.status != Status.TIME_LIMIT.value:
                # A finished solve — optimal/feasible, or a *model*-fault
                # terminal status (infeasible, error) that no retry changes.
                self.metrics.record_solve(
                    latency,
                    warm=outcome.warm_started,
                    iterations=outcome.iterations,
                    ok=ok,
                )
                if self.breaker is not None:
                    # Any *completed* solve is a system success — even an
                    # infeasible model proves the workers and solver ran.
                    self.breaker.record_success(family)
                if ok:
                    self.admit(request, outcome)
                return ServiceResponse.from_outcome(
                    outcome, cached=False, latency=latency, donor=donor
                )
            # TIME_LIMIT: deterministic under a fixed budget, so spend the
            # remaining deadline on the ladder, not on an identical re-run.
            self.metrics.record_solve(
                latency, warm=outcome.warm_started,
                iterations=outcome.iterations, ok=False,
            )
            self.metrics.record_timeout()
            last_reason = "solver exhausted its wall budget"
            break
        if self.breaker is not None:
            self.breaker.record_failure(family)
        if policy is None:
            raise ServiceTimeoutError(
                fingerprint=fingerprint,
                deadline=(
                    deadline if deadline is not None else request.options.time_limit
                ),
                elapsed=time.perf_counter() - start,
            )
        return self.fallback(request, fingerprint, reason=last_reason, start=start)

    def submit_dict(self, payload: dict, *, deadline: float | None = None) -> dict:
        """Wire-format entry point: dict in, dict out (the JSONL schema)."""
        return self.submit(
            SolveRequest.from_dict(payload), deadline=deadline
        ).to_dict()

    # -- the degradation ladder --------------------------------------------

    def fallback(
        self,
        request: SolveRequest,
        fingerprint: str,
        *,
        reason: str,
        start: float | None = None,
    ) -> ServiceResponse:
        """Walk the ladder below exact: stale cache -> greedy -> rejection.

        Raises :class:`ServiceRejectedError` from the bottom rung; every
        other return carries explicit ``source`` provenance and metrics.
        """
        policy = self.resilience
        if policy is None:
            raise ServiceRejectedError(fingerprint=fingerprint, reason=reason)
        start = time.perf_counter() if start is None else start
        with span("service.fallback") as sp:
            sp.set_tag("reason", reason)
            if policy.allow_stale:
                hit = self.cache.stale(fingerprint, max_age=policy.max_stale)
                if hit is not None:
                    value, age = hit
                    latency = time.perf_counter() - start
                    self.metrics.record_degraded("stale", latency)
                    sp.set_tag("source", "stale")
                    return ServiceResponse.from_outcome(
                        value,
                        cached=True,
                        latency=latency,
                        source="stale",
                        staleness=age,
                    )
            if policy.allow_greedy:
                outcome = greedy_outcome(request)
                latency = time.perf_counter() - start
                self.metrics.record_degraded("greedy", latency)
                sp.set_tag("source", "greedy")
                # Greedy answers are NOT admitted to the cache: they must
                # never shadow an exact answer for the same fingerprint.
                return ServiceResponse.from_outcome(
                    outcome, cached=False, latency=latency, source="greedy"
                )
            sp.set_tag("source", "rejected")
            self.metrics.record_rejection(time.perf_counter() - start)
            raise ServiceRejectedError(fingerprint=fingerprint, reason=reason)

    # -- cache/donor bookkeeping -------------------------------------------

    def admit(self, request: SolveRequest, outcome: SolveOutcome) -> None:
        """Install a finished solve into the cache and the donor pool."""
        fingerprint = outcome.fingerprint
        with span("cache.admit", fingerprint=fingerprint[:12]):
            self.cache.put(fingerprint, outcome)
            self._families[request.family_key()][fingerprint] = request.total_nodes

    def _find_donor(
        self, request: SolveRequest, fingerprint: str
    ) -> tuple[dict[str, float] | None, str | None]:
        """Nearest cached node budget in the request's family, as an x0."""
        if not self.warm_start:
            return None, None
        family = self._families.get(request.family_key())
        if not family:
            return None, None
        best: tuple[int, str] | None = None
        for fp, nodes in list(family.items()):
            if fp == fingerprint or self.cache.peek(fp) is None:
                if self.cache.peek(fp) is None:
                    del family[fp]  # evicted/expired underneath us
                continue
            gap = abs(nodes - request.total_nodes)
            if best is None or gap < best[0]:
                best = (gap, fp)
        if best is None:
            return None, None
        donor = self.cache.peek(best[1])
        return dict(donor.values), best[1]
