"""The allocation service: cached, warm-started solves behind one entry point.

Request lifecycle::

    submit(request)
      -> canonicalize + fingerprint            (request.py)
      -> cache lookup                          (cache.py; hit: done, ~µs)
      -> warm-start donor: nearest cached node
         budget in the same request family     (this module)
      -> solve, x0 threaded through the
         oa/nlpbb chain                        (solver.py -> repro.minlp)
      -> cache insert + donor-pool registration
      -> metrics

Cached answers are bit-identical to fresh solves: the solve RNG is seeded
from the fingerprint, so replaying the request in any process yields the
same allocation and objective the cache stored.
"""

from __future__ import annotations

import time
from collections import defaultdict
from collections.abc import Callable

from repro.minlp.solution import Status
from repro.obs.trace import span
from repro.service.cache import SolutionCache
from repro.service.errors import ServiceTimeoutError
from repro.service.metrics import ServiceMetrics
from repro.service.request import SolveRequest
from repro.service.response import ServiceResponse
from repro.service.solver import SolveOutcome, solve_request


class AllocationService:
    """High-throughput query engine over the HSLB optimizer."""

    def __init__(
        self,
        *,
        cache_capacity: int = 256,
        ttl: float | None = None,
        warm_start: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.cache: SolutionCache[SolveOutcome] = SolutionCache(
            capacity=cache_capacity, ttl=ttl, clock=clock
        )
        self.metrics = ServiceMetrics()
        self.warm_start = warm_start
        # family key -> {fingerprint: total_nodes}; entries go stale when the
        # cache evicts/expires them and are pruned lazily on donor lookups.
        self._families: dict[str, dict[str, int]] = defaultdict(dict)

    # -- the request path --------------------------------------------------

    def submit(
        self, request: SolveRequest, *, deadline: float | None = None
    ) -> ServiceResponse:
        """Answer one request from cache or by a (warm-started) solve.

        Raises :class:`ServiceTimeoutError` when the per-request ``deadline``
        expires with no usable incumbent; solver failures that are the
        *model's* fault (infeasible, error) come back as a response with
        ``ok=False`` instead — the caller's retry policy differs.
        """
        with span("service.submit") as sp:
            response = self._submit(request, deadline=deadline)
            sp.set_tag("cached", response.cached)
            sp.set_tag("status", response.status)
        return response

    def _submit(
        self, request: SolveRequest, *, deadline: float | None
    ) -> ServiceResponse:
        start = time.perf_counter()
        fingerprint = request.fingerprint()
        cached = self.cache.get(fingerprint)
        if cached is not None:
            latency = time.perf_counter() - start
            self.metrics.record_hit(latency)
            return ServiceResponse.from_outcome(
                cached, cached=True, latency=latency
            )
        x0, donor = self._find_donor(request, fingerprint)
        outcome = solve_request(request, x0=x0, deadline=deadline)
        latency = time.perf_counter() - start
        ok = outcome.status in (Status.OPTIMAL.value, Status.FEASIBLE.value)
        self.metrics.record_solve(
            latency, warm=outcome.warm_started, iterations=outcome.iterations, ok=ok
        )
        if ok:
            self.admit(request, outcome)
        elif outcome.status == Status.TIME_LIMIT.value:
            self.metrics.record_timeout()
            raise ServiceTimeoutError(
                fingerprint=fingerprint,
                deadline=deadline if deadline is not None else request.options.time_limit,
                elapsed=latency,
            )
        return ServiceResponse.from_outcome(
            outcome, cached=False, latency=latency, donor=donor
        )

    def submit_dict(self, payload: dict, *, deadline: float | None = None) -> dict:
        """Wire-format entry point: dict in, dict out (the JSONL schema)."""
        return self.submit(
            SolveRequest.from_dict(payload), deadline=deadline
        ).to_dict()

    # -- cache/donor bookkeeping -------------------------------------------

    def admit(self, request: SolveRequest, outcome: SolveOutcome) -> None:
        """Install a finished solve into the cache and the donor pool."""
        fingerprint = outcome.fingerprint
        self.cache.put(fingerprint, outcome)
        self._families[request.family_key()][fingerprint] = request.total_nodes

    def _find_donor(
        self, request: SolveRequest, fingerprint: str
    ) -> tuple[dict[str, float] | None, str | None]:
        """Nearest cached node budget in the request's family, as an x0."""
        if not self.warm_start:
            return None, None
        family = self._families.get(request.family_key())
        if not family:
            return None, None
        best: tuple[int, str] | None = None
        for fp, nodes in list(family.items()):
            if fp == fingerprint or self.cache.peek(fp) is None:
                if self.cache.peek(fp) is None:
                    del family[fp]  # evicted/expired underneath us
                continue
            gap = abs(nodes - request.total_nodes)
            if best is None or gap < best[0]:
                best = (gap, fp)
        if best is None:
            return None, None
        donor = self.cache.peek(best[1])
        return dict(donor.values), best[1]
