"""LRU + TTL solution cache with hit/miss accounting and stale reads.

HSLB is *static*: a solve's answer depends only on the canonical request,
never on machine state or time — which makes solutions perfectly cacheable.
The cache is a plain ordered-dict LRU with an optional time-to-live (so a
deployment that refits its curves hourly can bound staleness) and counters
for every outcome, feeding the service metrics.

Semantics pinned by the test suite:

* **TTL boundary** — an entry is valid while ``age <= ttl`` and expires
  strictly after; a lookup at exactly the boundary still hits.
* **Corpse retention** — an expired entry stops answering ``get``/``peek``/
  ``in`` but stays physically present (capacity-bounded) so the degradation
  ladder's :meth:`stale` rung can still serve it; only LRU eviction or an
  explicit :meth:`purge` removes it.
* **Thread safety** — every public operation holds one lock, so a ``get``
  racing an expiring ``put`` can never observe a half-updated LRU order or
  double-count an expiration.
* **Accounting** — ``CacheStats`` and the global metrics-registry counters
  (``service_cache_*_total``) move in lockstep, and every entry's demise is
  booked exactly once: as an *expiration* the first time its death-by-age
  is observed (or when purged/evicted unobserved), as an *eviction* only
  when capacity removes it while still live.
* **Stale reads** — :meth:`stale` serves entries regardless of TTL (bounded
  by ``max_age``), reports their age, and touches no recency or hit/miss
  counters: a stale read is not a cache hit.

The clock is injectable so tests can drive TTL expiry deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.obs.metrics import REGISTRY

V = TypeVar("V")


@dataclass
class CacheStats:
    """Outcome counters since construction (monotonic, never reset).

    Every increment is mirrored into the ``service_cache_*_total`` registry
    counters, so a Prometheus scrape and :meth:`as_dict` always agree.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    inserts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def _bump(self, name: str, amount: int = 1) -> None:
        setattr(self, name, getattr(self, name) + amount)
        REGISTRY.counter(f"service_cache_{name}_total").inc(amount)

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "inserts": self.inserts,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry(Generic[V]):
    value: V
    inserted_at: float
    expiry_booked: bool = False  # death-by-age already counted once


@dataclass
class SolutionCache(Generic[V]):
    """Bounded LRU mapping fingerprint -> cached solve, with optional TTL."""

    capacity: int = 256
    ttl: float | None = None  # seconds; None = entries never expire
    clock: Callable[[], float] = time.monotonic
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError("ttl must be positive (or None)")
        self._entries: OrderedDict[str, _Entry[V]] = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        """Physically present entries, expired corpses included."""
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Non-mutating presence check (no LRU touch, no accounting)."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not self._expired(entry)

    def get(self, key: str) -> V | None:
        """Look up ``key``; counts a hit or miss and refreshes recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats._bump("misses")
                return None
            if self._expired(entry):
                self._book_expiry(entry)
                self.stats._bump("misses")
                return None
            self._entries.move_to_end(key)
            self.stats._bump("hits")
            return entry.value

    def put(self, key: str, value: V) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when full.

        Capacity removals book an *eviction* for live entries; an expired
        corpse swept out here books its (one) expiration instead — time's
        casualties are never charged to capacity.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = _Entry(value, self.clock())
            self.stats._bump("inserts")
            while len(self._entries) > self.capacity:
                _, victim = self._entries.popitem(last=False)
                if self._expired(victim):
                    self._book_expiry(victim)
                else:
                    self.stats._bump("evictions")

    def peek(self, key: str) -> V | None:
        """Read without touching recency or counters (warm-start donors)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._expired(entry):
                return None
            return entry.value

    def stale(
        self, key: str, *, max_age: float | None = None
    ) -> tuple[V, float] | None:
        """Read ``key`` regardless of TTL; returns ``(value, age)`` or None.

        The degradation ladder's second rung: a bounded-staleness answer
        beats no answer, provided the caller marks it as stale.  ``max_age``
        caps how old (seconds since insert) a served entry may be; ``None``
        serves anything still physically present.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            age = self.clock() - entry.inserted_at
            if max_age is not None and age > max_age:
                return None
            return entry.value, age

    def purge(self) -> int:
        """Drop every expired corpse now; returns how many were dropped."""
        with self._lock:
            if self.ttl is None:
                return 0
            dead = [k for k, e in self._entries.items() if self._expired(e)]
            for key in dead:
                self._book_expiry(self._entries.pop(key))
            return len(dead)

    def _book_expiry(self, entry: _Entry[V]) -> None:
        if not entry.expiry_booked:
            entry.expiry_booked = True
            self.stats._bump("expirations")

    def _expired(self, entry: _Entry[V]) -> bool:
        return self.ttl is not None and self.clock() - entry.inserted_at > self.ttl
