"""LRU + TTL solution cache with hit/miss accounting.

HSLB is *static*: a solve's answer depends only on the canonical request,
never on machine state or time — which makes solutions perfectly cacheable.
The cache is a plain ordered-dict LRU with an optional time-to-live (so a
deployment that refits its curves hourly can bound staleness) and counters
for every outcome, feeding the service metrics.

The clock is injectable so tests can drive TTL expiry deterministically.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Generic, TypeVar

V = TypeVar("V")


@dataclass
class CacheStats:
    """Outcome counters since construction (monotonic, never reset)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    inserts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "inserts": self.inserts,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry(Generic[V]):
    value: V
    inserted_at: float


@dataclass
class SolutionCache(Generic[V]):
    """Bounded LRU mapping fingerprint -> cached solve, with optional TTL."""

    capacity: int = 256
    ttl: float | None = None  # seconds; None = entries never expire
    clock: Callable[[], float] = time.monotonic
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError("ttl must be positive (or None)")
        self._entries: OrderedDict[str, _Entry[V]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Non-mutating presence check (no LRU touch, no accounting)."""
        entry = self._entries.get(key)
        return entry is not None and not self._expired(entry)

    def get(self, key: str) -> V | None:
        """Look up ``key``; counts a hit or miss and refreshes recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if self._expired(entry):
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def put(self, key: str, value: V) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = _Entry(value, self.clock())
        self.stats.inserts += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def peek(self, key: str) -> V | None:
        """Read without touching recency or counters (warm-start donors)."""
        entry = self._entries.get(key)
        if entry is None or self._expired(entry):
            return None
        return entry.value

    def _expired(self, entry: _Entry[V]) -> bool:
        return self.ttl is not None and self.clock() - entry.inserted_at > self.ttl
