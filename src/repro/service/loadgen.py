"""Trace-driven load generation for the async serving tier.

Real allocation traffic has three statistical signatures the benchmarks
need to reproduce:

* **Zipf popularity** — a handful of production configurations dominate
  the stream, with a long tail of one-off what-ifs (the same heavy-tail
  model ``bench_service.py`` established);
* **diurnal rate** — request volume swells and ebbs over the day, so a
  tier tuned on flat-rate traffic has never seen its own peak;
* **flash crowds** — short spikes several times the diurnal peak (a
  campaign re-plans its whole fleet at once), the regime that separates
  admission control from a full queue falling over.

Every draw is **keyed** (:func:`repro.util.rng.keyed_rng` on the spec seed
and the event index), so the same :class:`TraceSpec` yields a bit-identical
trace in any process on any run — the property that lets the CI smoke
assert exact zero-lost-request counts and lets two benchmark runs replay
the same traffic against different tiers.

The replay engine is open-loop (arrivals follow the trace clock scaled by
``speed``, independent of how fast the tier answers — the honest way to
measure an overloaded service) with ``speed=0`` meaning "one concurrent
burst", the closed-form worst case the coalescing tests use.
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.perf.model import PerformanceModel
from repro.service.admission import PRIORITIES
from repro.service.errors import (
    ServiceError,
    ServiceOverloadError,
)
from repro.service.frontend import AsyncServingTier
from repro.service.metrics import LatencyHistogram
from repro.service.request import ComponentSpec, SolveRequest
from repro.service.response import ServiceResponse
from repro.util.rng import keyed_rng

#: Base curve set traffic families are scaled from (CESM-ish coupled
#: components; the same shape bench_service.py uses).
BASE_CURVES = {
    "atm": dict(a=1200.0, b=0.5, c=1.1, d=2.0),
    "ocn": dict(a=800.0, b=0.3, c=1.2, d=1.0),
    "ice": dict(a=300.0, b=0.2, c=1.0, d=0.5),
}


@dataclass(frozen=True)
class TraceSpec:
    """One reproducible traffic recipe: pool, popularity, and rate shape."""

    n_requests: int = 1000
    seed: int = 20120427
    n_families: int = 3
    budgets: tuple[int, ...] = (48, 64, 72, 96)
    zipf_exponent: float = 1.1
    duration: float = 60.0  # virtual trace-time seconds
    diurnal_amplitude: float = 0.5  # rate swing, 0 = flat, <1 keeps rate > 0
    diurnal_periods: float = 1.0  # "days" across the trace
    flash_crowds: int = 1
    flash_magnitude: float = 4.0  # rate multiplier at a spike's peak
    flash_width: float = 0.02  # spike sigma, as a fraction of duration
    priority_mix: tuple[tuple[str, float], ...] = (
        ("interactive", 0.5),
        ("batch", 0.3),
        ("background", 0.2),
    )

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("a trace needs at least one request")
        if self.n_families < 1 or not self.budgets:
            raise ValueError("the request pool must be non-empty")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.flash_crowds < 0 or self.flash_magnitude < 0:
            raise ValueError("flash crowd parameters must be non-negative")
        total = sum(w for _, w in self.priority_mix)
        if total <= 0 or any(w < 0 for _, w in self.priority_mix):
            raise ValueError("priority mix weights must be non-negative")


@dataclass(frozen=True)
class TraceEvent:
    """One request arrival: when, what, and how urgent."""

    index: int
    time: float  # virtual seconds since trace start
    request: SolveRequest
    priority: str

    def to_payload(self) -> dict:
        payload = self.request.to_dict()
        payload["priority"] = self.priority
        payload["id"] = self.index
        return payload


def request_pool(spec: TraceSpec) -> list[SolveRequest]:
    """The distinct requests behind a trace: families x node budgets.

    Family ``k`` scales the base curves by a keyed-RNG factor, so two specs
    with equal seeds describe identical pools (and equal fingerprints).
    """
    pool: list[SolveRequest] = []
    for k in range(spec.n_families):
        rng = keyed_rng(spec.seed, "family", k)
        scale = float(rng.uniform(0.8, 2.5))
        components = {
            name: ComponentSpec(
                model=PerformanceModel(
                    a=params["a"] * scale,
                    b=params["b"],
                    c=params["c"],
                    d=params["d"],
                )
            )
            for name, params in BASE_CURVES.items()
        }
        for budget in spec.budgets:
            pool.append(
                SolveRequest(components=components, total_nodes=budget)
            )
    return pool


def _rate_curve(spec: TraceSpec, resolution: int = 2048) -> np.ndarray:
    """Relative arrival rate sampled on a uniform grid over the trace."""
    t = np.linspace(0.0, 1.0, resolution)
    rate = 1.0 + spec.diurnal_amplitude * np.sin(
        2.0 * np.pi * spec.diurnal_periods * t - 0.5 * np.pi
    )
    for k in range(spec.flash_crowds):
        rng = keyed_rng(spec.seed, "flash", k)
        center = float(rng.uniform(0.15, 0.85))
        rate = rate + spec.flash_magnitude * np.exp(
            -0.5 * ((t - center) / max(spec.flash_width, 1e-6)) ** 2
        )
    return rate


def arrival_times(spec: TraceSpec) -> np.ndarray:
    """Deterministic arrival times following the diurnal + flash rate.

    Inverse-transform sampling of the cumulative rate: event ``i`` arrives
    where the integrated rate reaches ``(i + 1/2)/n`` of its total — dense
    where the rate curve is high, sparse in the troughs, identical on
    every run.
    """
    rate = _rate_curve(spec)
    cumulative = np.cumsum(rate)
    cumulative = cumulative / cumulative[-1]
    targets = (np.arange(spec.n_requests) + 0.5) / spec.n_requests
    grid = np.searchsorted(cumulative, targets)
    return grid / (len(rate) - 1) * spec.duration


def generate_trace(spec: TraceSpec) -> list[TraceEvent]:
    """The full trace: Zipf-ranked picks at diurnal/flash arrival times."""
    pool = request_pool(spec)
    # Popularity rank is decoupled from construction order by a keyed
    # shuffle — otherwise family 0 / budget 0 would always be the hot key.
    order = keyed_rng(spec.seed, "rank").permutation(len(pool))
    weights = 1.0 / np.arange(1, len(pool) + 1) ** spec.zipf_exponent
    weights /= weights.sum()
    times = arrival_times(spec)
    names = tuple(name for name, _ in spec.priority_mix)
    mix = np.array([w for _, w in spec.priority_mix], dtype=float)
    mix /= mix.sum()
    events: list[TraceEvent] = []
    for i in range(spec.n_requests):
        rng = keyed_rng(spec.seed, "event", i)
        rank = rng.choice(len(pool), p=weights)
        priority = names[rng.choice(len(names), p=mix)]
        events.append(
            TraceEvent(
                index=i,
                time=float(times[i]),
                request=pool[order[rank]],
                priority=priority,
            )
        )
    return events


@dataclass
class ReplayReport:
    """Everything one replay measured, JSON- and gate-ready."""

    n_requests: int
    wall_time: float
    throughput_rps: float
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    latency_by_priority: dict[str, LatencyHistogram] = field(default_factory=dict)
    sources: Counter = field(default_factory=Counter)
    priorities: Counter = field(default_factory=Counter)
    shed: int = 0
    errors: int = 0
    lost: int = 0  # requests that got neither an answer nor a typed error
    coalesce: dict = field(default_factory=dict)
    tier: dict = field(default_factory=dict)

    @property
    def answered(self) -> int:
        """Requests that got an allocation (any rung above rejection)."""
        return self.n_requests - self.shed - self.errors - self.lost

    def observe_latency(self, priority: str, seconds: float) -> None:
        """Record one answered request's latency, overall and per class."""
        self.latency.observe(seconds)
        hist = self.latency_by_priority.get(priority)
        if hist is None:
            hist = self.latency_by_priority[priority] = LatencyHistogram()
        hist.observe(seconds)

    def snapshot(self) -> dict:
        lat = self.latency.snapshot()
        per_priority = {
            name: {
                "count": snap["count"],
                "p50": snap["p50"],
                "p99": snap["p99"],
                "p999": snap["p999"],
                "mean_latency": snap["mean"],
            }
            for name, hist in sorted(self.latency_by_priority.items())
            for snap in (hist.snapshot(),)
        }
        return {
            "n_requests": self.n_requests,
            "wall_time": self.wall_time,
            "throughput_rps": self.throughput_rps,
            "answered": self.answered,
            "shed": self.shed,
            "errors": self.errors,
            "lost": self.lost,
            "sources": dict(self.sources),
            "priorities": dict(self.priorities),
            "p50": lat["p50"],
            "p99": lat["p99"],
            "p999": lat["p999"],
            "mean_latency": lat["mean"],
            "per_priority": per_priority,
            "coalesce": dict(self.coalesce),
            "tier": dict(self.tier),
        }


async def replay_async(
    tier: AsyncServingTier,
    trace: list[TraceEvent],
    *,
    speed: float = 0.0,
    deadline: float | None = None,
) -> ReplayReport:
    """Replay ``trace`` against ``tier``; every event gets an account.

    ``speed`` scales trace time into wall time (``10`` replays a 60s trace
    in 6s); ``0`` skips the clock entirely and releases the whole trace as
    one concurrent burst.  A shed request (typed overload) and an error
    envelope are *answered* outcomes; ``lost`` counts only requests whose
    task died without producing either — the number CI pins at zero.
    """
    report = ReplayReport(n_requests=len(trace), wall_time=0.0, throughput_rps=0.0)
    start = time.perf_counter()

    async def one(event: TraceEvent) -> None:
        if speed > 0:
            delay = event.time / speed - (time.perf_counter() - start)
            if delay > 0:
                await asyncio.sleep(delay)
        t0 = time.perf_counter()
        try:
            response: ServiceResponse = await tier.submit(
                event.request, priority=event.priority, deadline=deadline
            )
        except ServiceOverloadError:
            report.shed += 1
            report.priorities[f"shed:{event.priority}"] += 1
            return
        except ServiceError:
            report.errors += 1
            return
        report.observe_latency(event.priority, time.perf_counter() - t0)
        report.sources[response.source] += 1
        report.priorities[event.priority] += 1
        if not response.ok:
            report.errors += 1

    async with tier:
        results = await asyncio.gather(
            *(one(e) for e in trace), return_exceptions=True
        )
    report.lost = sum(1 for r in results if isinstance(r, BaseException))
    report.wall_time = time.perf_counter() - start
    report.throughput_rps = (
        len(trace) / report.wall_time if report.wall_time > 0 else 0.0
    )
    report.coalesce = tier.snapshot()["coalesce"]
    report.tier = {
        "shards": len(tier.shards),
        "worker_mode": tier.config.worker_mode,
        "hit_rate": tier.snapshot()["hit_rate"],
        "admission": tier.admission.as_dict(),
    }
    return report


def replay(
    tier: AsyncServingTier,
    trace: list[TraceEvent],
    *,
    speed: float = 0.0,
    deadline: float | None = None,
) -> ReplayReport:
    """Synchronous wrapper around :func:`replay_async` (fresh event loop)."""
    return asyncio.run(
        replay_async(tier, trace, speed=speed, deadline=deadline)
    )


def priority_histogram(trace: list[TraceEvent]) -> dict[str, int]:
    """Per-class arrival counts (sanity checks and reports)."""
    counts = Counter(e.priority for e in trace)
    return {name: counts.get(name, 0) for name in PRIORITIES}
