"""Tiered admission control: accept, degrade to a cheap answer, or shed.

The batch executor's :class:`~repro.service.errors.ServiceOverloadError`
backpressure is binary — a batch either fits under ``max_pending`` or is
refused whole.  A front end facing live traffic needs gradations: when the
tier runs hot, *background* traffic should lose its exact solves long
before an *interactive* user notices anything, and refusal should be the
last resort, not the first.

Each priority class gets two thresholds, expressed as fractions of the
tier's pending-work capacity:

* below ``degrade_at`` — **accept**: the request gets the full path
  (cache, coalescing, warm-started exact solve);
* between ``degrade_at`` and ``shed_at`` — **degrade**: the request is
  answered from the cheap rungs of the existing degradation ladder (stale
  cache if present, else the polynomial-time greedy), costing microseconds
  instead of a solve, with explicit ``source`` provenance;
* at or above ``shed_at`` — **shed**: a typed
  :class:`~repro.service.errors.ServiceOverloadError` with a
  ``retry_after`` hint.

Default thresholds stagger the classes so load strips work away from the
bottom first: background degrades at 45% full and sheds at 70%, batch at
70%/90%, interactive at 90%/100%.  Every decision is counted per class in
``service_admission_total``, so a scrape shows exactly who is being
squeezed and how hard.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.obs.metrics import REGISTRY

#: Priority classes, highest first.  Unknown classes are treated as the
#: lowest: traffic that does not declare itself is the first to degrade.
PRIORITIES = ("interactive", "batch", "background")

DEFAULT_PRIORITY = "batch"


class AdmissionDecision(enum.Enum):
    ACCEPT = "accept"
    DEGRADE = "degrade"
    SHED = "shed"


@dataclass(frozen=True)
class ClassThresholds:
    """One class's degrade/shed points, as fractions of capacity."""

    degrade_at: float
    shed_at: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.degrade_at <= self.shed_at:
            raise ValueError(
                f"need 0 <= degrade_at <= shed_at, got "
                f"{self.degrade_at}/{self.shed_at}"
            )


@dataclass(frozen=True)
class AdmissionPolicy:
    """Capacity plus per-class thresholds (see module docstring)."""

    max_pending: int = 64
    thresholds: dict[str, ClassThresholds] = field(
        default_factory=lambda: {
            "interactive": ClassThresholds(degrade_at=0.90, shed_at=1.00),
            "batch": ClassThresholds(degrade_at=0.70, shed_at=0.90),
            "background": ClassThresholds(degrade_at=0.45, shed_at=0.70),
        }
    )

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if not self.thresholds:
            raise ValueError("an admission policy needs at least one class")

    def for_class(self, priority: str) -> ClassThresholds:
        """Thresholds for ``priority``; unknown classes rank at the bottom."""
        got = self.thresholds.get(priority)
        if got is not None:
            return got
        return min(
            self.thresholds.values(), key=lambda t: (t.shed_at, t.degrade_at)
        )


class AdmissionController:
    """Apply a policy to the tier's live pending count, with accounting."""

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self.accepted = 0
        self.degraded = 0
        self.shed = 0

    def decide(self, priority: str, pending: int) -> AdmissionDecision:
        """Admission verdict for one arriving request.

        ``pending`` is the tier's in-flight/queued request count *before*
        this request is added; the fill fraction it implies is compared to
        the class thresholds.
        """
        thresholds = self.policy.for_class(priority)
        fill = pending / self.policy.max_pending
        if fill >= thresholds.shed_at:
            decision = AdmissionDecision.SHED
            self.shed += 1
        elif fill >= thresholds.degrade_at:
            decision = AdmissionDecision.DEGRADE
            self.degraded += 1
        else:
            decision = AdmissionDecision.ACCEPT
            self.accepted += 1
        REGISTRY.counter("service_admission_total").inc(
            decision=decision.value, priority=str(priority)
        )
        return decision

    def as_dict(self) -> dict:
        return {
            "accepted": self.accepted,
            "degraded": self.degraded,
            "shed": self.shed,
        }
