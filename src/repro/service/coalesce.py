"""Single-flight request coalescing for the async serving tier.

Identical requests cluster in time — a popular configuration is asked for
by many clients at once, and a cache *miss* on it is exactly when the solve
is expensive.  Without coalescing, N concurrent identical misses launch N
identical solves; the cache only helps the requests that arrive after the
first solve finishes.  Single-flight closes that window: the first miss
becomes the **leader** and runs the solve; every identical request that
arrives while it is in flight becomes a **rider** that awaits the leader's
future and shares its answer.  N identical in-flight requests perform
exactly one solve — an invariant the test suite pins.

Sharing is safe here for the same reason caching is: solves are
fingerprint-seeded and deterministic, so the leader's answer *is* the
answer every rider would have computed.  Failures are shared too — if the
leader's solve raises, every rider sees the same exception (they would
have hit it themselves), but the flight is cleared so the *next* arrival
starts fresh instead of inheriting a stale failure.

A cancelled leader does not strand its riders with a ``CancelledError``
that was never theirs: leadership is handed to the exception handler,
which marks the flight cancelled so riders re-enter ``run`` and the first
of them becomes the new leader.
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable
from dataclasses import dataclass, field

from repro.obs.metrics import REGISTRY


@dataclass
class FlightStats:
    """Coalescing outcomes since construction (mirrored into the registry)."""

    leaders: int = 0
    riders: int = 0

    @property
    def total(self) -> int:
        return self.leaders + self.riders

    @property
    def coalesce_rate(self) -> float:
        """Fraction of entries that rode an existing flight."""
        return self.riders / self.total if self.total else 0.0

    def as_dict(self) -> dict:
        return {
            "leaders": self.leaders,
            "riders": self.riders,
            "coalesce_rate": self.coalesce_rate,
        }


@dataclass
class SingleFlight:
    """Coalesce concurrent calls with equal keys onto one execution."""

    stats: FlightStats = field(default_factory=FlightStats)

    def __post_init__(self) -> None:
        self._flights: dict[str, asyncio.Future] = {}

    def in_flight(self, key: str) -> bool:
        """True when a leader is currently executing ``key``."""
        return key in self._flights

    async def run(self, key: str, fn: Callable[[], Awaitable]):
        """Run ``fn`` once per concurrent ``key``; everyone gets its result.

        The leader executes ``fn`` and resolves the shared future; riders
        await it.  The flight is removed before the future resolves, so a
        caller arriving after completion starts a fresh flight (coalescing
        is for *in-flight* duplicates; completed answers are the cache's
        job, not ours).
        """
        while True:
            existing = self._flights.get(key)
            if existing is not None:
                self.stats.riders += 1
                REGISTRY.counter("service_coalesced_total").inc(outcome="rider")
                result = await asyncio.shield(existing)
                if result is _CANCELLED:
                    # The leader was cancelled out from under us; compete to
                    # lead a fresh flight rather than failing N riders for
                    # one caller's cancellation.
                    continue
                return result

            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._flights[key] = future
            self.stats.leaders += 1
            REGISTRY.counter("service_coalesced_total").inc(outcome="leader")
            try:
                result = await fn()
            except asyncio.CancelledError:
                self._flights.pop(key, None)
                future.set_result(_CANCELLED)
                raise
            except BaseException as exc:
                self._flights.pop(key, None)
                future.set_exception(exc)
                # The riders consume the exception; if there are none, keep
                # the event loop's unretrieved-exception warning quiet.
                future.exception()
                raise
            else:
                self._flights.pop(key, None)
                future.set_result(result)
                return result


class _Cancelled:
    """Sentinel: the leader was cancelled; riders should re-run."""

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return "<flight cancelled>"


_CANCELLED = _Cancelled()
