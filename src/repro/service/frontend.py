"""The asyncio serving tier: sharded caches, coalescing, tiered admission.

This is the front end the ROADMAP's "millions of users" story needs — the
two-level split of the dynlb subsystem applied to serving instead of
compute.  **Coarse level**: a consistent-hash ring places every request's
*family* (curve set, budget removed) onto one of N shards, so all budgets
of a family share one shard's cache, warm-start donor pool, and OA cut
pool — family locality makes warm starts free instead of a cross-process
lottery.  **Fine level**: within a shard, requests are coalesced
(single-flight: N identical in-flight requests ride one solve) and solved
serially on the shard's worker, preserving the per-shard determinism the
cache depends on.

The layers, bottom-up::

    transport   serve_stream / serve_stdio — asyncio JSONL framing, one
                task per line, out-of-order completion, id passthrough
    scheduling  AsyncServingTier.submit — admission (accept / degrade /
                shed by priority), ring routing, single-flight coalescing
    solving     one AllocationService per shard — cache, donors, breaker,
                degradation ladder, the fingerprint-seeded solve

Worker modes: ``"process"`` gives each shard its own single-process
executor — the parallel mode, since the branch-and-bound solve is
GIL-bound Python (its LP calls are too short to release the interpreter
for long); donor lookup and cache admission stay in the parent loop, so
shard state remains single-writer.  ``"thread"`` (default) runs solves on
a one-thread executor per shard — no solve parallelism, but the event
loop stays responsive, and nothing forks.  ``"inline"`` runs solves
directly on the event loop — fully deterministic, the mode the tests use.
"""

from __future__ import annotations

import asyncio
import contextvars
import io
import json
import os
import time
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from functools import partial
from typing import IO

from repro.minlp.solution import Status
from repro.obs.metrics import REGISTRY
from repro.obs.slo import SLOTracker
from repro.obs.trace import get_tracer, run_traced_child, span
from repro.service.admission import (
    DEFAULT_PRIORITY,
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.service.coalesce import SingleFlight
from repro.service.errors import (
    ServiceError,
    ServiceOverloadError,
    ServiceRejectedError,
    ServiceTimeoutError,
)
from repro.service.metrics import LatencyHistogram
from repro.service.request import SolveRequest
from repro.service.response import ServiceResponse
from repro.service.service import AllocationService, ResiliencePolicy
from repro.service.sharding import DEFAULT_VNODES, HashRing
from repro.service.solver import SolveOutcome, greedy_outcome, solve_request

_WORKER_MODES = ("thread", "process", "inline")


def _shard_solve(
    payload: dict,
    x0: dict | None,
    deadline: float | None,
    trace_context: dict | None = None,
) -> dict:
    """The picklable solve shipped to a shard's worker process.

    With a ``trace_context`` attached, the worker records its solve-side
    spans under that parent and ships them back on the ``"_trace"`` key of
    the outcome dict, for the parent to graft into the request's tree.
    """

    def _solve() -> dict:
        with span("worker.solve", pid=os.getpid(), warm=x0 is not None):
            return solve_request(
                SolveRequest.from_dict(payload), x0=x0, deadline=deadline
            ).to_dict()

    outcome, spans = run_traced_child(trace_context, _solve)
    if spans:
        outcome = {**outcome, "_trace": spans}
    return outcome


@dataclass(frozen=True)
class TierConfig:
    """Everything the async tier needs, in one value object."""

    shards: int = 4
    vnodes: int = DEFAULT_VNODES
    worker_mode: str = "thread"
    coalesce: bool = True
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    cache_capacity: int = 256  # per shard
    ttl: float | None = None
    warm_start: bool = True
    share_cuts: bool = True
    resilience: ResiliencePolicy | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("the tier needs at least one shard")
        if self.worker_mode not in _WORKER_MODES:
            raise ValueError(
                f"unknown worker mode {self.worker_mode!r}; "
                f"expected one of {_WORKER_MODES}"
            )

    @classmethod
    def for_host(cls, cores: int | None = None, **overrides) -> "TierConfig":
        """A config matched to the host's CPU budget.

        Multi-core hosts get ``"process"`` workers (shards solve in
        parallel across cores); a single-core host gets ``"thread"``
        workers — out-of-process solving buys nothing there and forfeits
        the parent's cross-solve cut-pool reuse, so in-process is strictly
        better.  Explicit ``overrides`` win over the derived fields.
        """
        if cores is None:
            try:
                cores = len(os.sched_getaffinity(0))
            except AttributeError:  # platforms without affinity
                cores = os.cpu_count() or 1
        derived = {"worker_mode": "process" if cores > 1 else "thread"}
        derived.update(overrides)
        return cls(**derived)


class _Shard:
    """One shard: its service, its flight table, its (optional) worker."""

    def __init__(self, name: str, config: TierConfig) -> None:
        self.name = name
        self.service = AllocationService(
            cache_capacity=config.cache_capacity,
            ttl=config.ttl,
            warm_start=config.warm_start,
            resilience=config.resilience,
            share_cuts=config.share_cuts,
        )
        self.flights = SingleFlight()
        self.requests = 0
        self.mode = config.worker_mode
        self.executor: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"hslb-{name}"
            )
            if self.mode == "thread"
            else None
        )
        self.process: ProcessPoolExecutor | None = (
            ProcessPoolExecutor(max_workers=1)
            if self.mode == "process"
            else None
        )
        # Serializes out-of-process dispatch per shard, so each solve's
        # donor lookup sees every sibling already admitted.  Costs nothing:
        # the pool has exactly one worker.
        self._dispatch_lock = asyncio.Lock()

    async def solve(self, request: SolveRequest, deadline: float | None):
        """Run one (possibly warm-started) solve on this shard's worker."""
        if self.process is not None:
            return await self._solve_out_of_process(request, deadline)
        call = partial(self.service.submit, request, deadline=deadline)
        if self.executor is None:
            with span("shard.solve", shard=self.name, mode="inline"):
                return call()
        with span("shard.solve", shard=self.name, mode="thread"):
            # run_in_executor does NOT carry contextvars; copy the current
            # context so the thread-side spans nest under this one.
            ctx = contextvars.copy_context()
            return await asyncio.get_running_loop().run_in_executor(
                self.executor, ctx.run, call
            )

    async def _solve_out_of_process(
        self, request: SolveRequest, deadline: float | None
    ) -> ServiceResponse:
        """Ship the solve to this shard's worker process.

        Only the solve itself leaves the parent: donor lookup before and
        cache/donor admission after both run on the event loop, under the
        shard's dispatch lock — so a burst of one family's budgets chains
        warm starts (each solve sees its predecessors admitted) instead of
        all dispatching cold.  A dead worker is replaced and the victim
        solve retried on a transient thread — the request is
        fingerprint-seeded, so the retry is idempotent.
        """
        start = time.perf_counter()
        loop = asyncio.get_running_loop()
        fingerprint = request.fingerprint()
        service = self.service
        with span("shard.queue", shard=self.name):
            await self._dispatch_lock.acquire()
        try:
            with span("shard.solve", shard=self.name, mode="process") as sp:
                x0, donor = service._find_donor(request, fingerprint)
                trace_context = sp.context().to_dict() if sp.trace_id else None
                try:
                    payload = await loop.run_in_executor(
                        self.process,
                        _shard_solve,
                        request.to_dict(), x0, deadline, trace_context,
                    )
                except BrokenProcessPool:
                    service.metrics.record_worker_failure("crash")
                    self.process.shutdown(wait=False)
                    self.process = ProcessPoolExecutor(max_workers=1)
                    service.metrics.record_worker_restart()
                    # Retry on a transient thread: carry the live context
                    # instead of a serialized one (same process, new thread).
                    ctx = contextvars.copy_context()
                    payload = await loop.run_in_executor(
                        None,
                        ctx.run,
                        partial(_shard_solve, request.to_dict(), x0, deadline),
                    )
                remote_spans = payload.pop("_trace", None)
                if remote_spans and sp.trace_id:
                    get_tracer().attach_remote(remote_spans, anchor=sp)
                outcome = SolveOutcome.from_dict(payload)
                ok = outcome.status in (
                    Status.OPTIMAL.value, Status.FEASIBLE.value
                )
                if ok:
                    service.admit(request, outcome)
        finally:
            self._dispatch_lock.release()
        service.metrics.record_solve(
            outcome.wall_time,
            warm=outcome.warm_started,
            iterations=outcome.iterations,
            ok=ok,
        )
        if ok:
            return ServiceResponse.from_outcome(
                outcome,
                cached=False,
                latency=time.perf_counter() - start,
                donor=donor,
            )
        if outcome.status == Status.TIME_LIMIT.value:
            service.metrics.record_timeout()
        if service.resilience is not None:
            # The ladder below exact (stale -> greedy -> typed rejection).
            return service.fallback(
                request,
                fingerprint,
                reason=f"worker solve ended {outcome.status}",
                start=start,
            )
        return ServiceResponse.from_outcome(
            outcome, cached=False, latency=time.perf_counter() - start
        )

    def close(self) -> None:
        if self.executor is not None:
            self.executor.shutdown(wait=True)
        if self.process is not None:
            self.process.shutdown(wait=True)


class AsyncServingTier:
    """Consistent-hash sharded, coalescing, admission-controlled front end."""

    def __init__(
        self,
        config: TierConfig | None = None,
        *,
        slo: SLOTracker | None = None,
    ) -> None:
        self.config = config or TierConfig()
        self.shards: dict[str, _Shard] = {
            f"shard-{i}": _Shard(f"shard-{i}", self.config)
            for i in range(self.config.shards)
        }
        self.ring = HashRing(self.shards, vnodes=self.config.vnodes)
        self.admission = AdmissionController(self.config.admission)
        self.latency = LatencyHistogram()  # end-to-end, queue wait included
        self.slo = slo if slo is not None else SLOTracker()
        self.served = 0
        self.pending = 0
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut down shard workers (idempotent)."""
        if not self._closed:
            self._closed = True
            for shard in self.shards.values():
                shard.close()

    async def __aenter__(self) -> "AsyncServingTier":
        await self.warm_up()
        return self

    async def warm_up(self) -> None:
        """Pre-fork process-mode pool workers while the process is quiet.

        A ``ProcessPoolExecutor`` forks lazily at first submit — by which
        time a transport may have parked a thread in a blocking
        ``stdin.readline`` (see :func:`serve_stdio`).  A child forked while
        another thread holds ``sys.stdin``'s buffered-reader lock deadlocks
        in multiprocessing's ``_close_stdin`` bootstrap before it ever runs
        a task.  Forking every worker up front, before any transport
        thread exists, sidesteps that entirely — and moves the fork cost
        off the first request's latency.
        """
        loop = asyncio.get_running_loop()
        pools = [s.process for s in self.shards.values() if s.process is not None]
        if pools:
            await asyncio.gather(
                *(loop.run_in_executor(pool, os.getpid) for pool in pools)
            )

    async def __aexit__(self, *exc) -> None:
        self.close()

    # -- the request path ----------------------------------------------------

    def route(self, request: SolveRequest) -> str:
        """The shard owning ``request``'s family."""
        return self.ring.lookup(request.family_key())

    async def submit(
        self,
        request: SolveRequest,
        *,
        priority: str = DEFAULT_PRIORITY,
        deadline: float | None = None,
    ) -> ServiceResponse:
        """Answer one request through admission, routing, and coalescing.

        Raises :class:`ServiceOverloadError` when the request is shed and
        whatever the shard's service raises when its ladder runs out —
        the same contract as :meth:`AllocationService.submit`.
        """
        start = time.perf_counter()
        shard = self.shards[self.route(request)]
        shard.requests += 1
        fingerprint = request.fingerprint()
        with span("tier.submit") as sp:
            sp.set_tag("shard", shard.name)
            sp.set_tag("priority", priority)
            with span("tier.admission") as adm:
                decision = self.admission.decide(priority, self.pending)
                adm.set_tag("decision", decision.value)
            sp.set_tag("admission", decision.value)
            if decision is AdmissionDecision.SHED:
                self._observe(start, trace_id=sp.trace_id)
                self.slo.record(priority, None, "shed")
                shard.service.metrics.record_overload()
                raise ServiceOverloadError(
                    pending=self.pending,
                    capacity=self.config.admission.max_pending,
                    retry_after=self._retry_after(),
                )

            # Fast path: a live cache hit never queues, whatever the verdict.
            cached = shard.service.cache.get(fingerprint)
            if cached is not None:
                latency = self._observe(start, trace_id=sp.trace_id)
                shard.service.metrics.record_hit(latency)
                self.slo.record(priority, latency, "ok")
                return self._stamp(
                    ServiceResponse.from_outcome(
                        cached, cached=True, latency=latency
                    ),
                    sp,
                )

            if decision is AdmissionDecision.DEGRADE:
                response = self._degrade(
                    shard, request, fingerprint, start, trace_id=sp.trace_id
                )
                self.slo.record(priority, response.latency, "degraded")
                return self._stamp(response, sp)

            self.pending += 1
            led = False

            async def _leader_solve():
                nonlocal led
                led = True
                return await shard.solve(request, deadline)

            try:
                if self.config.coalesce:
                    with span("tier.coalesce") as flight:
                        response = await shard.flights.run(
                            fingerprint, _leader_solve
                        )
                    flight.set_tag("role", "leader" if led else "rider")
                else:
                    response = await shard.solve(request, deadline)
            except ServiceError:
                self.slo.record(
                    priority, time.perf_counter() - start, "error"
                )
                raise
            finally:
                self.pending -= 1
            latency = self._observe(start, trace_id=sp.trace_id)
            self.slo.record(
                priority,
                latency,
                "ok" if response.ok
                else ("degraded" if response.degraded else "error"),
            )
            return self._stamp(response, sp)

    async def submit_dict(
        self, payload: dict, *, deadline: float | None = None
    ) -> dict:
        """Wire-format entry point: dict in, dict out (the JSONL schema).

        ``priority`` rides in the payload; ``id`` (opaque to the tier) is
        echoed back so out-of-order stream responses stay matchable.
        """
        request = SolveRequest.from_dict(payload)
        response = await self.submit(
            request,
            priority=str(payload.get("priority", DEFAULT_PRIORITY)),
            deadline=deadline,
        )
        out = response.to_dict()
        out["shard"] = self.route(request)
        if "id" in payload:
            out["id"] = payload["id"]
        return out

    # -- degraded serving ----------------------------------------------------

    def _degrade(
        self,
        shard: _Shard,
        request: SolveRequest,
        fingerprint: str,
        start: float,
        trace_id: str = "",
    ) -> ServiceResponse:
        """Answer without a solve: stale cache if present, else greedy.

        The admission layer's middle verdict.  Both rungs cost microseconds
        and reuse the degradation ladder's provenance conventions, so a
        scrape cannot mistake a load-shedding answer for an exact one.
        """
        hit = shard.service.cache.stale(fingerprint)
        if hit is not None:
            value, age = hit
            latency = self._observe(start, trace_id=trace_id)
            shard.service.metrics.record_degraded("stale", latency)
            return ServiceResponse.from_outcome(
                value, cached=True, latency=latency, source="stale",
                staleness=age,
            )
        outcome = greedy_outcome(request)
        latency = self._observe(start, trace_id=trace_id)
        shard.service.metrics.record_degraded("greedy", latency)
        return ServiceResponse.from_outcome(
            outcome, cached=False, latency=latency, source="greedy"
        )

    # -- accounting ----------------------------------------------------------

    @staticmethod
    def _stamp(response: ServiceResponse, sp) -> ServiceResponse:
        """Return the response carrying the request's trace id (if traced)."""
        if sp.trace_id and not response.trace_id:
            return replace(response, trace_id=sp.trace_id)
        return response

    def _observe(self, start: float, trace_id: str = "") -> float:
        latency = time.perf_counter() - start
        self.latency.observe(latency)
        self.served += 1
        REGISTRY.histogram("service_tier_request_seconds").observe(
            latency, exemplar=trace_id or None
        )
        return latency

    def _retry_after(self) -> float:
        """Drain-time hint for shed work, from the observed mean latency."""
        mean = self.latency.mean or 0.05
        headroom = max(1, self.pending - self.config.admission.max_pending // 2)
        return headroom * mean

    def snapshot(self) -> dict:
        """One structured view of the whole tier (JSON-ready)."""
        merged = {
            "requests": 0, "cache_hits": 0, "cold_solves": 0,
            "warm_solves": 0, "degraded_stale": 0, "degraded_greedy": 0,
            "rejections": 0, "overloads": 0,
        }
        per_shard = {}
        for name, shard in self.shards.items():
            snap = shard.service.metrics.snapshot()
            per_shard[name] = {
                "routed": shard.requests,
                "requests": snap["requests"],
                "hit_rate": snap["hit_rate"],
                "warm_start_speedup": snap["warm_start_speedup"],
                "coalesce": shard.flights.stats.as_dict(),
            }
            metrics = shard.service.metrics
            for key in merged:
                merged[key] += getattr(metrics, key)
        merged["hit_rate"] = (
            merged["cache_hits"] / merged["requests"] if merged["requests"] else 0.0
        )
        leaders = sum(s.flights.stats.leaders for s in self.shards.values())
        riders = sum(s.flights.stats.riders for s in self.shards.values())
        return {
            "shards": len(self.shards),
            "worker_mode": self.config.worker_mode,
            "served": self.served,
            "pending": self.pending,
            "admission": self.admission.as_dict(),
            "coalesce": {
                "leaders": leaders,
                "riders": riders,
                "coalesce_rate": riders / (leaders + riders)
                if (leaders + riders)
                else 0.0,
            },
            "latency": self.latency.snapshot(),
            "slo": self.slo.snapshot(),
            "per_shard": per_shard,
            **merged,
        }


# -- transport: asyncio JSONL framing -----------------------------------------


async def serve_stream(
    tier: AsyncServingTier,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    deadline: float | None = None,
) -> int:
    """Serve JSONL over an asyncio stream pair until EOF or ``quit``.

    Requests are handled concurrently (one task per line), so responses may
    arrive out of order; clients that care attach an ``id`` and match on
    its echo.  Returns the number of requests served.
    """
    lock = asyncio.Lock()

    async def emit(payload: dict) -> None:
        async with lock:
            writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()

    async def lines():
        while True:
            line = await reader.readline()
            if not line:
                return
            yield line.decode()

    return await _serve_lines(tier, lines(), emit, deadline=deadline)


def serve_stdio(
    tier: AsyncServingTier,
    stdin: IO[str],
    stdout: IO[str],
    *,
    deadline: float | None = None,
    metrics_port: int | None = None,
    metrics_host: str = "127.0.0.1",
) -> int:
    """The stdio flavor of :func:`serve_stream` (the ``hslb serve --async``
    transport); same JSONL schema as the synchronous ``serve_loop``.

    With ``metrics_port`` set, a :class:`repro.obs.http.MetricsServer`
    runs on the same loop for the lifetime of the serve: ``/metrics``
    scrapes the process registry (SLO gauges refreshed per scrape) and
    ``/healthz`` reports tier liveness.  Port 0 binds an ephemeral port.
    """

    async def _run() -> int:
        loop = asyncio.get_running_loop()
        lock = asyncio.Lock()

        async def emit(payload: dict) -> None:
            async with lock:
                stdout.write(json.dumps(payload) + "\n")
                stdout.flush()

        # Read from a private dup of stdin, not ``stdin`` itself: the
        # reader thread below holds its file's lock for the whole blocking
        # readline, and a process-pool worker forked meanwhile would
        # deadlock closing an inherited, locked ``sys.stdin`` in its
        # multiprocessing bootstrap.  Fake stdins without a real fd (tests)
        # fall back to being read directly — they never fork workers.
        try:
            source = os.fdopen(os.dup(stdin.fileno()), "r")
        except (OSError, ValueError, AttributeError, io.UnsupportedOperation):
            source = None

        async def lines():
            reader = source if source is not None else stdin
            while True:
                line = await loop.run_in_executor(None, reader.readline)
                if not line:
                    return
                yield line

        server = None
        if metrics_port is not None:
            from repro.obs.http import MetricsServer

            server = MetricsServer(
                slo=tier.slo,
                health=lambda: {
                    "served": tier.served,
                    "pending": tier.pending,
                    "shards": len(tier.shards),
                },
                host=metrics_host,
                port=metrics_port,
            )
            await server.start()
            from repro.obs.logging import get_logger

            get_logger("service.frontend").info(
                f"metrics endpoint live on {server.url}/metrics"
            )
        try:
            async with tier:
                return await _serve_lines(
                    tier, lines(), emit, deadline=deadline
                )
        finally:
            if server is not None:
                await server.stop()
            if source is not None:
                source.close()

    return asyncio.run(_run())


async def _serve_lines(
    tier: AsyncServingTier,
    lines,
    emit: Callable[[dict], object],
    *,
    deadline: float | None = None,
) -> int:
    """The transport-agnostic request loop: parse, dispatch, drain."""
    served = 0
    tasks: set[asyncio.Task] = set()

    async def handle(payload: dict) -> None:
        try:
            response = await tier.submit_dict(payload, deadline=deadline)
        except ServiceOverloadError as exc:
            response = {
                "error": str(exc),
                "status": "overload",
                "retry_after": exc.retry_after,
            }
        except ServiceTimeoutError as exc:
            response = {
                "error": str(exc),
                "status": "time_limit",
                "fingerprint": exc.fingerprint,
            }
        except ServiceRejectedError as exc:
            response = {
                "error": str(exc),
                "status": "rejected",
                "fingerprint": exc.fingerprint,
            }
        except ServiceError as exc:
            response = {"error": str(exc)}
        if "id" in payload and "id" not in response:
            response["id"] = payload["id"]
        await emit(response)

    async for raw in lines:
        raw = raw.strip()
        if not raw:
            continue
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            await emit({"error": f"bad JSON: {exc}"})
            continue
        if not isinstance(payload, dict):
            await emit({"error": "each line must be a JSON object"})
            continue
        cmd = payload.get("cmd")
        if cmd == "quit":
            break
        if cmd == "metrics":
            await emit({"metrics": tier.snapshot()})
            continue
        if cmd is not None:
            await emit({"error": f"unknown command {cmd!r}"})
            continue
        served += 1
        task = asyncio.create_task(handle(payload))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
    if tasks:
        await asyncio.gather(*tasks)
    return served


def run_requests(
    tier: AsyncServingTier,
    requests: Iterable[SolveRequest],
    *,
    priority: str = DEFAULT_PRIORITY,
    deadline: float | None = None,
) -> list[ServiceResponse]:
    """Convenience: drive the tier from synchronous code, all-concurrent.

    Every request becomes one task on a fresh event loop; the list comes
    back in input order.  Overloads and rejections surface as error
    envelopes, mirroring :class:`~repro.service.batch.BatchExecutor`.
    """

    async def _run() -> list[ServiceResponse]:
        async def one(req: SolveRequest) -> ServiceResponse:
            try:
                return await tier.submit(
                    req, priority=priority, deadline=deadline
                )
            except ServiceOverloadError as exc:
                return ServiceResponse.error(
                    fingerprint=req.fingerprint(),
                    status="overload",
                    message=str(exc),
                    source="rejected",
                )
            except (ServiceTimeoutError, ServiceRejectedError) as exc:
                return ServiceResponse.error(
                    fingerprint=req.fingerprint(),
                    status="rejected",
                    message=str(exc),
                    source="rejected",
                )

        async with tier:
            return list(await asyncio.gather(*(one(r) for r in requests)))

    return asyncio.run(_run())
