"""Experiment runners: one per table/figure of the paper, plus ablations.

Every runner returns a structured result object with a ``render()`` method
that prints the same rows/series the paper reports, side by side with the
paper's published numbers where applicable.  The pytest-benchmark harness in
``benchmarks/`` wraps these runners one-to-one (see DESIGN.md's
per-experiment index).
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
