"""Ablation experiments quantifying the paper's design-choice claims.

* A1 — §III-D objective comparison (min-max vs max-min vs min-sum);
* A2 — §III-E SOS branching vs plain binary branching ("improved the runtime
  of the MINLP solver by two orders of magnitude");
* A3 — §III-A Tsync tolerance sweep ("may actually result in reduced
  performance");
* A4 — §III-E solver scaling ("the MINLP for 40960 nodes took less than 60
  seconds to solve on one core").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm.app import CESMApplication
from repro.cesm.grids import one_degree
from repro.cesm.layouts import Layout, formulate_layout
from repro.core.hslb import HSLBOptimizer
from repro.core.objectives import Objective, evaluate_objective
from repro.experiments.paper_data import BENCHMARK_CAMPAIGN
from repro.fmo.molecules import protein_like
from repro.fmo.schedulers import hslb_schedule
from repro.fmo.simulator import FMOSimulator
from repro.minlp.bnb import BnBOptions
from repro.minlp.nlpbb import solve_minlp_nlpbb
from repro.minlp.oa import solve_minlp_oa
from repro.util.rng import default_rng
from repro.util.tables import format_table
from repro.util.timing import Timer


# ---------------------------------------------------------------- A1


@dataclass
class ObjectiveAblationResult:
    """Realized FMO makespans under each §III-D objective."""

    makespans: dict[Objective, float]
    scores: dict[Objective, dict[str, float]]

    def render(self) -> str:
        rows = [
            [
                obj.value,
                self.makespans[obj],
                self.scores[obj]["min-max"],
                self.scores[obj]["min-sum"],
            ]
            for obj in self.makespans
        ]
        return format_table(
            ["objective", "realized makespan s", "max component s", "sum components s"],
            rows,
            title="A1: objective functions (FMO protein-like, eq. 1-3)",
        )


def run_objective_ablation(
    *, n_fragments: int = 10, total_nodes: int = 192, seed: int = 7
) -> ObjectiveAblationResult:
    """Optimize the same FMO system under each objective and execute.

    MAX_MIN rides the (nonconvex) NLP-based branch-and-bound; a time limit
    keeps the ablation brisk — a good incumbent is all the comparison needs.
    """
    system = protein_like(n_fragments, default_rng(seed))
    sim = FMOSimulator(system)
    makespans: dict[Objective, float] = {}
    scores: dict[Objective, dict[str, float]] = {}
    for objective in Objective:
        options = (
            BnBOptions(time_limit=20.0) if objective is Objective.MAX_MIN else None
        )
        schedule, _ = hslb_schedule(
            system, total_nodes, objective=objective, options=options
        )
        run = sim.execute(schedule, default_rng(seed + 1))
        makespans[objective] = run.makespan
        times = {str(k): v for k, v in run.fragment_times.items()}
        scores[objective] = {
            "min-max": evaluate_objective(Objective.MIN_MAX, times),
            "max-min": evaluate_objective(Objective.MAX_MIN, times),
            "min-sum": evaluate_objective(Objective.MIN_SUM, times),
        }
    return ObjectiveAblationResult(makespans=makespans, scores=scores)


# ---------------------------------------------------------------- A2


@dataclass
class SOSBranchingResult:
    """Solve metrics with and without SOS1 branching."""

    with_sos_time: float
    without_sos_time: float
    with_sos_nodes: int
    without_sos_nodes: int
    objectives_agree: bool

    @property
    def speedup(self) -> float:
        return self.without_sos_time / max(self.with_sos_time, 1e-9)

    @property
    def node_ratio(self) -> float:
        """Tree-size ratio, the machine-independent form of the claim."""
        return self.without_sos_nodes / max(self.with_sos_nodes, 1)

    def render(self) -> str:
        rows = [
            ["SOS1 branching", self.with_sos_time, self.with_sos_nodes],
            ["binary branching", self.without_sos_time, self.without_sos_nodes],
        ]
        table = format_table(
            ["strategy", "solve s", "B&B nodes"],
            rows,
            title="A2: SOS branching vs binary branching (1-degree layout 1)",
        )
        return table + (
            f"\nspeedup = {self.speedup:.1f}x wall, {self.node_ratio:.1f}x tree size; "
            f"objectives agree: {self.objectives_agree}"
        )


def run_sos_branching_ablation(
    *, total_nodes: int = 512, seed: int = 2014, time_limit: float = 120.0
) -> SOSBranchingResult:
    """Solve the 1° layout-1 MINLP with and without SOS-aware branching.

    Uses the paper-literal *value* encoding (one binary per admissible
    count, Table I lines 29–31) for the ocean set: that is the formulation
    whose selection binaries drown plain dichotomy branching and where the
    paper reports SOS branching "improved the runtime of the MINLP solver by
    two orders of magnitude".  (The library's default run-length encoding
    compresses the sets so aggressively that either branching rule is fast —
    a result in its own right, quantified by the benchmark.)
    """
    rng = default_rng(seed)
    app = CESMApplication(one_degree())
    opt = HSLBOptimizer(app)
    suite = opt.gather(BENCHMARK_CAMPAIGN["1deg"], rng)
    fits = opt.fit(suite, rng)
    models = {k: f.model for k, f in fits.items()}
    problem = formulate_layout(
        models, total_nodes, one_degree(), layout=Layout.HYBRID,
        sos_encoding={"ocn": "value"},
    )

    results = {}
    for use_sos in (True, False):
        opts = BnBOptions(
            sos_branching=use_sos, node_limit=200_000, time_limit=time_limit
        )
        with Timer() as t:
            sol = solve_minlp_oa(problem, opts).require_ok()
        results[use_sos] = (t.elapsed, sol)
    return SOSBranchingResult(
        with_sos_time=results[True][0],
        without_sos_time=results[False][0],
        with_sos_nodes=results[True][1].stats.nodes_explored,
        without_sos_nodes=results[False][1].stats.nodes_explored,
        objectives_agree=(
            abs(results[True][1].objective - results[False][1].objective)
            <= 1e-4 * max(1.0, abs(results[True][1].objective))
        ),
    )


# ---------------------------------------------------------------- A3


@dataclass
class TsyncAblationResult:
    """Optimal predicted total vs the Tsync tolerance."""

    tsync_values: tuple[float | None, ...]
    predicted_totals: list[float]

    def render(self) -> str:
        rows = [
            ["inf" if t is None else t, total]
            for t, total in zip(self.tsync_values, self.predicted_totals)
        ]
        return format_table(
            ["Tsync s", "optimal predicted total s"],
            rows,
            title="A3: ice/land synchronization tolerance (1-degree, 128 nodes)",
        )

    def monotone_nonimproving(self) -> bool:
        """Tightening Tsync never improves the optimum (§III-A's warning)."""
        totals = self.predicted_totals
        return all(totals[i] <= totals[i + 1] + 1e-6 for i in range(len(totals) - 1))


def run_tsync_ablation(
    *, total_nodes: int = 128, seed: int = 2014,
    tsync_values: tuple[float | None, ...] = (None, 60.0, 20.0, 5.0, 1.0),
) -> TsyncAblationResult:
    """Sweep Tsync from disabled to tight on the 1° layout-1 model."""
    rng = default_rng(seed)
    app = CESMApplication(one_degree())
    opt = HSLBOptimizer(app)
    suite = opt.gather(BENCHMARK_CAMPAIGN["1deg"], rng)
    fits = opt.fit(suite, rng)
    models = {k: f.model for k, f in fits.items()}

    totals = []
    for tsync in tsync_values:
        problem = formulate_layout(
            models, total_nodes, one_degree(), layout=Layout.HYBRID, tsync=tsync
        )
        if tsync is None:
            sol = solve_minlp_oa(problem).require_ok()
        else:
            sol = solve_minlp_nlpbb(problem, multistart=3, rng=rng).require_ok()
        totals.append(sol.objective)
    return TsyncAblationResult(tsync_values=tsync_values, predicted_totals=totals)


# ---------------------------------------------------------------- A4


@dataclass
class SolverScalingResult:
    """MINLP solve time vs machine size (paper: < 60 s at 40960 nodes)."""

    node_counts: tuple[int, ...]
    solve_seconds: list[float]
    bnb_nodes: list[int]

    def render(self) -> str:
        rows = list(zip(self.node_counts, self.solve_seconds, self.bnb_nodes))
        return format_table(
            ["machine nodes", "solve s", "B&B nodes"],
            rows,
            title="A4: MINLP solve-time scaling (1-degree layout 1)",
        )

    def max_solve_seconds(self) -> float:
        return max(self.solve_seconds)


def run_solver_scaling(
    *,
    node_counts: tuple[int, ...] = (128, 512, 2048, 8192, 40960),
    seed: int = 2014,
) -> SolverScalingResult:
    """Time the layout-1 solve across machine sizes up to full Intrepid."""
    rng = default_rng(seed)
    app = CESMApplication(one_degree())
    opt = HSLBOptimizer(app)
    suite = opt.gather(BENCHMARK_CAMPAIGN["1deg"], rng)
    fits = opt.fit(suite, rng)
    models = {k: f.model for k, f in fits.items()}

    seconds = []
    nodes = []
    for total in node_counts:
        problem = formulate_layout(models, total, one_degree(), layout=Layout.HYBRID)
        with Timer() as t:
            sol = solve_minlp_oa(problem).require_ok()
        seconds.append(t.elapsed)
        nodes.append(sol.stats.nodes_explored)
    return SolverScalingResult(
        node_counts=node_counts, solve_seconds=seconds, bnb_nodes=nodes
    )
