"""Figure 2 reproduction: per-component scaling curves, 1° layout 1.

The figure plots, for each component, the benchmark observations and the
fitted curve ``T_j(n) = a_j/n + b_j n^{c_j} + d_j`` across node counts.  The
runner regenerates exactly that: a benchmark campaign, the four fits (with
their R², which the paper reports as "very close to 1"), and a dense curve
sampling suitable for plotting or tabulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cesm.app import CESMApplication
from repro.cesm.grids import one_degree
from repro.core.hslb import HSLBOptimizer
from repro.experiments.paper_data import BENCHMARK_CAMPAIGN, COMPONENT_ORDER
from repro.perf.fitting import FitResult
from repro.util.rng import default_rng
from repro.util.tables import format_table


@dataclass
class Fig2Series:
    """One component's panel: observations, fit, and sampled curve."""

    component: str
    observed_nodes: np.ndarray
    observed_seconds: np.ndarray
    fit: FitResult
    curve_nodes: np.ndarray
    curve_seconds: np.ndarray


@dataclass
class Fig2Result:
    series: dict[str, Fig2Series]

    def render(self) -> str:
        rows = []
        for comp in COMPONENT_ORDER:
            s = self.series[comp]
            a, b, c, d = s.fit.model.as_tuple()
            rows.append(
                [comp, len(s.observed_nodes), a, b, c, d, s.fit.r_squared]
            )
        table = format_table(
            ["component", "D points", "a", "b", "c", "d", "R^2"],
            rows,
            title="Figure 2: fitted scaling curves, 1-degree layout 1",
            float_fmt=".4g",
        )
        from repro.util.ascii_plot import ascii_plot

        chart = ascii_plot(
            {
                comp: (list(s.curve_nodes), list(s.curve_seconds))
                for comp, s in self.series.items()
            },
            log_x=True,
            log_y=True,
            title="fitted scaling curves (log-log)",
            x_label="nodes",
            y_label="seconds",
        )
        return table + "\n\n" + chart

    def min_r_squared(self) -> float:
        return min(s.fit.r_squared for s in self.series.values())


def run_fig2(*, seed: int = 2014, curve_points: int = 33) -> Fig2Result:
    """Regenerate Figure 2's data (observations + fitted curves)."""
    app = CESMApplication(one_degree())
    rng = default_rng(seed)
    opt = HSLBOptimizer(app)
    suite = opt.gather(BENCHMARK_CAMPAIGN["1deg"], rng)
    fits = opt.fit(suite, rng)

    series = {}
    for comp in COMPONENT_ORDER:
        bench = suite[comp]
        n, y = bench.arrays()
        lo, hi = bench.node_range
        grid = np.unique(
            np.round(np.logspace(np.log10(lo), np.log10(hi), curve_points))
        )
        series[comp] = Fig2Series(
            component=comp,
            observed_nodes=n,
            observed_seconds=y,
            fit=fits[comp],
            curve_nodes=grid,
            curve_seconds=fits[comp].model.time(grid),
        )
    return Fig2Result(series=series)
