"""Fault-injection experiments: what does HSLB lose when the machine lies?

Two artifacts quantify the robustness story (DESIGN.md, "Fault model &
degradation guarantees"):

* F1 — makespan-degradation curves: an FMO/GDDI schedule loses one node
  group at varying points in the run; static re-plan (HSLB's answer) is
  compared against idealized work stealing and against no recovery at all;
* F2 — end-to-end resilient pipeline: CESM 1-degree @ 128 nodes and the
  default FMO scenario run with a 10% benchmark failure rate, stragglers,
  and one mid-run crash; the pipeline must complete and account for every
  degradation it absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.plan import FaultPlan
from repro.util.rng import default_rng
from repro.util.tables import format_table


@dataclass
class FaultDegradationResult:
    """F1: fractional makespan excess per (crash fraction, strategy)."""

    fractions: tuple[float, ...]
    degradation: dict[str, list[float]]  # strategy -> one value per fraction
    fault_free_makespan: float
    n_fragments: int
    n_groups: int
    crash_group: int

    def worst(self, strategy: str) -> float:
        return max(self.degradation[strategy])

    def render(self) -> str:
        strategies = list(self.degradation)
        rows = [
            [f"{frac:.0%}"] + [100.0 * self.degradation[s][i] for s in strategies]
            for i, frac in enumerate(self.fractions)
        ]
        table = format_table(
            ["crash at"] + [f"{s} +%" for s in strategies],
            rows,
            title=(
                f"F1: makespan degradation after losing group "
                f"{self.crash_group}/{self.n_groups} "
                f"({self.n_fragments} fragments)"
            ),
        )
        return table + (
            f"\nfault-free makespan: {self.fault_free_makespan:.2f} s; "
            f"worst static re-plan: +{100 * self.worst('replan'):.1f}%"
        )


def run_fault_degradation(
    *,
    n_fragments: int = 16,
    total_nodes: int = 64,
    n_groups: int = 4,
    crash_group: int = 0,
    fractions: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    seed: int = 2012,
) -> FaultDegradationResult:
    """F1: sweep the crash time over the run; compare recovery strategies."""
    from repro.fmo.molecules import water_cluster
    from repro.fmo.recovery import degradation_curve
    from repro.fmo.schedulers import greedy_dynamic_schedule
    from repro.fmo.simulator import FMOSimulator

    system = water_cluster(n_fragments, default_rng(seed))
    sim = FMOSimulator(system)
    schedule = greedy_dynamic_schedule(system, total_nodes, n_groups)
    curves = degradation_curve(
        sim, schedule, crash_group=crash_group, fractions=fractions, seed=seed
    )
    degradation = {
        strategy: [o.degradation for o in outcomes]
        for strategy, outcomes in curves.items()
    }
    fault_free = curves["replan"][0].fault_free_makespan
    return FaultDegradationResult(
        fractions=fractions,
        degradation=degradation,
        fault_free_makespan=fault_free,
        n_fragments=n_fragments,
        n_groups=schedule.n_groups,
        crash_group=crash_group,
    )


@dataclass
class FaultPipelineResult:
    """F2: both flagship scenarios surviving injected faults end to end."""

    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def tiers(self) -> dict[str, str]:
        return {str(r[0]): str(r[2]) for r in self.rows}

    def render(self) -> str:
        table = format_table(
            ["scenario", "completed", "solver tier", "degraded", "makespan s"],
            self.rows,
            title="F2: end-to-end pipeline under injected faults",
        )
        return table + "".join(f"\n{n}" for n in self.notes)


def run_fault_pipeline(
    *,
    fail_rate: float = 0.10,
    straggler_rate: float = 0.05,
    seed: int = 2012,
) -> FaultPipelineResult:
    """F2: CESM 1deg-128 and the default FMO scenario, faults injected."""
    from repro.cesm.app import CESMApplication
    from repro.cesm.grids import one_degree
    from repro.core.hslb import HSLBOptimizer
    from repro.experiments.paper_data import BENCHMARK_CAMPAIGN
    from repro.fmo.app import FMOApplication
    from repro.fmo.molecules import protein_like

    out = FaultPipelineResult()

    plan = FaultPlan(
        seed=seed,
        fail_rate=fail_rate,
        straggler_rate=straggler_rate,
        crash_component="ocn",
    )
    app = CESMApplication(one_degree(), faults=plan)
    result = HSLBOptimizer(app).run(BENCHMARK_CAMPAIGN["1deg"], 128, default_rng(seed))
    out.rows.append(
        [
            "cesm-1deg-128",
            "yes",
            result.solver_tier,
            "yes" if result.degraded else "no",
            result.execution.total_time,
        ]
    )
    if result.gather_report is not None and result.gather_report.degraded:
        out.notes.append("cesm " + result.gather_report.summary())
    if result.recovery is not None:
        out.notes.append("cesm " + result.recovery.summary())

    fmo_plan = FaultPlan(
        seed=seed,
        fail_rate=fail_rate,
        straggler_rate=straggler_rate,
        crash_group=0,
    )
    fmo_app = FMOApplication(
        protein_like(12, default_rng(seed)), faults=fmo_plan
    )
    fmo_result = HSLBOptimizer(fmo_app).run(
        (1, 2, 4, 8, 16), 256, default_rng(seed)
    )
    meta = fmo_result.execution.metadata
    out.rows.append(
        [
            "fmo-protein-12-256",
            "yes",
            fmo_result.solver_tier,
            "yes" if (fmo_result.degraded or "crash_group" in meta) else "no",
            fmo_result.execution.total_time,
        ]
    )
    if fmo_result.gather_report is not None and fmo_result.gather_report.degraded:
        out.notes.append("fmo " + fmo_result.gather_report.summary())
    if "crash_group" in meta:
        out.notes.append(
            f"fmo group {meta['crash_group']} crashed at "
            f"{meta['crash_time']:.2f}s; {meta['recovery_strategy']} recovery, "
            f"makespan +{100 * meta['makespan_degradation']:.1f}% vs fault-free"
        )
    return out
