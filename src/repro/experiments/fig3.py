"""Figure 3 reproduction: 1/8° totals — "human" guess vs HSLB predicted vs
HSLB actual, at 8192 and 32768 nodes (constrained and unconstrained ocean).

The figure summarizes the 1/8° blocks of Table III as grouped bars; the
runner reuses the Table III machinery and emits the same series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.paper_data import TABLE3
from repro.experiments.table3 import Table3Result, run_table3_block
from repro.util.tables import format_table

_FIG3_KEYS = (
    "eighth-8192",
    "eighth-32768",
    "eighth-8192-freeocn",
    "eighth-32768-freeocn",
)


@dataclass
class Fig3Result:
    blocks: dict[str, Table3Result]

    def series(self) -> dict[str, dict[str, float]]:
        """The three bar series, keyed like the paper's legend."""
        out: dict[str, dict[str, float]] = {"human": {}, "predicted": {}, "actual": {}}
        for key, block in self.blocks.items():
            out["human"][key] = block.manual_total
            out["predicted"][key] = block.hslb.predicted_total
            out["actual"][key] = block.hslb.actual_total
        return out

    def render(self) -> str:
        rows = []
        for key in _FIG3_KEYS:
            b = self.blocks[key]
            paper = TABLE3[key]
            rows.append(
                [
                    key,
                    b.manual_total,
                    b.hslb.predicted_total,
                    b.hslb.actual_total,
                    paper.hslb_pred_total,
                    paper.hslb_actual_total,
                ]
            )
        return format_table(
            ["case", "human s", "HSLB pred s", "HSLB actual s",
             "paper pred s", "paper actual s"],
            rows,
            title="Figure 3: 1/8-degree totals, human vs HSLB",
            float_fmt=".1f",
        )


def run_fig3(*, seed: int = 2014) -> Fig3Result:
    return Fig3Result(
        blocks={key: run_table3_block(key, seed=seed) for key in _FIG3_KEYS}
    )
