"""Online-rebalancing experiments: static vs. dynamic vs. two-level hybrid.

Two artifacts extend the paper's static story into the dynamic regime
(DESIGN.md, "Online rebalancing"):

* ``dynlb-comparison`` — every strategy over one drifting scenario: total
  simulated seconds, improvement over the frozen HSLB plan, and the
  migration audit (applied / gated counts, stall seconds, refits);
* ``dynlb-drift-sweep`` — the static-vs-hybrid gap as a function of the
  drift *shape*, answering "how much drift before re-tuning pays?".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dynlb import (
    DynlbConfig,
    DynlbRunResult,
    cesm_workload,
    compare_strategies,
    fmo_workload,
)
from repro.util.tables import format_table


@dataclass
class DynlbComparisonResult:
    """One scenario, every strategy: the headline static-vs-dynamic table."""

    workload: str
    results: dict[str, DynlbRunResult]

    def improvement(self, strategy: str) -> float:
        """Fractional total-time gain over the frozen static plan."""
        static = self.results["static"].total_seconds
        return (static - self.results[strategy].total_seconds) / static

    def render(self) -> str:
        rows = []
        for name, r in self.results.items():
            vs = "-" if name == "static" else f"{100 * self.improvement(name):+.1f}%"
            rows.append(
                [
                    name,
                    f"{r.total_seconds:.1f}",
                    vs,
                    r.migrations,
                    r.gated,
                    f"{r.migration_seconds:.1f}",
                    r.refits_scale + r.refits_full,
                ]
            )
        return format_table(
            ["strategy", "total s", "vs static", "migrations", "gated",
             "stall s", "refits"],
            rows,
            title=f"Online rebalancing: {self.workload}",
        )


def run_dynlb_comparison(
    *,
    scenario: str = "cesm",
    total_nodes: int = 96,
    steps: int = 40,
    fragments: int = 8,
    drift: str = "linear",
    drift_rate: float = 0.8,
    interval: int = 8,
    seed: int = 7,
) -> DynlbComparisonResult:
    """All five strategies over identical drift, noise, and imbalance draws."""
    if scenario == "cesm":
        workload = cesm_workload(
            total_nodes=total_nodes, steps=steps, drift=drift,
            drift_rate=drift_rate, seed=seed,
        )
    elif scenario == "fmo":
        workload = fmo_workload(
            fragments=fragments, total_nodes=total_nodes, steps=steps,
            drift=drift, drift_rate=drift_rate, seed=seed,
        )
    else:
        raise ValueError(f"unknown scenario {scenario!r}; expected cesm or fmo")
    results = compare_strategies(workload, config=DynlbConfig(interval=interval))
    return DynlbComparisonResult(workload=workload.describe(), results=results)


@dataclass
class DynlbDriftSweepResult:
    """Static-vs-dynamic gap across drift shapes (the "when to re-tune" map)."""

    rows: list[list[object]]

    def render(self) -> str:
        return format_table(
            ["drift", "static s", "hslb +%", "two-level +%", "migrations"],
            self.rows,
            title="Rebalancing gain vs. drift shape (CESM 1-degree)",
        )


def run_dynlb_drift_sweep(
    *,
    total_nodes: int = 96,
    steps: int = 40,
    drift_rate: float = 0.8,
    interval: int = 8,
    seed: int = 7,
) -> DynlbDriftSweepResult:
    """Sweep the drift shape; report each dynamic strategy's gain over static."""
    rows: list[list[object]] = []
    for drift in ("none", "linear", "step", "walk"):
        workload = cesm_workload(
            total_nodes=total_nodes, steps=steps, drift=drift,
            drift_rate=drift_rate, seed=seed,
        )
        results = compare_strategies(
            workload, ("static", "hslb", "two-level"),
            DynlbConfig(interval=interval),
        )
        static = results["static"].total_seconds
        rows.append(
            [
                drift,
                f"{static:.1f}",
                f"{100 * (static - results['hslb'].total_seconds) / static:+.1f}",
                f"{100 * (static - results['two-level'].total_seconds) / static:+.1f}",
                sum(r.migrations for r in results.values()),
            ]
        )
    return DynlbDriftSweepResult(rows=rows)
