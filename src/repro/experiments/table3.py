"""Table III reproduction: manual vs HSLB, six blocks.

For each block the runner:

1. builds the resolution's CESM application (constrained or free ocean);
2. executes the paper's *published manual allocation* in the simulator to
   produce the manual columns (for the free-ocean blocks, which have no
   manual column in the paper, the constrained block's manual row is used
   as the comparison baseline, as the paper's §IV-B prose does);
3. runs the full HSLB pipeline (gather -> fit -> solve -> execute);
4. renders our block next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm.app import CESMApplication
from repro.cesm.grids import eighth_degree, one_degree
from repro.core.hslb import HSLBOptimizer, HSLBResult
from repro.core.spec import Allocation, ExecutionResult
from repro.experiments.paper_data import (
    BENCHMARK_CAMPAIGN,
    COMPONENT_ORDER,
    TABLE3,
    PaperTable3Block,
)
from repro.util.rng import default_rng
from repro.util.tables import format_table


@dataclass
class Table3Result:
    """Our reproduction of one Table III block, with the paper's numbers."""

    paper: PaperTable3Block
    manual_allocation: Allocation
    manual_execution: ExecutionResult
    hslb: HSLBResult

    @property
    def manual_total(self) -> float:
        return self.manual_execution.total_time

    @property
    def improvement_pct(self) -> float:
        """Actual HSLB improvement over the manual baseline."""
        return 100.0 * (1.0 - self.hslb.actual_total / self.manual_total)

    def render(self) -> str:
        headers = [
            "component",
            "manual nodes",
            "manual s",
            "HSLB nodes",
            "pred s",
            "actual s",
            "paper pred s",
            "paper act s",
        ]
        rows = []
        for comp in COMPONENT_ORDER:
            rows.append(
                [
                    comp,
                    self.manual_allocation[comp],
                    self.manual_execution.component_times[comp],
                    self.hslb.allocation[comp],
                    self.hslb.predicted_times[comp],
                    self.hslb.actual_times[comp],
                    self.paper.hslb_pred_times[comp],
                    self.paper.hslb_actual_times[comp],
                ]
            )
        rows.append(
            [
                "TOTAL",
                "",
                self.manual_total,
                "",
                self.hslb.predicted_total,
                self.hslb.actual_total,
                self.paper.hslb_pred_total,
                self.paper.hslb_actual_total,
            ]
        )
        title = (
            f"Table III [{self.paper.key}]: {self.paper.resolution} @ "
            f"{self.paper.total_nodes} nodes"
            + ("" if self.paper.constrained_ocean else " (unconstrained ocean)")
        )
        return format_table(headers, rows, title=title, float_fmt=".1f")


def config_for(block: PaperTable3Block):
    if block.resolution == "1deg":
        return one_degree()
    return eighth_degree(constrained_ocean=block.constrained_ocean)


def manual_baseline_for(block: PaperTable3Block) -> Allocation:
    """The paper's manual allocation for this block (constrained twin for
    the free-ocean blocks, which Table III leaves blank)."""
    if block.manual_nodes is not None:
        return Allocation(block.manual_nodes)
    twin = TABLE3[block.key.replace("-freeocn", "")]
    return Allocation(twin.manual_nodes)


def run_table3_block(key: str, *, seed: int = 2014) -> Table3Result:
    """Reproduce one Table III block end to end."""
    if key not in TABLE3:
        raise KeyError(f"unknown Table III block {key!r}; have {sorted(TABLE3)}")
    block = TABLE3[key]
    app = CESMApplication(config_for(block))
    rng = default_rng(seed)

    manual_alloc = manual_baseline_for(block)
    manual_exec = app.simulator.execute(manual_alloc, default_rng(seed + 1))

    opt = HSLBOptimizer(app)
    hslb = opt.run(
        BENCHMARK_CAMPAIGN[block.resolution], block.total_nodes, rng
    )
    return Table3Result(
        paper=block,
        manual_allocation=manual_alloc,
        manual_execution=manual_exec,
        hslb=hslb,
    )


def run_full_table3(*, seed: int = 2014) -> dict[str, Table3Result]:
    """All six blocks (reusing one seed family for reproducibility)."""
    return {key: run_table3_block(key, seed=seed) for key in TABLE3}
