"""Experiment registry: name -> runner, for the CLI and the bench harness."""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments import (
    ablations,
    cost,
    dynlb_experiments,
    extensions,
    faults,
    fig2,
    fig3,
    fig4,
    fmo_experiments,
    predictions,
    robustness,
    table3,
)
from repro.obs.logging import get_logger
from repro.obs.trace import span

#: Every reproducible artifact, keyed by the DESIGN.md experiment id.
EXPERIMENTS: dict[str, Callable[..., object]] = {
    "table3-1deg-128": lambda **kw: table3.run_table3_block("1deg-128", **kw),
    "table3-1deg-2048": lambda **kw: table3.run_table3_block("1deg-2048", **kw),
    "table3-eighth-8192": lambda **kw: table3.run_table3_block("eighth-8192", **kw),
    "table3-eighth-32768": lambda **kw: table3.run_table3_block("eighth-32768", **kw),
    "table3-eighth-8192-freeocn": lambda **kw: table3.run_table3_block(
        "eighth-8192-freeocn", **kw
    ),
    "table3-eighth-32768-freeocn": lambda **kw: table3.run_table3_block(
        "eighth-32768-freeocn", **kw
    ),
    "fig2": fig2.run_fig2,
    "fig3": fig3.run_fig3,
    "fig4": fig4.run_fig4,
    "ablation-objectives": ablations.run_objective_ablation,
    "ablation-sos": ablations.run_sos_branching_ablation,
    "ablation-tsync": ablations.run_tsync_ablation,
    "solver-scaling": ablations.run_solver_scaling,
    "fmo-comparison": fmo_experiments.run_fmo_comparison,
    "fmo-pipeline": fmo_experiments.run_fmo_pipeline,
    "fmo-speedup": fmo_experiments.run_fmo_speedup,
    "fmo-two-phase": fmo_experiments.run_fmo_two_phase,
    "fmo-diversity": fmo_experiments.run_fmo_diversity_sweep,
    "predict-job-size": predictions.run_job_size_prediction,
    "predict-component-swap": predictions.run_component_swap_prediction,
    "predict-new-hardware": predictions.run_new_hardware_prediction,
    "robustness-noise": robustness.run_noise_sweep,
    "robustness-outliers": robustness.run_outlier_robustness,
    "faults-degradation": faults.run_fault_degradation,
    "faults-pipeline": faults.run_fault_pipeline,
    "dynlb-comparison": dynlb_experiments.run_dynlb_comparison,
    "dynlb-drift-sweep": dynlb_experiments.run_dynlb_drift_sweep,
    "ext-ice-decomposition": extensions.run_ice_decomposition,
    "ext-tasking": extensions.run_tasking_tuning,
    "tuning-cost": cost.run_tuning_cost,
}


def run_experiment(name: str, **kwargs) -> object:
    """Run a registered experiment and return its result object.

    Every result has a ``render()`` method producing the paper-style table.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        ) from None
    log = get_logger("experiments")
    log.info(f"running experiment {name}")
    with span("experiment", experiment=name):
        result = runner(**kwargs)
    log.debug(f"experiment {name} finished")
    return result
