"""Figure 4 reproduction: predicted scaling of layouts 1–3 at 1° resolution.

The paper built models for all three layouts but only ran layout 1; Figure 4
plots the *predicted* optimal total time of each layout across machine
sizes, plus the experimental layout-1 points ("layout (1exp)"), reporting
R² = 1.0 between layout-1 prediction and experiment.

The runner solves the three layout MINLPs at each machine size from one
shared set of fitted curves, executes the layout-1 allocation for the
experimental series, and computes the same R².
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cesm.app import CESMApplication
from repro.cesm.grids import one_degree
from repro.cesm.layouts import Layout
from repro.core.hslb import HSLBOptimizer
from repro.experiments.paper_data import BENCHMARK_CAMPAIGN
from repro.util.rng import default_rng
from repro.util.tables import format_table

FIG4_NODE_COUNTS = (128, 256, 512, 1024, 2048)


@dataclass
class Fig4Result:
    node_counts: tuple[int, ...]
    predicted: dict[Layout, list[float]]
    experimental_layout1: list[float]

    def r_squared_layout1(self) -> float:
        """R² between predicted and experimental layout-1 series."""
        pred = np.array(self.predicted[Layout.HYBRID])
        exp = np.array(self.experimental_layout1)
        ss_res = float(np.sum((exp - pred) ** 2))
        ss_tot = float(np.sum((exp - exp.mean()) ** 2))
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0

    def render(self) -> str:
        rows = []
        for i, n in enumerate(self.node_counts):
            rows.append(
                [
                    n,
                    self.predicted[Layout.HYBRID][i],
                    self.predicted[Layout.SEQUENTIAL_GROUP][i],
                    self.predicted[Layout.FULLY_SEQUENTIAL][i],
                    self.experimental_layout1[i],
                ]
            )
        table = format_table(
            ["nodes", "layout1 pred", "layout2 pred", "layout3 pred", "layout1 exp"],
            rows,
            title="Figure 4: layout scaling at 1 degree",
            float_fmt=".1f",
        )
        from repro.util.ascii_plot import ascii_plot

        chart = ascii_plot(
            {
                "layout1": (list(self.node_counts), self.predicted[Layout.HYBRID]),
                "layout2": (
                    list(self.node_counts),
                    self.predicted[Layout.SEQUENTIAL_GROUP],
                ),
                "layout3": (
                    list(self.node_counts),
                    self.predicted[Layout.FULLY_SEQUENTIAL],
                ),
                "layout1exp": (list(self.node_counts), self.experimental_layout1),
            },
            log_x=True,
            log_y=True,
            title="layout scaling (log-log)",
            x_label="nodes",
            y_label="seconds",
        )
        return (
            table
            + f"\nR^2(layout1 pred vs exp) = {self.r_squared_layout1():.4f}\n\n"
            + chart
        )


def run_fig4(*, seed: int = 2014) -> Fig4Result:
    rng = default_rng(seed)
    base_app = CESMApplication(one_degree())
    opt = HSLBOptimizer(base_app)
    suite = opt.gather(BENCHMARK_CAMPAIGN["1deg"], rng)
    fits = opt.fit(suite, rng)

    predicted: dict[Layout, list[float]] = {layout: [] for layout in Layout}
    experimental: list[float] = []
    for total in FIG4_NODE_COUNTS:
        for layout in Layout:
            app = CESMApplication(one_degree(), layout=layout)
            layout_opt = HSLBOptimizer(app)
            result = layout_opt.run_from_fits(
                fits, total, default_rng(seed + total), execute=(layout is Layout.HYBRID)
            )
            predicted[layout].append(result.predicted_total)
            if layout is Layout.HYBRID:
                experimental.append(result.actual_total)
    return Fig4Result(
        node_counts=FIG4_NODE_COUNTS,
        predicted=predicted,
        experimental_layout1=experimental,
    )
