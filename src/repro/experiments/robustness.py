"""Robustness experiments: how fragile is HSLB to bad benchmark data?

§IV: "The weakest part of the HSLB algorithm, in our opinion, is obtaining
the actual performance data for fitting."  Two experiments quantify that:

* R1 — noise sweep: gather-campaign noise from 0 to 20%, measuring how far
  the resulting allocation's *true* makespan drifts from the noise-free
  optimum (the metric that matters: a noisy fit is harmless if the chosen
  allocation is still near-optimal);
* R2 — outlier injection with plain vs robust (Huber) fitting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cesm.app import CESMApplication
from repro.cesm.components import GroundTruthComponent
from repro.cesm.grids import CESMConfiguration, one_degree
from repro.cesm.layouts import Layout, layout_total_time
from repro.core.hslb import HSLBConfig, HSLBOptimizer
from repro.core.spec import Allocation
from repro.experiments.paper_data import BENCHMARK_CAMPAIGN
from repro.util.rng import default_rng
from repro.util.tables import format_table


def _with_noise(config: CESMConfiguration, noise: float) -> CESMConfiguration:
    scaled = {
        name: GroundTruthComponent(
            name=gt.name,
            model=gt.model,
            noise=noise,
            decomposition_sensitivity=gt.decomposition_sensitivity,
            sweet_spots=gt.sweet_spots,
        )
        for name, gt in config.ground_truth.items()
    }
    return replace(config, ground_truth=scaled)


def _true_makespan(config: CESMConfiguration, allocation: Allocation) -> float:
    """Noise-free layout-1 makespan of an allocation (the quality oracle)."""
    times = {
        comp: config.ground_truth[comp].true_time(allocation[comp])
        for comp in ("lnd", "ice", "atm", "ocn")
    }
    return layout_total_time(Layout.HYBRID, times)


@dataclass
class NoiseSweepResult:
    """R1: allocation quality vs gather noise."""

    noise_levels: tuple[float, ...]
    true_makespans: list[float]
    reference_makespan: float  # noise-free-gather allocation's true makespan

    def regret(self) -> list[float]:
        """Fractional excess true makespan vs the noise-free reference."""
        return [
            t / self.reference_makespan - 1.0 for t in self.true_makespans
        ]

    def render(self) -> str:
        rows = [
            [f"{n:.0%}", t, 100.0 * r]
            for n, t, r in zip(self.noise_levels, self.true_makespans, self.regret())
        ]
        table = format_table(
            ["gather noise", "true makespan s", "regret %"],
            rows,
            title="R1: allocation quality vs benchmark noise (1-degree, 128 nodes)",
        )
        return table + f"\nnoise-free reference: {self.reference_makespan:.1f} s"


def run_noise_sweep(
    *,
    total_nodes: int = 128,
    noise_levels: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10, 0.20),
    seed: int = 2014,
) -> NoiseSweepResult:
    """R1: sweep the gather campaign's noise level."""
    makespans = []
    reference = None
    for noise in noise_levels:
        config = _with_noise(one_degree(), noise)
        app = CESMApplication(config)
        result = HSLBOptimizer(app).run(
            BENCHMARK_CAMPAIGN["1deg"], total_nodes, default_rng(seed), execute=False
        )
        true_time = _true_makespan(config, result.allocation)
        makespans.append(true_time)
        if noise == 0.0:
            reference = true_time
    if reference is None:
        # No zero-noise level swept: use the best observed as reference.
        reference = min(makespans)
    return NoiseSweepResult(
        noise_levels=noise_levels,
        true_makespans=makespans,
        reference_makespan=reference,
    )


@dataclass
class OutlierRobustnessResult:
    """R2: plain vs Huber fitting under outlier contamination."""

    plain_regret: float
    huber_regret: float
    plain_prediction_error: float
    huber_prediction_error: float

    def render(self) -> str:
        rows = [
            ["least squares", 100 * self.plain_regret, 100 * self.plain_prediction_error],
            ["huber", 100 * self.huber_regret, 100 * self.huber_prediction_error],
        ]
        return format_table(
            ["fit loss", "allocation regret %", "fit error % @ probe"],
            rows,
            title="R2: outlier contamination, plain vs robust fitting",
        )


def run_outlier_robustness(
    *,
    total_nodes: int = 128,
    outlier_prob: float = 0.18,
    seed: int = 31,
) -> OutlierRobustnessResult:
    """R2: contaminate the gather campaign; compare fit losses."""
    config = one_degree()
    reference = None
    stats = {}
    for loss in ("linear", "huber"):
        app = CESMApplication(
            config,
            outlier_prob=outlier_prob,
            outlier_scale=4.0,
            benchmark_runs_per_count=2,
        )
        opt = HSLBOptimizer(app, HSLBConfig(fit_loss=loss))
        rng = default_rng(seed)
        suite = opt.gather(BENCHMARK_CAMPAIGN["1deg"], rng)
        fits = opt.fit(suite, rng)
        allocation, _ = opt.solve(fits, total_nodes, rng)
        true_time = _true_makespan(config, allocation)
        fit_errors = []
        for comp, fit in fits.items():
            truth = config.ground_truth[comp].true_time(100)
            fit_errors.append(abs(float(fit.model.time(100)) - truth) / truth)
        stats[loss] = (true_time, float(np.mean(fit_errors)))
    # Noise-free reference optimum for regret.
    clean_app = CESMApplication(_with_noise(config, 0.0))
    clean = HSLBOptimizer(clean_app).run(
        BENCHMARK_CAMPAIGN["1deg"], total_nodes, default_rng(seed), execute=False
    )
    reference = _true_makespan(config, clean.allocation)
    return OutlierRobustnessResult(
        plain_regret=stats["linear"][0] / reference - 1.0,
        huber_regret=stats["huber"][0] / reference - 1.0,
        plain_prediction_error=stats["linear"][1],
        huber_prediction_error=stats["huber"][1],
    )
