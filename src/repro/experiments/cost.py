"""C1 — the cost of tuning: manual trial-and-error vs HSLB.

§II: the manual process "may involve trial and error ... This can be an
expensive process and can consume a significant amount of both person and
computer time, especially at high resolutions."  §IV: "five to ten
iterations which involves building the model, submitting to a queue, and
waiting."

This experiment accounts for that cost in core-hours and queue round-trips:

* both approaches pay for the same scaling campaign (the paper notes the
  manual procedure "has a similar first step");
* the manual expert then burns one full execution per candidate layout;
* HSLB burns solver seconds (a single core) plus one validation execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm.app import CESMApplication
from repro.cesm.grids import CORES_PER_NODE, one_degree
from repro.cesm.manual import manual_optimization
from repro.core.hslb import HSLBOptimizer
from repro.experiments.paper_data import BENCHMARK_CAMPAIGN
from repro.util.rng import default_rng
from repro.util.tables import format_table


@dataclass
class TuningCostResult:
    """Core-hours and queue submissions spent by each approach."""

    total_nodes: int
    campaign_core_hours: float
    manual_trial_core_hours: float
    manual_submissions: int
    manual_total_seconds: float
    hslb_solver_seconds: float
    hslb_validation_core_hours: float
    hslb_total_seconds: float

    @property
    def manual_tuning_cost(self) -> float:
        return self.campaign_core_hours + self.manual_trial_core_hours

    @property
    def hslb_tuning_cost(self) -> float:
        return self.campaign_core_hours + self.hslb_validation_core_hours

    @property
    def saved_core_hours(self) -> float:
        return self.manual_tuning_cost - self.hslb_tuning_cost

    def render(self) -> str:
        rows = [
            [
                "manual",
                self.campaign_core_hours,
                self.manual_trial_core_hours,
                self.manual_submissions,
                self.manual_total_seconds,
            ],
            [
                "HSLB",
                self.campaign_core_hours,
                self.hslb_validation_core_hours,
                1,
                self.hslb_total_seconds,
            ],
        ]
        table = format_table(
            [
                "approach",
                "campaign core-h",
                "tuning core-h",
                "queue submissions",
                "resulting total s",
            ],
            rows,
            title=f"C1: cost of tuning (1-degree @ {self.total_nodes} nodes)",
            float_fmt=".1f",
        )
        return table + (
            f"\nHSLB solver time: {self.hslb_solver_seconds:.2f} s on one core; "
            f"tuning core-hours saved: {self.saved_core_hours:.1f}"
        )


def _core_hours(nodes: int, seconds: float) -> float:
    return nodes * CORES_PER_NODE * seconds / 3600.0


def run_tuning_cost(*, total_nodes: int = 128, seed: int = 2014) -> TuningCostResult:
    app = CESMApplication(one_degree())
    rng = default_rng(seed)
    campaign = BENCHMARK_CAMPAIGN["1deg"]

    # Shared first step: the scaling campaign.
    opt = HSLBOptimizer(app)
    suite = opt.gather(campaign, rng)
    campaign_core_hours = 0.0
    # Each campaign run occupies its machine size for roughly the observed
    # makespan; approximate with the slowest component at that size.
    for total in campaign:
        split = app.simulator.default_split(total)
        worst = max(
            app.simulator.true_component_time(comp, split[comp])
            for comp in split.components
        )
        campaign_core_hours += _core_hours(total, worst)

    # Manual: trial executions.
    manual = manual_optimization(app.simulator, total_nodes, default_rng(seed + 1))
    manual_trial_core_hours = manual.executions_burned * _core_hours(
        total_nodes, manual.execution.total_time
    )

    # HSLB: fit + solve (single core) + one validation run.
    fits = opt.fit(suite, rng)
    result = opt.run_from_fits(fits, total_nodes, rng)
    validation_core_hours = _core_hours(total_nodes, result.actual_total)

    return TuningCostResult(
        total_nodes=total_nodes,
        campaign_core_hours=campaign_core_hours,
        manual_trial_core_hours=manual_trial_core_hours,
        manual_submissions=manual.executions_burned,
        manual_total_seconds=manual.execution.total_time,
        hslb_solver_seconds=result.solution.stats.wall_time,
        hslb_validation_core_hours=validation_core_hours,
        hslb_total_seconds=result.actual_total,
    )
