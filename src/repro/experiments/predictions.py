"""§IV-C prediction experiments (the paper's forward-looking applications).

* P1 — optimal job size: cost-efficient vs shortest-time machine sizes for
  the 1° configuration ("it could be a cost-efficient goal where nodes are
  increased until scaling is reduced to a predefined limit or it could be
  the shortest time to solution");
* P2 — component swap: predicted effect of replacing the ocean model with a
  2x-more-scalable rewrite ("how replacing one component with another will
  affect scaling").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cesm.app import CESMApplication
from repro.cesm.grids import one_degree
from repro.cesm.layouts import Layout, formulate_layout
from repro.core.hslb import HSLBOptimizer
from repro.core.predictor import (
    JobSizeRecommendation,
    ScalingSweep,
    component_swap_effect,
    optimal_job_size,
)
from repro.experiments.paper_data import BENCHMARK_CAMPAIGN
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng
from repro.util.tables import format_table

JOB_SIZE_SWEEP = (64, 128, 256, 512, 1024, 2048, 4096)


def _fitted_models(seed: int) -> dict[str, PerformanceModel]:
    rng = default_rng(seed)
    app = CESMApplication(one_degree())
    opt = HSLBOptimizer(app)
    suite = opt.gather(BENCHMARK_CAMPAIGN["1deg"], rng)
    return {k: f.model for k, f in opt.fit(suite, rng).items()}


def _formulator(models, total_nodes):
    return formulate_layout(models, total_nodes, one_degree(), layout=Layout.HYBRID)


@dataclass
class JobSizeResult:
    recommendation: JobSizeRecommendation

    def render(self) -> str:
        return "P1: optimal job size (1-degree, layout 1)\n" + self.recommendation.render()


def run_job_size_prediction(
    *, seed: int = 2014, efficiency_floor: float = 0.5
) -> JobSizeResult:
    models = _fitted_models(seed)
    rec = optimal_job_size(
        models, _formulator, JOB_SIZE_SWEEP, efficiency_floor=efficiency_floor
    )
    return JobSizeResult(recommendation=rec)


@dataclass
class ComponentSwapResult:
    baseline: ScalingSweep
    swapped: ScalingSweep
    swapped_component: str

    def improvement_at(self, index: int) -> float:
        return 1.0 - self.swapped.totals[index] / self.baseline.totals[index]

    def render(self) -> str:
        rows = [
            [n, b, s, 100.0 * (1.0 - s / b)]
            for n, b, s in zip(
                self.baseline.node_counts, self.baseline.totals, self.swapped.totals
            )
        ]
        return format_table(
            ["nodes", "baseline s", f"swapped {self.swapped_component} s", "gain %"],
            rows,
            title="P2: predicted effect of a 2x-more-scalable ocean rewrite",
            float_fmt=".1f",
        )


@dataclass
class NewHardwareResult:
    """P3: predicted scaling of the balanced job on a sketched new machine."""

    machine_name: str
    node_counts: tuple[int, ...]
    intrepid_totals: tuple[float, ...]
    new_machine_totals: tuple[float, ...]
    serial_ceiling_shift: float

    def speedups(self) -> list[float]:
        return [
            i / n for i, n in zip(self.intrepid_totals, self.new_machine_totals)
        ]

    def render(self) -> str:
        rows = [
            [n, i, t, s]
            for n, i, t, s in zip(
                self.node_counts,
                self.intrepid_totals,
                self.new_machine_totals,
                self.speedups(),
            )
        ]
        table = format_table(
            ["nodes", "Intrepid s", f"{self.machine_name} s", "speedup"],
            rows,
            title="P3: predicted CESM scaling on new hardware (§IV-C, 'less reliable')",
            float_fmt=".1f",
        )
        return table + (
            f"\nserial-floor ceiling moved only {self.serial_ceiling_shift:.0f}x "
            "(the machine's serial speedup), not the 80x compute headline — "
            "Amdahl guards the exascale what-if."
        )


def run_new_hardware_prediction(*, seed: int = 2014) -> NewHardwareResult:
    """P3: transplant the fitted 1° curves onto the exascale sketch."""
    from repro.cesm.machines import EXASCALE_SKETCH
    from repro.core.predictor import sweep_machine_sizes

    models = _fitted_models(seed)
    counts = (128, 256, 512, 1024, 2048)
    base = sweep_machine_sizes(models, _formulator, counts)
    new_models = EXASCALE_SKETCH.transform_all(models)
    new = sweep_machine_sizes(new_models, _formulator, counts)
    return NewHardwareResult(
        machine_name=EXASCALE_SKETCH.name,
        node_counts=base.node_counts,
        intrepid_totals=base.totals,
        new_machine_totals=new.totals,
        serial_ceiling_shift=EXASCALE_SKETCH.serial_speedup,
    )


def run_component_swap_prediction(*, seed: int = 2014) -> ComponentSwapResult:
    models = _fitted_models(seed)
    ocn = models["ocn"]
    rewrite = PerformanceModel(a=ocn.a / 2.0, b=ocn.b, c=ocn.c, d=ocn.d / 2.0)
    baseline, swapped = component_swap_effect(
        models,
        _formulator,
        (128, 256, 512, 1024, 2048),
        replace={"ocn": rewrite},
    )
    return ComponentSwapResult(
        baseline=baseline, swapped=swapped, swapped_component="ocn"
    )
