"""FMO experiments honoring the SC 2012 title paper.

* FMO-1 — scheduler comparison (HSLB vs idealized DLB vs uniform static)
  across machine sizes on a few-large-diverse-tasks system, the regime where
  §I argues DLB is inappropriate;
* FMO-2 — the full HSLB pipeline on FMO (gather/fit/solve/execute), checking
  fitted-model predictions against realized makespans;
* FMO-3 — speedup/scalability curve of the HSLB schedule, the "boost
  scalability ... without rewriting the code" framing of §I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hslb import HSLBOptimizer
from repro.core.spec import Allocation
from repro.fmo.app import FMOApplication
from repro.fmo.molecules import FragmentedSystem, protein_like
from repro.fmo.schedulers import (
    greedy_dynamic_schedule,
    hslb_schedule,
    uniform_static_schedule,
)
from repro.fmo.simulator import FMOSimulator
from repro.util.rng import default_rng
from repro.util.tables import format_table


@dataclass
class FMOComparisonResult:
    """FMO-1: makespans per scheduler per machine size."""

    system_name: str
    node_counts: tuple[int, ...]
    makespans: dict[str, list[float]]  # scheduler label -> per-N makespans

    def render(self) -> str:
        headers = ["nodes"] + list(self.makespans)
        rows = [
            [n] + [self.makespans[k][i] for k in self.makespans]
            for i, n in enumerate(self.node_counts)
        ]
        return format_table(
            headers,
            rows,
            title=f"FMO-1: scheduler makespans on {self.system_name}",
            float_fmt=".1f",
        )

    def hslb_always_best(self, slack: float = 1.02) -> bool:
        hslb = self.makespans["hslb"]
        others = [v for k, v in self.makespans.items() if k != "hslb"]
        return all(
            hslb[i] <= min(o[i] for o in others) * slack
            for i in range(len(self.node_counts))
        )


def run_fmo_comparison(
    *,
    n_fragments: int = 12,
    node_counts: tuple[int, ...] = (64, 128, 256, 512),
    seed: int = 3,
) -> FMOComparisonResult:
    """FMO-1: HSLB vs baselines across machine sizes."""
    system = protein_like(n_fragments, default_rng(seed))
    sim = FMOSimulator(system)
    makespans: dict[str, list[float]] = {"hslb": [], "dlb-best": [], "uniform": []}
    for total in node_counts:
        hs, _ = hslb_schedule(system, total)
        makespans["hslb"].append(sim.execute(hs, default_rng(seed + total)).makespan)
        dlb = min(
            sim.execute(
                greedy_dynamic_schedule(system, total, g), default_rng(seed + total)
            ).makespan
            for g in (2, 3, 4, 6, n_fragments)
        )
        makespans["dlb-best"].append(dlb)
        makespans["uniform"].append(
            sim.execute(
                uniform_static_schedule(system, total, n_fragments),
                default_rng(seed + total),
            ).makespan
        )
    return FMOComparisonResult(
        system_name=system.name, node_counts=node_counts, makespans=makespans
    )


@dataclass
class FMOPipelineResult:
    """FMO-2: the full HSLB pipeline on FMO."""

    allocation: Allocation
    predicted_total: float
    actual_total: float
    min_r_squared: float

    @property
    def prediction_error(self) -> float:
        return abs(self.predicted_total - self.actual_total) / self.actual_total

    def render(self) -> str:
        return "\n".join(
            [
                "FMO-2: HSLB pipeline on FMO",
                f"  group sizes: {tuple(self.allocation.nodes.values())}",
                f"  predicted makespan: {self.predicted_total:.2f} s",
                f"  actual makespan:    {self.actual_total:.2f} s",
                f"  prediction error:   {100 * self.prediction_error:.1f}%",
                f"  worst fit R^2:      {self.min_r_squared:.5f}",
            ]
        )


def run_fmo_pipeline(
    *, n_fragments: int = 8, total_nodes: int = 128, seed: int = 5
) -> FMOPipelineResult:
    system = protein_like(n_fragments, default_rng(seed))
    app = FMOApplication(system)
    result = HSLBOptimizer(app).run(
        [1, 2, 4, 8, 16, 32], total_nodes, default_rng(seed + 1)
    )
    return FMOPipelineResult(
        allocation=result.allocation,
        predicted_total=result.predicted_total,
        actual_total=result.actual_total,
        min_r_squared=min(f.r_squared for f in result.fits.values()),
    )


@dataclass
class FMOSpeedupResult:
    """FMO-3: HSLB-schedule speedup vs machine size."""

    node_counts: tuple[int, ...]
    makespans: list[float]

    def speedups(self) -> list[float]:
        return [self.makespans[0] / m for m in self.makespans]

    def render(self) -> str:
        rows = [
            [n, m, s]
            for n, m, s in zip(self.node_counts, self.makespans, self.speedups())
        ]
        return format_table(
            ["nodes", "makespan s", f"speedup vs {self.node_counts[0]} nodes"],
            rows,
            title="FMO-3: HSLB scalability",
            float_fmt=".2f",
        )

    def monotone(self) -> bool:
        return all(
            self.makespans[i + 1] <= self.makespans[i] * 1.02
            for i in range(len(self.makespans) - 1)
        )


def run_fmo_speedup(
    *,
    n_fragments: int = 12,
    node_counts: tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024),
    seed: int = 3,
) -> FMOSpeedupResult:
    system = protein_like(n_fragments, default_rng(seed))
    sim = FMOSimulator(system, noise=0.0)  # noise-free: pure scaling shape
    makespans = []
    for total in node_counts:
        schedule, _ = hslb_schedule(system, total)
        makespans.append(sim.execute(schedule, default_rng(1)).makespan)
    return FMOSpeedupResult(node_counts=node_counts, makespans=makespans)


@dataclass
class FMODiversityResult:
    """FMO-5: HSLB's advantage as a function of task-size diversity."""

    diversities: list[float]
    hslb_makespans: list[float]
    dlb_makespans: list[float]

    def advantages(self) -> list[float]:
        """Fractional makespan saving of HSLB vs idealized DLB."""
        return [
            1.0 - h / d for h, d in zip(self.hslb_makespans, self.dlb_makespans)
        ]

    def render(self) -> str:
        from repro.util.tables import format_table

        rows = [
            [f"{cv:.2f}", h, d, 100.0 * a]
            for cv, h, d, a in zip(
                self.diversities,
                self.hslb_makespans,
                self.dlb_makespans,
                self.advantages(),
            )
        ]
        return format_table(
            ["size diversity (CV)", "HSLB s", "ideal DLB s", "HSLB advantage %"],
            rows,
            title="FMO-5: HSLB advantage vs task-size diversity",
            float_fmt=".1f",
        )


def run_fmo_diversity_sweep(
    *,
    n_fragments: int = 12,
    total_nodes: int = 256,
    seed: int = 3,
    spreads: tuple[tuple[int, int], ...] = (
        (20, 22),   # near-uniform tasks
        (14, 30),
        (10, 42),
        (8, 60),    # the paper's "few large tasks of diverse size"
    ),
) -> FMODiversityResult:
    """FMO-5: sweep fragment-size spread, compare HSLB to idealized DLB.

    §I claims DLB breaks down specifically for "a few large tasks of
    diverse size"; this sweep locates where the advantage turns on.
    """
    diversities, hslb_ms, dlb_ms = [], [], []
    for lo, hi in spreads:
        system = protein_like(
            n_fragments, default_rng(seed), min_atoms=lo, max_atoms=hi
        )
        sim = FMOSimulator(system)
        hs, _ = hslb_schedule(system, total_nodes)
        hslb_t = sim.execute(hs, default_rng(seed + hi)).makespan
        dlb_t = min(
            sim.execute(
                greedy_dynamic_schedule(system, total_nodes, g),
                default_rng(seed + hi),
            ).makespan
            for g in (2, 3, 4, 6, n_fragments)
        )
        diversities.append(system.size_diversity())
        hslb_ms.append(hslb_t)
        dlb_ms.append(dlb_t)
    return FMODiversityResult(
        diversities=diversities, hslb_makespans=hslb_ms, dlb_makespans=dlb_ms
    )


@dataclass
class FMOTwoPhaseResult:
    """FMO-4: two-phase (monomer SCC + dimer) scheduling comparison."""

    node_counts: tuple[int, ...]
    hslb_totals: list[float]
    hslb_monomer: list[float]
    hslb_dimer: list[float]
    uniform_totals: list[float]

    def render(self) -> str:
        from repro.util.tables import format_table

        rows = [
            [n, h, m, d, u]
            for n, h, m, d, u in zip(
                self.node_counts,
                self.hslb_totals,
                self.hslb_monomer,
                self.hslb_dimer,
                self.uniform_totals,
            )
        ]
        return format_table(
            ["nodes", "HSLB total s", "(monomer)", "(dimer)", "uniform total s"],
            rows,
            title="FMO-4: two-phase FMO2 scheduling (SCC monomers + dimers)",
            float_fmt=".1f",
        )

    def hslb_always_better(self) -> bool:
        return all(h < u for h, u in zip(self.hslb_totals, self.uniform_totals))


def run_fmo_two_phase(
    *,
    n_fragments: int = 10,
    node_counts: tuple[int, ...] = (32, 64, 128, 256),
    seed: int = 2,
) -> FMOTwoPhaseResult:
    """FMO-4: HSLB vs uniform under the barrier-per-SCC-iteration semantics."""
    from repro.fmo.twophase import (
        TwoPhaseSimulator,
        hslb_two_phase_schedule,
        uniform_two_phase_schedule,
    )

    system = protein_like(n_fragments, default_rng(seed))
    sim = TwoPhaseSimulator(system)
    hslb_totals, hslb_monomer, hslb_dimer, uniform_totals = [], [], [], []
    for total in node_counts:
        hs = hslb_two_phase_schedule(system, total)
        run = sim.execute(hs, default_rng(seed + total))
        hslb_totals.append(run.total)
        hslb_monomer.append(run.monomer_time)
        hslb_dimer.append(run.dimer_time)
        uni = uniform_two_phase_schedule(system, total, n_fragments)
        uniform_totals.append(sim.execute(uni, default_rng(seed + total)).total)
    return FMOTwoPhaseResult(
        node_counts=node_counts,
        hslb_totals=hslb_totals,
        hslb_monomer=hslb_monomer,
        hslb_dimer=hslb_dimer,
        uniform_totals=uniform_totals,
    )
