"""Extension experiments: the follow-on work the paper names.

* E1 — ML sea-ice decompositions (the companion paper [10]): default policy
  vs learned selector vs oracle across node counts;
* E2 — MPI/OpenMP tasking granularity (§II/§III-C): per-component optimal
  tasking and its effect on the balanced 1° makespan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cesm.app import CESMApplication
from repro.cesm.components import one_degree_ground_truth
from repro.cesm.grids import one_degree
from repro.cesm.ice_decomp import (
    DecompositionSelector,
    collect_training_data,
    default_decomposition,
    oracle_best,
    true_multiplier,
)
from repro.cesm.tasking import best_tasking, tasking_speedup
from repro.core.hslb import HSLBOptimizer
from repro.experiments.paper_data import BENCHMARK_CAMPAIGN
from repro.util.rng import default_rng
from repro.util.tables import format_table


@dataclass
class IceDecompResult:
    """E1: ice slowdown multiplier by policy across node counts."""

    node_counts: tuple[int, ...]
    default_multipliers: list[float]
    ml_multipliers: list[float]
    oracle_multipliers: list[float]

    def mean_gain_pct(self) -> float:
        d = np.mean(self.default_multipliers)
        m = np.mean(self.ml_multipliers)
        return 100.0 * (1.0 - m / d)

    def render(self) -> str:
        rows = [
            [n, d, m, o]
            for n, d, m, o in zip(
                self.node_counts,
                self.default_multipliers,
                self.ml_multipliers,
                self.oracle_multipliers,
            )
        ]
        table = format_table(
            ["ice nodes", "default policy", "ML-selected", "oracle"],
            rows,
            title="E1: CICE decomposition slowdown multiplier by policy",
        )
        return table + f"\nmean ice speedup from ML selection: {self.mean_gain_pct():.1f}%"


def run_ice_decomposition(
    *,
    node_counts: tuple[int, ...] = (12, 48, 96, 200, 400, 800, 1500),
    seed: int = 2014,
) -> IceDecompResult:
    ice_model = one_degree_ground_truth()["ice"].model
    rng = default_rng(seed)
    samples = collect_training_data(
        ice_model, (8, 16, 32, 64, 128, 256, 512, 1024, 2048), rng, noise=0.02
    )
    selector = DecompositionSelector(k=3).fit(samples)
    return IceDecompResult(
        node_counts=node_counts,
        default_multipliers=[
            true_multiplier(default_decomposition(n), n) for n in node_counts
        ],
        ml_multipliers=[
            true_multiplier(selector.best(n), n) for n in node_counts
        ],
        oracle_multipliers=[
            true_multiplier(oracle_best(n), n) for n in node_counts
        ],
    )


@dataclass
class TaskingResult:
    """E2: per-component tasking choice and the balanced-makespan effect."""

    policies: dict[str, str]
    component_speedups: dict[str, float]
    default_total: float
    tuned_total: float

    def total_gain_pct(self) -> float:
        return 100.0 * (1.0 - self.tuned_total / self.default_total)

    def render(self) -> str:
        rows = [
            [comp, self.policies[comp], self.component_speedups[comp]]
            for comp in sorted(self.policies)
        ]
        table = format_table(
            ["component", "best tasking", "component speedup"],
            rows,
            title="E2: MPI-task x OpenMP-thread tuning (1-degree)",
        )
        return table + (
            f"\nbalanced makespan @128 nodes: default tasking "
            f"{self.default_total:.1f} s -> tuned {self.tuned_total:.1f} s "
            f"({self.total_gain_pct():.1f}%)"
        )


def run_tasking_tuning(*, total_nodes: int = 128, seed: int = 2014) -> TaskingResult:
    policies = best_tasking()
    speedups = tasking_speedup()

    def run(tasking):
        app = CESMApplication(one_degree())
        if tasking:
            from repro.cesm.simulator import CESMSimulator

            app.simulator = CESMSimulator(app.config, layout=app.layout, tasking=tasking)
        result = HSLBOptimizer(app).run(
            BENCHMARK_CAMPAIGN["1deg"], total_nodes, default_rng(seed)
        )
        return result.actual_total

    default_total = run(None)
    tuned_total = run(policies)
    return TaskingResult(
        policies={
            comp: f"{p.tasks_per_node}x{p.threads_per_task}"
            for comp, p in policies.items()
        },
        component_speedups=speedups,
        default_total=default_total,
        tuned_total=tuned_total,
    )
