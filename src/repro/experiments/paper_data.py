"""Literal numbers from the paper, used for side-by-side reporting and
shape assertions.

Source: Table III of "The Heuristic Static Load-Balancing Algorithm Applied
to the Community Earth System Model" (IPDPSW 2014).  Components are ordered
(lnd, ice, atm, ocn) as in the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec import Allocation

COMPONENT_ORDER = ("lnd", "ice", "atm", "ocn")


@dataclass(frozen=True)
class PaperTable3Block:
    """One block of Table III."""

    key: str
    resolution: str           # "1deg" | "eighth"
    total_nodes: int
    constrained_ocean: bool
    manual_nodes: dict[str, int] | None
    manual_times: dict[str, float] | None
    manual_total: float | None
    hslb_pred_nodes: dict[str, int]
    hslb_pred_times: dict[str, float]
    hslb_pred_total: float
    hslb_actual_nodes: dict[str, int]
    hslb_actual_times: dict[str, float]
    hslb_actual_total: float

    @property
    def manual_allocation(self) -> Allocation | None:
        return Allocation(self.manual_nodes) if self.manual_nodes else None


def _d(lnd, ice, atm, ocn):
    return {"lnd": lnd, "ice": ice, "atm": atm, "ocn": ocn}


TABLE3: dict[str, PaperTable3Block] = {
    "1deg-128": PaperTable3Block(
        key="1deg-128",
        resolution="1deg",
        total_nodes=128,
        constrained_ocean=True,
        manual_nodes=_d(24, 80, 104, 24),
        manual_times=_d(63.766, 109.054, 306.952, 362.669),
        manual_total=416.006,
        hslb_pred_nodes=_d(15, 89, 104, 24),
        hslb_pred_times=_d(100.951, 102.972, 307.651, 365.649),
        hslb_pred_total=410.623,
        hslb_actual_nodes=_d(15, 89, 104, 24),
        hslb_actual_times=_d(100.202, 116.472, 308.699, 365.853),
        hslb_actual_total=425.171,
    ),
    "1deg-2048": PaperTable3Block(
        key="1deg-2048",
        resolution="1deg",
        total_nodes=2048,
        constrained_ocean=True,
        manual_nodes=_d(384, 1280, 1664, 384),
        manual_times=_d(5.777, 17.912, 61.987, 61.987),
        manual_total=79.899,
        hslb_pred_nodes=_d(71, 1454, 1525, 256),
        hslb_pred_times=_d(22.693, 22.822, 61.662, 78.532),
        hslb_pred_total=84.484,
        hslb_actual_nodes=_d(71, 1454, 1525, 256),
        hslb_actual_times=_d(23.158, 18.242, 63.313, 79.139),
        hslb_actual_total=86.471,
    ),
    "eighth-8192": PaperTable3Block(
        key="eighth-8192",
        resolution="eighth",
        total_nodes=8192,
        constrained_ocean=True,
        manual_nodes=_d(486, 5350, 5836, 2356),
        manual_times=_d(147.397, 475.614, 2533.76, 3785.333),
        manual_total=3785.333,
        hslb_pred_nodes=_d(138, 4918, 5056, 3136),
        hslb_pred_times=_d(487.853, 511.596, 2878.798, 2919.052),
        hslb_pred_total=3390.394,
        hslb_actual_nodes=_d(138, 4918, 5056, 3136),
        hslb_actual_times=_d(457.052, 499.691, 2989.115, 2898.102),
        hslb_actual_total=3488.806,
    ),
    "eighth-32768": PaperTable3Block(
        key="eighth-32768",
        resolution="eighth",
        total_nodes=32768,
        constrained_ocean=True,
        manual_nodes=_d(2220, 24424, 26644, 6124),
        manual_times=_d(44.225, 214.203, 787.478, 1645.009),
        manual_total=1645.009,
        hslb_pred_nodes=_d(302, 13006, 13308, 19460),
        hslb_pred_times=_d(232.158, 290.088, 1302.562, 712.525),
        hslb_pred_total=1592.649,
        hslb_actual_nodes=_d(302, 13006, 13308, 19460),
        hslb_actual_times=_d(223.284, 311.195, 1301.136, 700.373),
        hslb_actual_total=1612.331,
    ),
    "eighth-8192-freeocn": PaperTable3Block(
        key="eighth-8192-freeocn",
        resolution="eighth",
        total_nodes=8192,
        constrained_ocean=False,
        manual_nodes=None,
        manual_times=None,
        manual_total=None,
        hslb_pred_nodes=_d(137, 5238, 5375, 2817),
        hslb_pred_times=_d(487.853, 489.904, 2727.934, 3216.924),
        hslb_pred_total=3217.837,
        hslb_actual_nodes=_d(146, 5287, 5433, 2759),
        hslb_actual_times=_d(417.162, 475.249, 2702.651, 3496.331),
        hslb_actual_total=3496.331,
    ),
    "eighth-32768-freeocn": PaperTable3Block(
        key="eighth-32768-freeocn",
        resolution="eighth",
        total_nodes=32768,
        constrained_ocean=False,
        manual_nodes=None,
        manual_times=None,
        manual_total=None,
        hslb_pred_nodes=_d(299, 22657, 22956, 9812),
        hslb_pred_times=_d(232.158, 232.735, 896.67, 1129.335),
        hslb_pred_total=1129.405,
        hslb_actual_nodes=_d(272, 20616, 20888, 11880),
        hslb_actual_times=_d(238.46, 231.631, 956.558, 1255.593),
        hslb_actual_total=1255.593,
    ),
}

#: Benchmark campaigns (total node counts) per resolution — the "about five
#: different core counts" of the manual procedure, reused by HSLB's gather.
BENCHMARK_CAMPAIGN = {
    "1deg": (32, 64, 128, 256, 512, 1024, 2048),
    "eighth": (2048, 4096, 8192, 16384, 32768),
}

#: Paper-quoted headline: unconstrained ocean at 32768 nodes improved the
#: predicted time by ~40% and the actual time by ~25% vs the constrained run.
HEADLINE_PREDICTED_GAIN = 1.0 - 1129.335 / 1592.649   # ~0.29 vs quoted 40% on ocn
HEADLINE_ACTUAL_GAIN = 1.0 - 1255.593 / 1612.331      # ~0.22 vs quoted ~25%
