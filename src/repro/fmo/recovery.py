"""Mid-run node-group loss and recovery for FMO/GDDI schedules.

A GDDI run loses a whole node group (hardware failure takes out the
partition hosting it) ``crash_fraction`` of the way through the run.  Work
the dead group had finished stays finished; its in-flight and queued
fragments must re-run from scratch on the surviving groups.  Three recovery
strategies bracket the design space the PAPERS.md dynamic-load-balancing
literature argues about:

* ``"replan"`` — **static re-plan**, HSLB's answer: at crash time, solve the
  residual assignment problem once using the fitted/model *predictions* of
  each pending fragment's cost on each surviving group, then stick to the
  plan (longest-processing-time greedy, which is the exact specialization of
  the min-max MINLP when group sizes are already fixed);
* ``"dynamic"`` — the idealized work-stealing baseline of
  :mod:`repro.fmo.schedulers`: pending fragments dispatched one at a time to
  the earliest-available group with perfect knowledge of *actual* durations
  (an upper bound on any real DLB runtime);
* ``"none"`` — naive failover: every pending fragment dumped on the first
  surviving group, the no-recovery strawman.

The makespan-degradation curves in ``benchmarks/bench_faults.py`` compare
all three against the fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fmo.gddi import GroupSchedule
from repro.fmo.simulator import FMOSimulator
from repro.util.rng import default_rng, spawn_rng

STRATEGIES = ("replan", "dynamic", "none")


@dataclass(frozen=True)
class RecoveryOutcome:
    """One crashed run under one recovery strategy."""

    strategy: str
    makespan: float
    fault_free_makespan: float
    crash_time: float
    crash_group: int
    lost_fragments: tuple[int, ...]  # pending at crash: must re-run elsewhere
    completed_before_crash: tuple[int, ...]
    group_finish_times: tuple[float, ...]  # per surviving group (dead = crash time)
    fragment_times: dict[int, float] = field(default_factory=dict)

    @property
    def degradation(self) -> float:
        """Fractional makespan excess over the fault-free run."""
        if self.fault_free_makespan <= 0:
            return 0.0
        return self.makespan / self.fault_free_makespan - 1.0


def _draw_times(
    sim: FMOSimulator, schedule: GroupSchedule, rng: np.random.Generator
) -> dict[int, float]:
    """Per-fragment durations for the original run — same stream layout as
    :meth:`FMOSimulator.execute`, so a fault-free recovery simulation equals
    a plain execute with the same generator."""
    streams = spawn_rng(rng, sim.system.n_fragments)
    return {
        frag: sim.fragment_seconds(frag, schedule.group_sizes[grp], streams[frag])
        for frag, grp in enumerate(schedule.assignment)
    }


def run_with_crash(
    sim: FMOSimulator,
    schedule: GroupSchedule,
    *,
    crash_group: int,
    crash_fraction: float = 0.5,
    strategy: str = "replan",
    rng: np.random.Generator | None = None,
) -> RecoveryOutcome:
    """Simulate ``schedule`` with ``crash_group`` dying mid-run.

    The crash hits at ``crash_fraction`` of the fault-free makespan.  The
    surviving groups finish their own queues regardless; the dead group's
    unfinished fragments are re-assigned per ``strategy`` and re-run from
    scratch (partial work is lost), with re-run durations drawn at the
    receiving group's size.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown recovery strategy {strategy!r}")
    if not 0 <= crash_group < schedule.n_groups:
        raise ValueError(
            f"crash_group {crash_group} out of range for {schedule.n_groups} groups"
        )
    if schedule.n_groups < 2:
        raise ValueError("cannot recover: the crashed group is the whole machine")
    if not 0.0 < crash_fraction < 1.0:
        raise ValueError("crash_fraction must be in (0, 1)")
    rng = rng or default_rng()
    times = _draw_times(sim, schedule, rng)
    rerun_jitter = spawn_rng(rng, sim.system.n_fragments)

    group_load = [0.0] * schedule.n_groups
    for frag, grp in enumerate(schedule.assignment):
        group_load[grp] += times[frag]
    fault_free = max(group_load)
    crash_time = crash_fraction * fault_free

    # Walk the dead group's queue: fragments wholly finished before the
    # crash survive; the in-flight one and everything queued behind it die.
    completed: list[int] = []
    pending: list[int] = []
    elapsed = 0.0
    for frag in schedule.fragments_of(crash_group):
        elapsed += times[frag]
        (completed if elapsed <= crash_time else pending).append(frag)

    survivors = [g for g in range(schedule.n_groups) if g != crash_group]
    # A surviving group can only take re-assigned work once it has drained
    # its own queue AND the crash has actually happened.
    avail = {g: max(group_load[g], crash_time) for g in survivors}

    def rerun_seconds(frag: int, group: int) -> float:
        size = schedule.group_sizes[group]
        jitter = (
            float(np.exp(rerun_jitter[frag].normal(0.0, sim.noise)))
            if sim.noise
            else 1.0
        )
        return sim.true_fragment_seconds(frag, size) * jitter

    if strategy == "none":
        # Naive failover: everything onto the first survivor, serially.
        sink = survivors[0]
        for frag in pending:
            avail[sink] += rerun_seconds(frag, sink)
    elif strategy == "replan":
        # Static re-plan from model predictions: one LPT pass at crash time,
        # then the plan is frozen — actual durations land where the plan put
        # them, prediction error and all.
        planned = dict(avail)
        order = sorted(
            pending,
            key=lambda f: sim.true_fragment_seconds(f, schedule.group_sizes[survivors[0]]),
            reverse=True,
        )
        for frag in order:
            target = min(
                survivors,
                key=lambda g: planned[g] + sim.true_fragment_seconds(frag, schedule.group_sizes[g]),
            )
            planned[target] += sim.true_fragment_seconds(frag, schedule.group_sizes[target])
            avail[target] += rerun_seconds(frag, target)
    else:  # "dynamic": perfect-knowledge work stealing over actual durations
        remaining = set(pending)
        while remaining:
            target = min(survivors, key=avail.get)
            frag = max(remaining, key=lambda f: rerun_seconds(f, target))
            remaining.discard(frag)
            avail[target] += rerun_seconds(frag, target)

    finishes = tuple(
        avail[g] if g != crash_group else min(crash_time, group_load[g])
        for g in range(schedule.n_groups)
    )
    makespan = max(max(avail.values()) if pending else fault_free, crash_time)
    return RecoveryOutcome(
        strategy=strategy,
        makespan=float(makespan),
        fault_free_makespan=float(fault_free),
        crash_time=float(crash_time),
        crash_group=int(crash_group),
        lost_fragments=tuple(pending),
        completed_before_crash=tuple(completed),
        group_finish_times=finishes,
        fragment_times=dict(times),
    )


def degradation_curve(
    sim: FMOSimulator,
    schedule: GroupSchedule,
    *,
    crash_group: int,
    fractions: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    seed: int = 0,
) -> dict[str, list[RecoveryOutcome]]:
    """Makespan degradation vs crash time for every recovery strategy.

    Each (fraction, strategy) cell reuses the same seed so the underlying
    run — and therefore the comparison — is apples to apples.
    """
    out: dict[str, list[RecoveryOutcome]] = {s: [] for s in STRATEGIES}
    for strategy in STRATEGIES:
        for fraction in fractions:
            out[strategy].append(
                run_with_crash(
                    sim,
                    schedule,
                    crash_group=crash_group,
                    crash_fraction=fraction,
                    strategy=strategy,
                    rng=default_rng(seed),
                )
            )
    return out
