"""The GDDI two-level parallel model: node groups processing fragment queues.

GAMESS's Generalized Distributed Data Interface splits the world of ``N``
nodes into groups; fragments are assigned to groups, each group runs its
fragments sequentially, groups run concurrently.  A schedule is therefore
(group sizes, fragment->group assignment); the makespan is the slowest
group's total time.

HSLB's "one group per large task" limit — each fragment its own group sized
by the MINLP — is the special case ``groups == fragments``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.fmo.molecules import FragmentedSystem


@dataclass(frozen=True)
class GroupSchedule:
    """Group sizes plus each fragment's group assignment."""

    group_sizes: tuple[int, ...]
    assignment: tuple[int, ...]  # assignment[frag_index] = group index
    label: str = "schedule"

    def __post_init__(self) -> None:
        if not self.group_sizes:
            raise ValueError("need at least one group")
        if any(s < 1 for s in self.group_sizes):
            raise ValueError("every group needs at least one node")
        bad = [g for g in self.assignment if not (0 <= g < len(self.group_sizes))]
        if bad:
            raise ValueError(f"assignment references unknown groups: {bad}")

    @property
    def n_groups(self) -> int:
        return len(self.group_sizes)

    @property
    def total_nodes(self) -> int:
        return sum(self.group_sizes)

    def fragments_of(self, group: int) -> tuple[int, ...]:
        return tuple(i for i, g in enumerate(self.assignment) if g == group)

    def validate_for(self, system: FragmentedSystem, total_nodes: int) -> None:
        """Check the schedule covers the system and fits the machine."""
        if len(self.assignment) != system.n_fragments:
            raise ValueError(
                f"schedule assigns {len(self.assignment)} fragments; system has "
                f"{system.n_fragments}"
            )
        if self.total_nodes > total_nodes:
            raise ValueError(
                f"schedule uses {self.total_nodes} nodes; machine has {total_nodes}"
            )
        empty = [g for g in range(self.n_groups) if not self.fragments_of(g)]
        if empty:
            raise ValueError(f"groups {empty} have no fragments (wasted nodes)")

    def group_loads(self, per_fragment_seconds: Mapping[int, float]) -> list[float]:
        """Each group's total time given per-fragment single-run seconds."""
        loads = [0.0] * self.n_groups
        for frag, grp in enumerate(self.assignment):
            loads[grp] += float(per_fragment_seconds[frag])
        return loads

    def load_imbalance(self, per_fragment_seconds: Mapping[int, float]) -> float:
        """max/mean group load — 1.0 is perfect balance."""
        loads = self.group_loads(per_fragment_seconds)
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 1.0


def even_group_sizes(total_nodes: int, n_groups: int) -> tuple[int, ...]:
    """Split ``total_nodes`` into ``n_groups`` near-equal sizes."""
    if n_groups < 1 or n_groups > total_nodes:
        raise ValueError(
            f"cannot make {n_groups} nonempty groups from {total_nodes} nodes"
        )
    base, extra = divmod(total_nodes, n_groups)
    return tuple(base + (1 if g < extra else 0) for g in range(n_groups))
