"""FMO application layer: the fragment molecular orbital method.

This honors the SC 2012 title paper ("Heuristic static load-balancing
algorithm applied to the fragment molecular orbital method"): HSLB was first
built to size GAMESS/GDDI processor groups for FMO fragment calculations —
the regime of "a few large tasks of diverse size" where dynamic load
balancing breaks down because there are fewer tasks than processors (§I of
the supplied text).

Modules:

* :mod:`repro.fmo.molecules`  — synthetic fragmented systems (water
  clusters, protein-like chains) with size diversity knobs;
* :mod:`repro.fmo.timing`     — per-fragment SCF cost models (cubic in
  basis-set size) mapped onto :class:`repro.perf.PerformanceModel`;
* :mod:`repro.fmo.gddi`       — two-level GDDI group model and schedules;
* :mod:`repro.fmo.schedulers` — HSLB (MINLP) and baseline schedulers;
* :mod:`repro.fmo.simulator`  — executes a schedule (monomer SCC loop +
  dimer step) and reports the makespan;
* :mod:`repro.fmo.app`        — :class:`repro.core.Application` adapter.
"""

from repro.fmo.app import FMOApplication
from repro.fmo.gddi import GroupSchedule
from repro.fmo.molecules import FragmentedSystem, protein_like, water_cluster
from repro.fmo.schedulers import (
    greedy_dynamic_schedule,
    hslb_schedule,
    uniform_static_schedule,
)
from repro.fmo.simulator import FMOSimulator
from repro.fmo.twophase import (
    TwoPhaseSchedule,
    TwoPhaseSimulator,
    hslb_two_phase_schedule,
    uniform_two_phase_schedule,
)

__all__ = [
    "FMOApplication",
    "FMOSimulator",
    "FragmentedSystem",
    "GroupSchedule",
    "TwoPhaseSchedule",
    "TwoPhaseSimulator",
    "greedy_dynamic_schedule",
    "hslb_schedule",
    "hslb_two_phase_schedule",
    "protein_like",
    "uniform_static_schedule",
    "uniform_two_phase_schedule",
    "water_cluster",
]
