"""Two-phase FMO execution: SCC-iterated monomers, then dimers.

The single-phase simulator (:mod:`repro.fmo.simulator`) charges each
fragment its whole per-run work at once.  Real FMO2 is structured:

* **monomer phase** — every self-consistent-charge (SCC) iteration computes
  all monomer SCFs and then synchronizes globally (the fragment charges
  feed each other's embedding potentials).  With static groups the phase
  time is ``scc_iterations x max_g sum_{f in g} t_mono(f, |g|)`` — the
  per-iteration barrier amplifies any imbalance by the iteration count.
* **dimer phase** — after SCC convergence, each nearby pair gets one dimer
  SCF; dimers are independent tasks that can be scheduled separately.

This module models that structure and schedules both phases:

* monomer groups sized by the HSLB MINLP over per-iteration monomer models;
* dimer tasks dispatched longest-first onto the same groups (the GAMESS
  pattern: the GDDI partition persists across phases).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fmo.gddi import GroupSchedule
from repro.fmo.molecules import FragmentedSystem
from repro.fmo.schedulers import uniform_static_schedule
from repro.fmo.simulator import FMOSimulator
from repro.fmo.timing import MachineCalibration, dimer_model, monomer_model
from repro.core.builder import AllocationModelBuilder
from repro.core.objectives import Objective
from repro.minlp import solve
from repro.minlp.bnb import BnBOptions
from repro.util.rng import default_rng


@dataclass(frozen=True)
class TwoPhaseSchedule:
    """Monomer groups plus a dimer-task assignment onto those groups."""

    monomer: GroupSchedule
    dimer_assignment: tuple[int, ...]  # index into monomer.group_sizes per dimer
    dimer_pairs: tuple[tuple[int, int], ...]
    label: str = "two-phase"

    def __post_init__(self) -> None:
        if len(self.dimer_assignment) != len(self.dimer_pairs):
            raise ValueError("dimer assignment/pairs length mismatch")
        bad = [
            g
            for g in self.dimer_assignment
            if not (0 <= g < self.monomer.n_groups)
        ]
        if bad:
            raise ValueError(f"dimer assignment references unknown groups: {bad}")


@dataclass
class TwoPhaseResult:
    """Wall-clock accounting of one two-phase run."""

    monomer_time: float
    dimer_time: float
    label: str

    @property
    def total(self) -> float:
        return self.monomer_time + self.dimer_time


class TwoPhaseSimulator:
    """Executes two-phase schedules over a fragmented system."""

    def __init__(
        self,
        system: FragmentedSystem,
        *,
        calib: MachineCalibration | None = None,
        noise: float = 0.02,
    ) -> None:
        self.system = system
        self.calib = calib or MachineCalibration()
        self.noise = float(noise)
        self._monomer = {
            f.index: monomer_model(f, self.calib) for f in system.fragments
        }
        self._pairs = system.dimer_pairs()
        self._dimer = {
            pair: dimer_model(
                system.fragments[pair[0]], system.fragments[pair[1]], self.calib
            )
            for pair in self._pairs
        }

    @property
    def dimer_pairs(self) -> tuple[tuple[int, int], ...]:
        return self._pairs

    def _jitter(self, rng: np.random.Generator) -> float:
        return float(np.exp(rng.normal(0.0, self.noise))) if self.noise else 1.0

    def execute(
        self, schedule: TwoPhaseSchedule, rng: np.random.Generator | None = None
    ) -> TwoPhaseResult:
        rng = rng or default_rng()
        schedule.monomer.validate_for(self.system, schedule.monomer.total_nodes)
        if schedule.dimer_pairs != self._pairs:
            raise ValueError("schedule's dimer list does not match the system")
        sizes = schedule.monomer.group_sizes

        # Monomer phase: per-iteration barrier -> iterate the max group sum.
        monomer_total = 0.0
        for _ in range(self.system.scc_iterations):
            group_time = [0.0] * schedule.monomer.n_groups
            for frag, grp in enumerate(schedule.monomer.assignment):
                t = float(self._monomer[frag].time(sizes[grp])) * self._jitter(rng)
                group_time[grp] += t
            monomer_total += max(group_time)

        # Dimer phase: one pass, same groups.
        dimer_time = [0.0] * schedule.monomer.n_groups
        for pair, grp in zip(self._pairs, schedule.dimer_assignment):
            t = float(self._dimer[pair].time(sizes[grp])) * self._jitter(rng)
            dimer_time[grp] += t
        return TwoPhaseResult(
            monomer_time=monomer_total,
            dimer_time=max(dimer_time) if dimer_time else 0.0,
            label=schedule.label,
        )


def _lpt_dimers(
    sim: TwoPhaseSimulator, monomer: GroupSchedule
) -> tuple[int, ...]:
    """Longest-processing-time dispatch of dimer tasks onto the groups."""
    sizes = monomer.group_sizes
    costs = {
        pair: min(float(sim._dimer[pair].time(sizes[g])) for g in range(len(sizes)))
        for pair in sim.dimer_pairs
    }
    order = sorted(sim.dimer_pairs, key=lambda p: costs[p], reverse=True)
    loads = [0.0] * monomer.n_groups
    assignment = {pair: 0 for pair in sim.dimer_pairs}
    for pair in order:
        # Greedy on realized finishing time given each group's size.
        best_g = min(
            range(monomer.n_groups),
            key=lambda g: loads[g] + float(sim._dimer[pair].time(sizes[g])),
        )
        assignment[pair] = best_g
        loads[best_g] += float(sim._dimer[pair].time(sizes[best_g]))
    return tuple(assignment[pair] for pair in sim.dimer_pairs)


def hslb_two_phase_schedule(
    system: FragmentedSystem,
    total_nodes: int,
    *,
    calib: MachineCalibration | None = None,
    options: BnBOptions | None = None,
) -> TwoPhaseSchedule:
    """HSLB for the two-phase structure.

    The monomer phase dominates (SCC-iterated), so group sizes come from a
    min-max MINLP over *per-iteration monomer* models; dimers then ride the
    same partition via LPT.
    """
    if total_nodes < system.n_fragments:
        raise ValueError(
            f"{total_nodes} nodes cannot host {system.n_fragments} groups"
        )
    sim = TwoPhaseSimulator(system, calib=calib, noise=0.0)
    b = AllocationModelBuilder(f"fmo2-{system.name}", total_nodes)
    for frag in system.fragments:
        b.add_component(f"frag{frag.index}", sim._monomer[frag.index])
    b.limit_total_nodes()
    b.set_objective(Objective.MIN_MAX)
    sol = solve(b.build(), options).require_ok()
    sizes = tuple(
        int(round(sol.values[f"n_frag{f.index}"])) for f in system.fragments
    )
    monomer = GroupSchedule(
        group_sizes=sizes,
        assignment=tuple(range(system.n_fragments)),
        label="hslb-two-phase",
    )
    return TwoPhaseSchedule(
        monomer=monomer,
        dimer_assignment=_lpt_dimers(sim, monomer),
        dimer_pairs=sim.dimer_pairs,
        label="hslb-two-phase",
    )


def uniform_two_phase_schedule(
    system: FragmentedSystem,
    total_nodes: int,
    n_groups: int,
    *,
    calib: MachineCalibration | None = None,
) -> TwoPhaseSchedule:
    """Baseline: uniform monomer groups, round-robin dimers."""
    sim = TwoPhaseSimulator(system, calib=calib, noise=0.0)
    monomer = uniform_static_schedule(system, total_nodes, n_groups)
    assignment = tuple(i % monomer.n_groups for i in range(len(sim.dimer_pairs)))
    return TwoPhaseSchedule(
        monomer=monomer,
        dimer_assignment=assignment,
        dimer_pairs=sim.dimer_pairs,
        label=f"uniform-two-phase-{monomer.n_groups}g",
    )
