"""Fragment-to-group schedulers: HSLB and the baselines it is compared to.

* :func:`hslb_schedule` — the paper's algorithm: a MINLP sizes one group per
  fragment (min-max over fitted ``T_i(n_i)`` with ``sum n_i <= N``), solved
  by LP/NLP branch-and-bound.
* :func:`uniform_static_schedule` — naive SLB: equal groups, fragments dealt
  round-robin with no regard for size.
* :func:`greedy_dynamic_schedule` — idealized DLB: equal groups, fragments
  dispatched longest-first to the earliest-available group with *perfect*
  knowledge of task lengths (an upper bound on what real work-stealing can
  achieve).  With fewer tasks than would fill the groups' nodes, this is the
  regime where the paper argues DLB loses to HSLB.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.builder import AllocationModelBuilder
from repro.core.objectives import Objective
from repro.fmo.gddi import GroupSchedule, even_group_sizes
from repro.fmo.molecules import FragmentedSystem
from repro.fmo.timing import MachineCalibration, total_fragment_model
from repro.minlp import solve
from repro.minlp.bnb import BnBOptions
from repro.minlp.solution import Solution
from repro.perf.model import PerformanceModel


def fragment_models(
    system: FragmentedSystem, calib: MachineCalibration | None = None
) -> dict[int, PerformanceModel]:
    """Ground-truth per-fragment scaling models (see :mod:`repro.fmo.timing`)."""
    return {
        f.index: total_fragment_model(system, f, calib) for f in system.fragments
    }


def hslb_schedule(
    system: FragmentedSystem,
    total_nodes: int,
    *,
    models: Mapping[int, PerformanceModel] | None = None,
    objective: Objective = Objective.MIN_MAX,
    options: BnBOptions | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[GroupSchedule, Solution]:
    """Solve the HSLB MINLP: one group per fragment, sizes chosen globally.

    ``models`` defaults to the analytic ground truth; the full pipeline path
    (benchmark, then fit) goes through :class:`repro.fmo.app.FMOApplication`.
    Returns the schedule and the MINLP solution (prediction = objective).
    """
    if total_nodes < system.n_fragments:
        raise ValueError(
            f"{total_nodes} nodes cannot host {system.n_fragments} one-fragment groups"
        )
    models = dict(models) if models is not None else fragment_models(system)
    b = AllocationModelBuilder(f"fmo-{system.name}", total_nodes)
    for frag in system.fragments:
        b.add_component(f"frag{frag.index}", models[frag.index])
    # The exact budget keeps MAX_MIN from degenerating into starving every
    # group (see builder docs).  MIN_MAX/MIN_SUM never profit from extra
    # nodes beyond each curve's minimum, so the cheaper-to-solve `<=` budget
    # is equivalent for them.
    b.limit_total_nodes(exact=objective is Objective.MAX_MIN)
    b.set_objective(objective)
    # MAX_MIN's epigraph rows (t <= convex) are nonconvex; OA cuts would be
    # invalid, so route that objective to NLP-based branch-and-bound.
    algorithm = "nlpbb" if objective is Objective.MAX_MIN else "auto"
    sol = solve(b.build(), options, algorithm=algorithm, rng=rng).require_ok()
    sizes = tuple(
        int(round(sol.values[f"n_frag{f.index}"])) for f in system.fragments
    )
    schedule = GroupSchedule(
        group_sizes=sizes,
        assignment=tuple(range(system.n_fragments)),
        label=f"hslb-{objective.value}",
    )
    return schedule, sol


def uniform_static_schedule(
    system: FragmentedSystem, total_nodes: int, n_groups: int
) -> GroupSchedule:
    """Equal group sizes; fragments dealt round-robin by index."""
    n_groups = min(n_groups, system.n_fragments)
    sizes = even_group_sizes(total_nodes, n_groups)
    assignment = tuple(i % n_groups for i in range(system.n_fragments))
    return GroupSchedule(sizes, assignment, label=f"uniform-{n_groups}g")


def greedy_dynamic_schedule(
    system: FragmentedSystem,
    total_nodes: int,
    n_groups: int,
    *,
    calib: MachineCalibration | None = None,
) -> GroupSchedule:
    """Idealized DLB: LPT dispatch onto equal groups.

    Uses the true single-group-size cost of each fragment, so it represents
    dynamic balancing with perfect foresight — stronger than any real
    work-stealing runtime.
    """
    n_groups = min(n_groups, system.n_fragments)
    sizes = even_group_sizes(total_nodes, n_groups)
    models = fragment_models(system, calib)
    # Cost of each fragment on its (equal-sized) group.
    costs = {
        f.index: float(models[f.index].time(sizes[0])) for f in system.fragments
    }
    order = sorted(costs, key=costs.get, reverse=True)
    loads = [0.0] * n_groups
    assignment = [0] * system.n_fragments
    for frag in order:
        grp = int(np.argmin(loads))
        assignment[frag] = grp
        loads[grp] += costs[frag]
    return GroupSchedule(sizes, tuple(assignment), label=f"dlb-{n_groups}g")
