"""Synthetic fragmented molecular systems.

Real FMO inputs are molecular geometries fragmented by chemical intuition
(water molecules, protein residues).  For the reproduction we generate
synthetic systems whose *load profile* — the distribution of fragment sizes
and the set of nearby dimer pairs — matches the regimes the papers discuss:

* water clusters: many small, nearly equal fragments (DLB-friendly);
* protein-like chains: a few large fragments of diverse size (the HSLB
  sweet spot: "in the special cases of a few large tasks of diverse size,
  DLB algorithms are not appropriate").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import default_rng

#: Basis functions per atom for a mid-size basis set (6-31G*-ish average).
BASIS_PER_ATOM = 8.8

#: Dimers farther apart than this (in arbitrary length units) are treated by
#: the cheap electrostatic approximation and cost no SCF time.
DIMER_CUTOFF = 3.5


@dataclass(frozen=True)
class Fragment:
    """One FMO fragment: a contiguous piece of the molecule."""

    index: int
    n_atoms: int
    position: tuple[float, float, float]

    def __post_init__(self) -> None:
        if self.n_atoms < 1:
            raise ValueError(f"fragment {self.index}: needs at least one atom")

    @property
    def n_basis(self) -> int:
        """Basis-set size — the cost driver for SCF (O(N^3) and up)."""
        return max(2, int(round(self.n_atoms * BASIS_PER_ATOM)))


@dataclass(frozen=True)
class FragmentedSystem:
    """A fragmented molecule plus its SCF-relevant dimer list."""

    name: str
    fragments: tuple[Fragment, ...]
    scc_iterations: int = 12

    def __post_init__(self) -> None:
        if not self.fragments:
            raise ValueError("system has no fragments")
        if self.scc_iterations < 1:
            raise ValueError("scc_iterations must be >= 1")
        for i, frag in enumerate(self.fragments):
            if frag.index != i:
                raise ValueError(f"fragment indices must be 0..{len(self.fragments)-1}")

    @property
    def n_fragments(self) -> int:
        return len(self.fragments)

    @property
    def n_atoms(self) -> int:
        return sum(f.n_atoms for f in self.fragments)

    def dimer_pairs(self, cutoff: float = DIMER_CUTOFF) -> tuple[tuple[int, int], ...]:
        """Index pairs of fragments close enough to need explicit dimer SCF."""
        pos = np.array([f.position for f in self.fragments])
        out = []
        for i in range(len(self.fragments)):
            d = np.linalg.norm(pos[i + 1 :] - pos[i], axis=1)
            for off in np.nonzero(d <= cutoff)[0]:
                out.append((i, i + 1 + int(off)))
        return tuple(out)

    def size_diversity(self) -> float:
        """Coefficient of variation of fragment atom counts (0 = uniform)."""
        sizes = np.array([f.n_atoms for f in self.fragments], dtype=float)
        return float(sizes.std() / sizes.mean())


def water_cluster(
    n_molecules: int, rng: np.random.Generator | None = None
) -> FragmentedSystem:
    """A cluster of water molecules, one 3-atom fragment each.

    Nearly homogeneous tasks — the easy case every scheduler handles.
    """
    if n_molecules < 1:
        raise ValueError("need at least one molecule")
    rng = rng or default_rng()
    # Blob of points with ~unit nearest-neighbour spacing.
    radius = max(1.0, n_molecules ** (1.0 / 3.0))
    positions = rng.uniform(-radius, radius, size=(n_molecules, 3))
    fragments = tuple(
        Fragment(i, 3, tuple(float(x) for x in positions[i]))
        for i in range(n_molecules)
    )
    return FragmentedSystem(f"(H2O)_{n_molecules}", fragments, scc_iterations=10)


def protein_like(
    n_fragments: int,
    rng: np.random.Generator | None = None,
    *,
    min_atoms: int = 8,
    max_atoms: int = 60,
) -> FragmentedSystem:
    """A chain of residues with widely varying sizes.

    This is the "few large tasks of diverse size" regime: task costs scale
    like atoms^3, so a 60-atom residue is ~400x the work of an 8-atom one.
    """
    if n_fragments < 1:
        raise ValueError("need at least one fragment")
    if not (1 <= min_atoms <= max_atoms):
        raise ValueError("need 1 <= min_atoms <= max_atoms")
    rng = rng or default_rng()
    # Log-uniform sizes: a heavy tail of big residues.
    sizes = np.exp(rng.uniform(np.log(min_atoms), np.log(max_atoms), n_fragments))
    fragments = tuple(
        Fragment(
            i,
            int(round(sizes[i])),
            (float(i) * 1.5, float(rng.normal(0, 0.3)), float(rng.normal(0, 0.3))),
        )
        for i in range(n_fragments)
    )
    return FragmentedSystem(f"protein-{n_fragments}", fragments, scc_iterations=14)
