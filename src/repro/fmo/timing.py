"""Per-fragment SCF cost models.

The dominant FMO cost is each fragment's self-consistent-field solve.  For a
fragment with ``N`` basis functions on ``n`` nodes we model one SCF as

``T(n) = a/n + b*n + d`` with
``a ~ kappa_fock * N^3`` (Fock build + diagonalization, parallelizable),
``b ~ kappa_comm * N``  (collectives grow with node count),
``d ~ kappa_ser  * N^2`` (serial setup, I/O, diagonalization remainder)

— i.e. exactly the paper's Table II family, with physically-scaled
coefficients.  The constants below are calibrated to give seconds-scale
monomer times for 10–60-atom fragments, matching the granularity the SC 2012
paper reports on Blue Gene/P.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fmo.molecules import Fragment, FragmentedSystem
from repro.perf.model import PerformanceModel
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MachineCalibration:
    """Machine-dependent cost constants (a synthetic Blue Gene/P)."""

    kappa_fock: float = 4.0e-6   # s per basis^3, single node
    kappa_comm: float = 6.0e-6   # s per basis per node
    kappa_serial: float = 2.0e-5  # s per basis^2
    dimer_factor: float = 0.35   # dimer SCF converges faster than monomer SCC

    def __post_init__(self) -> None:
        check_positive("kappa_fock", self.kappa_fock)
        check_positive("kappa_comm", self.kappa_comm, strict=False)
        check_positive("kappa_serial", self.kappa_serial, strict=False)
        check_positive("dimer_factor", self.dimer_factor)


def monomer_model(
    fragment: Fragment, calib: MachineCalibration | None = None
) -> PerformanceModel:
    """Performance model for one monomer SCF iteration of ``fragment``."""
    calib = calib or MachineCalibration()
    nb = float(fragment.n_basis)
    return PerformanceModel(
        a=calib.kappa_fock * nb**3,
        b=calib.kappa_comm * nb,
        c=1.0,
        d=calib.kappa_serial * nb**2,
    )


def dimer_model(
    frag_i: Fragment, frag_j: Fragment, calib: MachineCalibration | None = None
) -> PerformanceModel:
    """Performance model for the (i,j) dimer SCF.

    The dimer carries both fragments' basis sets; a shared-work discount
    reflects its single (non-SCC-iterated) convergence.
    """
    calib = calib or MachineCalibration()
    nb = float(frag_i.n_basis + frag_j.n_basis)
    return PerformanceModel(
        a=calib.dimer_factor * calib.kappa_fock * nb**3,
        b=calib.kappa_comm * nb,
        c=1.0,
        d=calib.dimer_factor * calib.kappa_serial * nb**2,
    )


def fragment_workload(
    system: FragmentedSystem, calib: MachineCalibration | None = None
) -> dict[int, float]:
    """Single-node seconds per fragment for one whole FMO run.

    Monomer cost is one SCF iteration times the SCC iteration count; each
    dimer's cost is charged half to each participating fragment (a standard
    work-accounting convention for per-fragment load estimates).
    """
    calib = calib or MachineCalibration()
    load = {
        f.index: system.scc_iterations * monomer_model(f, calib).time(1)
        for f in system.fragments
    }
    for i, j in system.dimer_pairs():
        cost = dimer_model(system.fragments[i], system.fragments[j], calib).time(1)
        load[i] += 0.5 * cost
        load[j] += 0.5 * cost
    return load


def total_fragment_model(
    system: FragmentedSystem,
    fragment: Fragment,
    calib: MachineCalibration | None = None,
) -> PerformanceModel:
    """Scaling model for a fragment's FULL per-run work (monomers + dimers).

    This is what HSLB fits/optimizes: ``T_i(n_i)`` for the complete set of
    tasks fragment ``i`` contributes to a run.
    """
    calib = calib or MachineCalibration()
    m = monomer_model(fragment, calib)
    a = system.scc_iterations * m.a
    b = system.scc_iterations * m.b
    d = system.scc_iterations * m.d
    for i, j in system.dimer_pairs():
        if fragment.index not in (i, j):
            continue
        dm = dimer_model(system.fragments[i], system.fragments[j], calib)
        a += 0.5 * dm.a
        b += 0.5 * dm.b
        d += 0.5 * dm.d
    return PerformanceModel(a=a, b=b, c=1.0, d=d)
