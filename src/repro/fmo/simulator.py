"""FMO execution simulator: runs a group schedule and reports the makespan.

Substitutes for GAMESS/GDDI on Blue Gene.  Each group executes its assigned
fragments' full per-run work (SCC-iterated monomers plus half-shares of
dimers) sequentially; groups run concurrently; the run's wall time is the
slowest group.  Log-normal jitter models run-to-run variation.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.faults.plan import FaultPlan
from repro.fmo.gddi import GroupSchedule
from repro.fmo.molecules import FragmentedSystem
from repro.fmo.timing import MachineCalibration, total_fragment_model
from repro.obs.trace import span
from repro.perf.data import BenchmarkSuite, ComponentBenchmark, ScalingObservation
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng, spawn_rng


@dataclass
class FMOExecutionResult:
    """One run of a schedule: per-group seconds and the wall-clock makespan."""

    group_times: tuple[float, ...]
    makespan: float
    label: str
    fragment_times: dict[int, float] = field(default_factory=dict)

    @property
    def load_imbalance(self) -> float:
        """max/mean group time; 1.0 is a perfectly balanced run."""
        mean = sum(self.group_times) / len(self.group_times)
        return self.makespan / mean if mean > 0 else 1.0


class FMOSimulator:
    """Benchmarkable, executable stand-in for FMO/GDDI on a machine."""

    def __init__(
        self,
        system: FragmentedSystem,
        *,
        calib: MachineCalibration | None = None,
        noise: float = 0.02,
        faults: FaultPlan | None = None,
    ) -> None:
        if noise < 0:
            raise ValueError("noise must be nonnegative")
        if faults is not None and not isinstance(faults, FaultPlan):
            raise TypeError("faults must be a FaultPlan or None")
        self.system = system
        self.calib = calib or MachineCalibration()
        self.noise = float(noise)
        #: Optional deterministic fault injection (:mod:`repro.faults`):
        #: failed/straggling benchmark runs during gather; mid-run group
        #: crashes are handled by :mod:`repro.fmo.recovery`.
        self.faults = faults
        self._models: dict[int, PerformanceModel] = {
            f.index: total_fragment_model(system, f, self.calib)
            for f in system.fragments
        }

    def true_fragment_seconds(self, fragment: int, nodes: int) -> float:
        """Noise-free per-run seconds of ``fragment`` on ``nodes`` nodes."""
        return float(self._models[fragment].time(nodes))

    def fragment_seconds(
        self, fragment: int, nodes: int, rng: np.random.Generator
    ) -> float:
        """One observed timing (ground truth x log-normal jitter)."""
        jitter = float(np.exp(rng.normal(0.0, self.noise))) if self.noise else 1.0
        return self.true_fragment_seconds(fragment, nodes) * jitter

    def execute(
        self, schedule: GroupSchedule, rng: np.random.Generator | None = None
    ) -> FMOExecutionResult:
        """Run the schedule once."""
        rng = rng or default_rng()
        schedule.validate_for(self.system, schedule.total_nodes)
        streams = spawn_rng(rng, self.system.n_fragments)
        frag_times: dict[int, float] = {}
        group_times = [0.0] * schedule.n_groups
        with span("fmo.execute", groups=schedule.n_groups) as sp:
            for frag, grp in enumerate(schedule.assignment):
                t = self.fragment_seconds(
                    frag, schedule.group_sizes[grp], streams[frag]
                )
                frag_times[frag] = t
                group_times[grp] += t
            sp.set_tag("makespan", round(max(group_times), 6))
        return FMOExecutionResult(
            group_times=tuple(group_times),
            makespan=max(group_times),
            label=schedule.label,
            fragment_times=frag_times,
        )

    def benchmark(
        self,
        group_sizes: Sequence[int],
        rng: np.random.Generator,
        *,
        attempt: int = 0,
    ) -> BenchmarkSuite:
        """Gather step: time every fragment at each trial group size.

        Mirrors the FMO benchmarking procedure: short runs with uniform
        groups of each size, recording per-fragment timers.  A fault plan
        can kill the run at a group size (``attempt`` numbers the retry) or
        inflate individual fragment timers, which are then flagged as
        stragglers on the recorded observations.
        """
        suite = BenchmarkSuite()
        with span(
            "fmo.benchmark",
            sizes=len(group_sizes),
            fragments=self.system.n_fragments,
        ):
            for size in group_sizes:
                if size < 1:
                    raise ValueError(f"group size must be >= 1, got {size}")
                if self.faults is not None:
                    self.faults.check_benchmark("fmo", int(size), attempt)
                for frag in range(self.system.n_fragments):
                    seconds = self.fragment_seconds(frag, int(size), rng)
                    status = "ok"
                    if self.faults is not None:
                        mult = self.faults.straggler_multiplier(
                            "fmo", frag, int(size), attempt
                        )
                        if mult > 1.0:
                            seconds *= mult
                            status = "straggler"
                    suite.add(
                        ComponentBenchmark(
                            f"frag{frag}",
                            [ScalingObservation(int(size), seconds, status=status)],
                        )
                    )
        return suite
