"""The :class:`repro.core.Application` adapter for FMO.

Components are fragments (``frag0`` ... ``fragK``); the MINLP is the
min-max one-group-per-fragment sizing problem; execution runs the resulting
schedule through the simulator.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.builder import AllocationModelBuilder
from repro.core.objectives import Objective
from repro.core.spec import Allocation, Application, ExecutionResult
from repro.faults.plan import FaultPlan
from repro.fmo.gddi import GroupSchedule
from repro.fmo.molecules import FragmentedSystem
from repro.fmo.recovery import STRATEGIES, run_with_crash
from repro.fmo.simulator import FMOSimulator
from repro.fmo.timing import MachineCalibration
from repro.minlp.problem import Problem
from repro.minlp.solution import Solution
from repro.perf.data import BenchmarkSuite
from repro.perf.model import PerformanceModel


class FMOApplication(Application):
    """FMO as seen by HSLB."""

    def __init__(
        self,
        system: FragmentedSystem,
        *,
        calib: MachineCalibration | None = None,
        noise: float = 0.02,
        objective: Objective = Objective.MIN_MAX,
        faults: FaultPlan | None = None,
        recovery_strategy: str = "replan",
    ) -> None:
        if recovery_strategy not in STRATEGIES:
            raise ValueError(f"unknown recovery strategy {recovery_strategy!r}")
        self.system = system
        self.objective = objective
        self.fault_plan = faults
        self.recovery_strategy = recovery_strategy
        self.simulator = FMOSimulator(system, calib=calib, noise=noise, faults=faults)

    @property
    def component_names(self) -> tuple[str, ...]:
        return tuple(f"frag{f.index}" for f in self.system.fragments)

    @property
    def requires_nonconvex_solver(self) -> bool:
        # MAX_MIN's epigraph (t <= convex) is not OA-safe.
        return self.objective is Objective.MAX_MIN

    def benchmark(
        self, node_counts: Sequence[int], rng: np.random.Generator
    ) -> BenchmarkSuite:
        return self.simulator.benchmark(node_counts, rng)

    def benchmark_run(
        self,
        node_count: int,
        rng: np.random.Generator,
        *,
        attempt: int = 0,
        probe_extremes: bool = False,
    ) -> BenchmarkSuite:
        del probe_extremes  # FMO benchmarking has no extreme-point probe
        return self.simulator.benchmark([int(node_count)], rng, attempt=attempt)

    def formulate(
        self, models: Mapping[str, PerformanceModel], total_nodes: int
    ) -> Problem:
        if total_nodes < self.system.n_fragments:
            raise ValueError(
                f"{total_nodes} nodes cannot host {self.system.n_fragments} groups"
            )
        b = AllocationModelBuilder(f"fmo-{self.system.name}", total_nodes)
        for name in self.component_names:
            b.add_component(name, models[name])
        b.limit_total_nodes(exact=self.objective is Objective.MAX_MIN)
        b.set_objective(self.objective)
        return b.build()

    def allocation_from_solution(self, solution: Solution) -> Allocation:
        return Allocation(
            {
                name: int(round(solution.values[f"n_{name}"]))
                for name in self.component_names
            }
        )

    def schedule_from_allocation(self, allocation: Allocation) -> GroupSchedule:
        """One group per fragment, sized by the allocation."""
        sizes = tuple(allocation[f"frag{i}"] for i in range(self.system.n_fragments))
        return GroupSchedule(
            group_sizes=sizes,
            assignment=tuple(range(self.system.n_fragments)),
            label="hslb-pipeline",
        )

    def execute(
        self, allocation: Allocation, rng: np.random.Generator
    ) -> ExecutionResult:
        schedule = self.schedule_from_allocation(allocation)
        plan = self.fault_plan
        if plan is not None and plan.crash_group is not None:
            outcome = run_with_crash(
                self.simulator,
                schedule,
                crash_group=int(plan.crash_group),
                crash_fraction=plan.crash_fraction,
                strategy=self.recovery_strategy,
                rng=rng,
            )
            times = {
                f"frag{i}": outcome.fragment_times[i]
                for i in range(self.system.n_fragments)
            }
            return ExecutionResult(
                component_times=times,
                total_time=outcome.makespan,
                metadata={
                    "group_sizes": schedule.group_sizes,
                    "crash_group": outcome.crash_group,
                    "crash_time": outcome.crash_time,
                    "recovery_strategy": outcome.strategy,
                    "lost_fragments": outcome.lost_fragments,
                    "fault_free_makespan": outcome.fault_free_makespan,
                    "makespan_degradation": outcome.degradation,
                },
            )
        run = self.simulator.execute(schedule, rng)
        times = {
            f"frag{i}": run.fragment_times[i] for i in range(self.system.n_fragments)
        }
        return ExecutionResult(
            component_times=times,
            total_time=run.makespan,
            metadata={
                "load_imbalance": run.load_imbalance,
                "group_sizes": schedule.group_sizes,
            },
        )
