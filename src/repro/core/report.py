"""Table-III-style reporting of manual vs HSLB allocations."""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.hslb import HSLBResult
from repro.core.spec import Allocation, ExecutionResult
from repro.util.tables import format_table


def allocation_table(result: HSLBResult, *, title: str | None = None) -> str:
    """One HSLB run: per-component nodes, predicted and actual seconds."""
    headers = ["component", "# nodes", "predicted s"]
    has_actual = result.execution is not None
    if has_actual:
        headers.append("actual s")
    rows = []
    for name in result.allocation.components:
        row: list[object] = [
            name,
            result.allocation[name],
            result.predicted_times.get(name, float("nan")),
        ]
        if has_actual:
            row.append(result.execution.component_times.get(name, float("nan")))
        rows.append(row)
    total: list[object] = ["TOTAL", "", result.predicted_total]
    if has_actual:
        total.append(result.execution.total_time)
    rows.append(total)
    return format_table(headers, rows, title=title)


def comparison_table(
    manual_allocation: Allocation,
    manual_execution: ExecutionResult,
    result: HSLBResult,
    *,
    title: str | None = None,
) -> str:
    """The full Table III block: manual vs HSLB predicted vs HSLB actual."""
    headers = [
        "component",
        "manual nodes",
        "manual s",
        "HSLB nodes",
        "HSLB predicted s",
        "HSLB actual s",
    ]
    rows = []
    for name in result.allocation.components:
        rows.append(
            [
                name,
                manual_allocation[name] if name in manual_allocation.nodes else "",
                manual_execution.component_times.get(name, float("nan")),
                result.allocation[name],
                result.predicted_times.get(name, float("nan")),
                (
                    result.execution.component_times.get(name, float("nan"))
                    if result.execution
                    else float("nan")
                ),
            ]
        )
    rows.append(
        [
            "TOTAL",
            "",
            manual_execution.total_time,
            "",
            result.predicted_total,
            result.execution.total_time if result.execution else float("nan"),
        ]
    )
    return format_table(headers, rows, title=title)


def resilience_summary(result: HSLBResult) -> str:
    """Every degradation the pipeline absorbed, one line per stage.

    Empty-ish runs say so explicitly: operators reading a fault-injected
    report need "no degradation" stated, not inferred from absence.
    """
    lines = []
    if result.gather_report is not None and result.gather_report.degraded:
        lines.append(result.gather_report.summary())
    if result.provenance is not None:
        lines.append(result.provenance.summary())
    if result.recovery is not None:
        lines.append(result.recovery.summary())
    if not lines:
        lines.append(f"pipeline: no degradation (solver tier {result.solver_tier})")
    return "\n".join(lines)


def speedup_summary(
    manual_execution: ExecutionResult, result: HSLBResult
) -> dict[str, float]:
    """Headline ratios the paper quotes (e.g. 'improved ... by 25%')."""
    out: dict[str, float] = {
        "manual_total": manual_execution.total_time,
        "hslb_predicted_total": result.predicted_total,
    }
    if result.execution is not None:
        actual = result.execution.total_time
        out["hslb_actual_total"] = actual
        if actual > 0:
            out["actual_speedup"] = manual_execution.total_time / actual
            out["improvement_pct"] = 100.0 * (
                1.0 - actual / manual_execution.total_time
            )
    if manual_execution.total_time > 0:
        out["predicted_improvement_pct"] = 100.0 * (
            1.0 - result.predicted_total / manual_execution.total_time
        )
    return out
