"""§IV-C applications: predicting layouts, job sizes, and what-ifs.

Once the fitted models and the MINLP formulation exist, they answer
questions beyond "balance this machine" for free.  The paper lists several
(§IV-C and the conclusions); this module implements them:

* :func:`sweep_machine_sizes` — the optimal total time as a function of
  machine size (the raw material for Figure 4 and for job-size decisions);
* :func:`optimal_job_size` — "the prediction of the optimal nodes to run a
  job.  The definition of optimal depends on the goal; it could be a
  cost-efficient goal where nodes are increased until scaling is reduced to
  a predefined limit or it could be the shortest time to solution";
* :func:`compare_layouts` — "which component layout is more or less
  scalable" (the Figure 4 exercise as an API);
* :func:`component_swap_effect` — "how replacing one component with another
  will affect scaling".
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.minlp.problem import Problem
from repro.minlp.solution import Solution
from repro.perf.model import PerformanceModel
from repro.util.tables import format_table

#: A formulation factory: (models, total_nodes) -> Problem.  Applications
#: supply it (e.g. a closure over ``formulate_layout``), the predictor
#: drives it across machine sizes.
Formulator = Callable[[Mapping[str, PerformanceModel], int], Problem]
Solver = Callable[[Problem], Solution]


def _default_solver(problem: Problem) -> Solution:
    from repro.minlp import solve

    return solve(problem).require_ok()


@dataclass
class ScalingSweep:
    """Optimal predicted total time across machine sizes."""

    node_counts: tuple[int, ...]
    totals: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.node_counts) != len(self.totals):
            raise ValueError("node_counts/totals length mismatch")
        if len(self.node_counts) < 2:
            raise ValueError("a sweep needs at least two machine sizes")

    def speedup(self) -> tuple[float, ...]:
        return tuple(self.totals[0] / t for t in self.totals)

    def efficiency(self) -> tuple[float, ...]:
        """Parallel efficiency relative to the smallest machine size."""
        n0, t0 = self.node_counts[0], self.totals[0]
        return tuple(
            (t0 * n0) / (t * n) for n, t in zip(self.node_counts, self.totals)
        )

    def marginal_gain(self) -> tuple[float, ...]:
        """Fractional time saved per doubling-equivalent step, per entry i>0:
        ``1 - t_i/t_{i-1}`` normalized by the log2 size ratio."""
        import math

        out = []
        for i in range(1, len(self.node_counts)):
            ratio = self.node_counts[i] / self.node_counts[i - 1]
            saved = 1.0 - self.totals[i] / self.totals[i - 1]
            out.append(saved / math.log2(ratio) if ratio > 1 else 0.0)
        return tuple(out)

    def render(self, title: str = "scaling sweep") -> str:
        eff = self.efficiency()
        rows = [
            [n, t, s, e]
            for n, t, s, e in zip(
                self.node_counts, self.totals, self.speedup(), eff
            )
        ]
        return format_table(
            ["nodes", "predicted total s", "speedup", "efficiency"],
            rows,
            title=title,
        )


def sweep_machine_sizes(
    models: Mapping[str, PerformanceModel],
    formulator: Formulator,
    node_counts: Sequence[int],
    *,
    solver: Solver | None = None,
) -> ScalingSweep:
    """Solve the allocation MINLP at each machine size."""
    solver = solver or _default_solver
    totals = []
    counts = sorted(set(int(n) for n in node_counts))
    for total in counts:
        sol = solver(formulator(models, total))
        totals.append(float(sol.objective))
    return ScalingSweep(node_counts=tuple(counts), totals=tuple(totals))


@dataclass
class JobSizeRecommendation:
    """The §IV-C job-size answer under both definitions of "optimal"."""

    sweep: ScalingSweep
    efficiency_floor: float
    cost_efficient_nodes: int
    cost_efficient_total: float
    shortest_time_nodes: int
    shortest_time_total: float

    def render(self) -> str:
        return "\n".join(
            [
                self.sweep.render("job-size sweep"),
                (
                    f"cost-efficient choice (efficiency >= "
                    f"{self.efficiency_floor:.0%}): "
                    f"{self.cost_efficient_nodes} nodes "
                    f"({self.cost_efficient_total:.1f} s)"
                ),
                (
                    f"shortest-time choice: {self.shortest_time_nodes} nodes "
                    f"({self.shortest_time_total:.1f} s)"
                ),
            ]
        )


def optimal_job_size(
    models: Mapping[str, PerformanceModel],
    formulator: Formulator,
    node_counts: Sequence[int],
    *,
    efficiency_floor: float = 0.5,
    solver: Solver | None = None,
) -> JobSizeRecommendation:
    """Recommend machine sizes for a job from the fitted models.

    ``cost_efficient_nodes`` is the largest size whose parallel efficiency
    (vs the smallest swept size) stays at or above ``efficiency_floor`` —
    "nodes are increased until scaling is reduced to a predefined limit".
    ``shortest_time_nodes`` is the smallest size achieving (within 0.5%) the
    best total in the sweep — adding nodes beyond it buys nothing.
    """
    if not (0.0 < efficiency_floor <= 1.0):
        raise ValueError(f"efficiency_floor must be in (0, 1], got {efficiency_floor}")
    sweep = sweep_machine_sizes(models, formulator, node_counts, solver=solver)
    eff = sweep.efficiency()

    cost_idx = 0
    for i, e in enumerate(eff):
        if e >= efficiency_floor:
            cost_idx = i
    best_total = min(sweep.totals)
    fast_idx = next(
        i for i, t in enumerate(sweep.totals) if t <= best_total * 1.005
    )
    return JobSizeRecommendation(
        sweep=sweep,
        efficiency_floor=efficiency_floor,
        cost_efficient_nodes=sweep.node_counts[cost_idx],
        cost_efficient_total=sweep.totals[cost_idx],
        shortest_time_nodes=sweep.node_counts[fast_idx],
        shortest_time_total=sweep.totals[fast_idx],
    )


def compare_layouts(
    models: Mapping[str, PerformanceModel],
    formulators: Mapping[str, Formulator],
    node_counts: Sequence[int],
    *,
    solver: Solver | None = None,
) -> dict[str, ScalingSweep]:
    """Sweep several layout formulations over the same machine sizes.

    The label whose sweep dominates (lowest totals) is the most scalable
    layout — the Figure 4 question as a reusable API.
    """
    return {
        label: sweep_machine_sizes(models, f, node_counts, solver=solver)
        for label, f in formulators.items()
    }


def component_swap_effect(
    models: Mapping[str, PerformanceModel],
    formulator: Formulator,
    node_counts: Sequence[int],
    *,
    replace: Mapping[str, PerformanceModel],
    solver: Solver | None = None,
) -> tuple[ScalingSweep, ScalingSweep]:
    """Predict scaling before and after swapping component model(s).

    "How replacing one component with another will affect scaling" — e.g.
    substituting a rewritten ocean model's fitted curve and re-sweeping.
    Returns ``(baseline_sweep, swapped_sweep)``.
    """
    unknown = set(replace) - set(models)
    if unknown:
        raise ValueError(f"cannot replace unknown components {sorted(unknown)}")
    baseline = sweep_machine_sizes(models, formulator, node_counts, solver=solver)
    swapped_models = dict(models)
    swapped_models.update(replace)
    swapped = sweep_machine_sizes(
        swapped_models, formulator, node_counts, solver=solver
    )
    return baseline, swapped
