"""Polynomial-time specialized solver for single-constraint min-max allocation.

§III-E notes that "certain simple MINLPs, such as single constraint resource
constrained MINLPs with non-increasing objectives, can be solved in
polynomial time with customized solvers [Ibaraki & Katoh]".  This module is
that customized solver for the FMO-style problem

    min  max_j T_j(n_j)    s.t.  sum_j n_j <= N,  n_j >= 1 integer,

with each ``T_j`` non-increasing in the relevant range.  The classic greedy
— repeatedly grant one node to the currently slowest component — is exact
here (an exchange argument: any optimal solution can be permuted into the
greedy one without worsening the max).

It serves three roles in the library:

* an independent oracle the tests use to certify the MINLP solvers;
* a fast primal heuristic / warm start;
* a demonstration that HSLB's general MINLP route matches the specialized
  algorithm where both apply (general layouts with sequencing constraints
  and SOS node sets are beyond the greedy's reach — that is why the paper
  needs MINLP at all).
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping

from repro.perf.model import PerformanceModel


def greedy_minmax_allocation(
    models: Mapping[str, PerformanceModel],
    total_nodes: int,
) -> tuple[dict[str, int], float]:
    """Exact min-max allocation by marginal greedy.

    Each component starts at 1 node; the remaining budget is granted one
    node at a time to the component with the largest current time.  A
    component is never pushed past its own ``optimal_nodes`` (adding nodes
    beyond the curve minimum *raises* its time, which can never reduce the
    max).

    Returns ``(allocation, makespan)``.
    """
    if not models:
        raise ValueError("no components to allocate")
    if total_nodes < len(models):
        raise ValueError(
            f"{total_nodes} nodes cannot give {len(models)} components one node each"
        )
    caps = {
        name: max(1, int(model.optimal_nodes(n_max=total_nodes)))
        for name, model in models.items()
    }
    alloc = {name: 1 for name in models}
    # Max-heap on current time (negated), skipping capped components.
    heap = [(-float(models[name].time(1)), name) for name in models]
    heapq.heapify(heap)
    budget = total_nodes - len(models)
    while budget > 0 and heap:
        neg_t, name = heapq.heappop(heap)
        if alloc[name] >= caps[name]:
            continue  # capped: granting more nodes would slow it down
        alloc[name] += 1
        budget -= 1
        heapq.heappush(heap, (-float(models[name].time(alloc[name])), name))
    makespan = max(float(models[n].time(k)) for n, k in alloc.items())
    return alloc, makespan


def minmax_lower_bound(
    models: Mapping[str, PerformanceModel], total_nodes: int
) -> float:
    """A cheap continuous lower bound on the min-max optimum.

    Relax integrality and the per-component floor of one node: the best
    possible makespan is at least ``max_j T_j`` when every component gets
    its continuous water-filling share.  Computed by bisection on the target
    time ``t``: feasible iff the (continuous) nodes needed to bring every
    component down to ``t`` fit in the budget.
    """
    names = list(models)

    def nodes_needed(t: float) -> float:
        total = 0.0
        for name in names:
            m = models[name]
            # Bisect only the decreasing region [1, n*]; beyond the curve
            # minimum more nodes make things slower, never cheaper.
            n_best = min(m.optimal_nodes(n_max=total_nodes), float(total_nodes))
            if m.time(n_best) > t:
                return float("inf")  # this component can never reach t
            lo, hi = 1.0, n_best
            if m.time(lo) <= t:
                total += lo
                continue
            for _ in range(60):
                mid = 0.5 * (lo + hi)
                if m.time(mid) > t:
                    lo = mid
                else:
                    hi = mid
            total += hi
        return total

    t_lo = max(
        float(m.time(min(m.optimal_nodes(n_max=total_nodes), float(total_nodes))))
        for m in models.values()
    )
    t_hi = max(float(m.time(1.0)) for m in models.values())
    for _ in range(60):
        mid = 0.5 * (t_lo + t_hi)
        if nodes_needed(mid) <= total_nodes:
            t_hi = mid
        else:
            t_lo = mid
    return t_hi
