"""The HSLB pipeline: gather -> fit -> solve -> execute (§III-F).

:class:`HSLBOptimizer` orchestrates the four steps against any
:class:`repro.core.spec.Application`.  Each step is also callable on its own
so experiments can reuse benchmark data (the paper: "the data gathering step
can be avoided altogether if reliable benchmarks are already available").

Every step degrades gracefully when an application carries a fault plan
(:mod:`repro.faults`) or when the real machine misbehaves:

* **gather** retries failed benchmark runs with capped exponential backoff,
  drops irrecoverable points, and raises a typed
  :class:`GatherDegradedError` (never a downstream scipy crash) when a
  component ends up unfittable;
* **fit** prunes straggler-flagged observations and can skip-and-report
  degenerate components;
* **solve** walks a degradation chain — OA, then NLP-based branch-and-bound,
  then the greedy proportional fallback — under a wall-clock budget, and
  records the chosen tier as provenance on :class:`HSLBResult`;
* **execute** survives a mid-run node-group crash by re-solving the
  allocation on the surviving nodes and re-running (static re-plan).
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import Allocation, Application, ExecutionResult
from repro.faults.plan import BenchmarkRunError, NodeCrashError
from repro.obs import telemetry
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span, trace_event
from repro.minlp.bnb import BnBOptions
from repro.minlp.nlpbb import solve_minlp_nlpbb
from repro.minlp.oa import solve_minlp_oa
from repro.minlp.problem import Problem
from repro.minlp.solution import Solution, Status
from repro.perf.data import BenchmarkSuite, ComponentBenchmark
from repro.perf.fitting import FitResult, fit_suite
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng

#: Fewest observations the Table II least-squares fit can use.
FIT_MIN_POINTS = 2


def _annotate_retries(bench: ComponentBenchmark, attempt: int) -> ComponentBenchmark:
    """Stamp how many failed attempts preceded these observations."""
    if not attempt:
        return bench
    from dataclasses import replace

    return ComponentBenchmark(
        bench.component, (replace(o, retries=attempt) for o in bench)
    )


# -- gather resilience -------------------------------------------------------


@dataclass(frozen=True)
class GatherPolicy:
    """Retry discipline for the gather step."""

    max_retries: int = 3
    backoff_base: float = 2.0  # seconds before the first retry
    backoff_cap: float = 60.0  # ceiling for the exponential backoff

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 < backoff_base <= backoff_cap")

    def backoff(self, attempt: int) -> float:
        """Simulated wait before retry ``attempt`` (capped exponential)."""
        return min(self.backoff_base * (2.0**attempt), self.backoff_cap)


@dataclass(frozen=True)
class GatherRecord:
    """One benchmark point's brush with failure."""

    nodes: int
    attempts: int
    outcome: str  # "recovered" | "dropped"
    kinds: tuple[str, ...]  # fault kinds seen across attempts
    backoff_seconds: float


@dataclass
class GatherReport:
    """What the resilient gather had to do to deliver its suite."""

    records: list[GatherRecord] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def dropped_counts(self) -> tuple[int, ...]:
        return tuple(r.nodes for r in self.records if r.outcome == "dropped")

    @property
    def retried_counts(self) -> tuple[int, ...]:
        return tuple(r.nodes for r in self.records if r.outcome == "recovered")

    @property
    def total_backoff_seconds(self) -> float:
        return sum(r.backoff_seconds for r in self.records)

    @property
    def degraded(self) -> bool:
        return bool(self.records or self.warnings)

    def summary(self) -> str:
        if not self.degraded:
            return "gather: clean campaign"
        parts = []
        if self.retried_counts:
            parts.append(
                f"{len(self.retried_counts)} run(s) recovered by retry "
                f"(counts {list(self.retried_counts)}, "
                f"{self.total_backoff_seconds:.0f}s backoff)"
            )
        if self.dropped_counts:
            parts.append(f"dropped counts {list(self.dropped_counts)}")
        parts.extend(self.warnings)
        return "gather: " + "; ".join(parts)


class GatherDegradedError(RuntimeError):
    """The gather campaign lost so much data that fitting cannot proceed.

    Carries the per-component reasons and the :class:`GatherReport`, so the
    caller sees exactly which benchmark points died instead of a scipy
    shape/ValueError from deep inside the fitter.
    """

    def __init__(self, reasons: Mapping[str, str], report: GatherReport) -> None:
        self.reasons = dict(reasons)
        self.report = report
        detail = "; ".join(f"{k}: {v}" for k, v in sorted(self.reasons.items()))
        super().__init__(
            f"gather campaign degraded below the fitter's minimum — {detail} "
            f"({report.summary()})"
        )


# -- solver degradation chain ------------------------------------------------


@dataclass(frozen=True)
class SolverAttempt:
    """One tier of the degradation chain: what was tried and how it ended."""

    tier: str  # "oa" | "nlpbb" | "greedy"
    status: str  # solution status, "stalled", "error", or "ok"
    reason: str
    wall_time: float = 0.0


@dataclass(frozen=True)
class SolverProvenance:
    """Which solver tier produced the allocation, and why."""

    tier: str
    reason: str
    attempts: tuple[SolverAttempt, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when the first-choice tier did not produce the answer."""
        return any(a.tier != self.tier for a in self.attempts) or self.tier == "greedy"

    def summary(self) -> str:
        chain = " -> ".join(f"{a.tier}[{a.status}]" for a in self.attempts)
        return f"solver: {self.tier} ({self.reason}); chain: {chain}"


@dataclass(frozen=True)
class ExecutionRecovery:
    """A mid-run node-group crash the pipeline recovered from."""

    component: str
    lost_nodes: int
    crash_fraction: float
    original_allocation: Allocation
    wasted_seconds: float  # work thrown away by the crash (restart penalty)

    def summary(self) -> str:
        return (
            f"recovery: lost {self.lost_nodes} node(s) hosting "
            f"{self.component!r} {100 * self.crash_fraction:.0f}% into the "
            f"run; re-planned on survivors ({self.wasted_seconds:.0f}s wasted)"
        )


@dataclass
class HSLBConfig:
    """Pipeline knobs.

    ``convex_fit`` keeps fitted exponents >= 1 so the MINLP is certifiably
    convex and the OA solver returns the global optimum (§III-E).
    ``algorithm`` may be ``"oa"`` (LP/NLP branch-and-bound, the paper's
    solver) or ``"nlpbb"`` (NLP-based B&B fallback for nonconvex models).

    Resilience knobs: ``gather`` sets the retry/backoff discipline,
    ``prune_stragglers`` drops straggler-flagged observations before
    fitting (when enough clean points remain), ``fit_skip_degenerate``
    lets the fit step skip-and-report unfittable components instead of
    aborting, and ``solver_wall_budget`` caps the *total* wall-clock the
    degradation chain may spend across all MINLP tiers before the greedy
    fallback takes over (None: each tier keeps its own ``bnb.time_limit``).

    ``warm_start`` feeds the greedy primal heuristic's allocation into the
    MINLP tiers as an ``x0`` (see :func:`repro.minlp.heuristics.\
warm_start_incumbent`), pruning the tree from node one.  Off by default so
    the classic pipeline stays bit-identical to the paper runs; the
    allocation service (:mod:`repro.service`) turns it on and also threads
    neighboring cached solutions through the same hook.
    """

    convex_fit: bool = True
    fit_multistart: int = 5
    fit_loss: str = "linear"  # "huber"/"soft_l1" shrug off outlier runs
    algorithm: str = "oa"
    bnb: BnBOptions = field(default_factory=BnBOptions)
    nlp_multistart: int = 1
    gather: GatherPolicy = field(default_factory=GatherPolicy)
    prune_stragglers: bool = True
    fit_skip_degenerate: bool = False
    solver_wall_budget: float | None = None
    warm_start: bool = False

    def __post_init__(self) -> None:
        if self.algorithm not in ("oa", "nlpbb"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.fit_loss not in ("linear", "huber", "soft_l1"):
            raise ValueError(f"unknown fit loss {self.fit_loss!r}")
        if self.solver_wall_budget is not None and self.solver_wall_budget <= 0:
            raise ValueError("solver_wall_budget must be positive")


@dataclass
class HSLBResult:
    """Everything Table III reports for one HSLB run, plus provenance."""

    total_nodes: int
    allocation: Allocation
    predicted_times: dict[str, float]
    predicted_total: float
    fits: dict[str, FitResult]
    solution: Solution
    execution: ExecutionResult | None = None
    provenance: SolverProvenance | None = None
    gather_report: GatherReport | None = None
    recovery: ExecutionRecovery | None = None

    @property
    def solver_tier(self) -> str:
        """Which degradation-chain tier produced the allocation."""
        return self.provenance.tier if self.provenance else "oa"

    @property
    def degraded(self) -> bool:
        """True when any pipeline stage had to degrade to finish."""
        return bool(
            (self.gather_report and self.gather_report.degraded)
            or (self.provenance and self.provenance.degraded)
            or self.recovery
        )

    @property
    def actual_times(self) -> dict[str, float] | None:
        return self.execution.component_times if self.execution else None

    @property
    def actual_total(self) -> float | None:
        return self.execution.total_time if self.execution else None

    @property
    def prediction_error(self) -> float | None:
        """Relative |predicted - actual| / actual of the total time."""
        if self.execution is None or self.execution.total_time == 0:
            return None
        return abs(self.predicted_total - self.execution.total_time) / (
            self.execution.total_time
        )


class HSLBOptimizer:
    """Run the HSLB algorithm against an application adapter."""

    def __init__(self, application: Application, config: HSLBConfig | None = None) -> None:
        self.app = application
        self.config = config or HSLBConfig()
        #: Reports from the most recent gather/solve, for callers that use
        #: the per-step API instead of :meth:`run`.
        self.last_gather_report: GatherReport | None = None
        self.last_provenance: SolverProvenance | None = None

    # -- step 1: gather -----------------------------------------------------

    def gather(
        self,
        node_counts: Sequence[int],
        rng: np.random.Generator | None = None,
    ) -> BenchmarkSuite:
        """Benchmark the application at each total node count.

        §III-C guidance is encoded as validation: at least two counts are
        required, and fewer than four earns a warning in the suite metadata
        (the caller can still proceed — small campaigns are legitimate for
        cheap configurations).

        When the application carries a fault plan, benchmark runs may fail;
        each failed run is retried with capped exponential backoff
        (:class:`GatherPolicy`), irrecoverable node counts are dropped, and
        a :class:`GatherDegradedError` is raised only when some component's
        surviving observations fall below the fitter's minimum of
        :data:`FIT_MIN_POINTS`.
        """
        if len(node_counts) < 2:
            raise ValueError("need at least two benchmark node counts")
        rng = rng or default_rng()
        counts = sorted(set(int(n) for n in node_counts))
        with span("hslb.gather", counts=len(counts)):
            if getattr(self.app, "fault_plan", None) is None:
                # Clean machine: single-call path, bit-identical to the
                # pre-resilience pipeline.
                self.last_gather_report = GatherReport()
                return self.app.benchmark(counts, rng)
            return self._gather_resilient(counts, rng)

    def _gather_resilient(
        self, counts: list[int], rng: np.random.Generator
    ) -> BenchmarkSuite:
        policy = self.config.gather
        suite = BenchmarkSuite()
        report = GatherReport()
        biggest = counts[-1]
        for count in counts:
            kinds: list[str] = []
            backoff = 0.0
            recovered = False
            for attempt in range(policy.max_retries + 1):
                try:
                    part = self.app.benchmark_run(
                        count,
                        rng,
                        attempt=attempt,
                        probe_extremes=(count == biggest),
                    )
                except BenchmarkRunError as exc:
                    kinds.append(exc.fault.kind)
                    if not exc.fault.recoverable:
                        # A dead point: no retry will revive it.
                        break
                    if attempt < policy.max_retries:
                        backoff += policy.backoff(attempt)
                    continue
                for bench in part.values():
                    suite.add(_annotate_retries(bench, attempt))
                recovered = True
                break
            if recovered and kinds:
                report.records.append(
                    GatherRecord(
                        nodes=count,
                        attempts=len(kinds) + 1,
                        outcome="recovered",
                        kinds=tuple(kinds),
                        backoff_seconds=backoff,
                    )
                )
            elif not recovered:
                # Exhausted retries (or hit a permanent fault): drop the point.
                report.records.append(
                    GatherRecord(
                        nodes=count,
                        attempts=len(kinds),
                        outcome="dropped",
                        kinds=tuple(kinds),
                        backoff_seconds=backoff,
                    )
                )
        for rec in report.records:
            if rec.outcome == "recovered":
                REGISTRY.counter("hslb_gather_retries_total").inc(max(rec.attempts - 1, 1))
            else:
                REGISTRY.counter("hslb_gather_dropped_total").inc()
            trace_event(
                f"gather.{rec.outcome}",
                nodes=rec.nodes,
                attempts=rec.attempts,
                kinds=",".join(rec.kinds),
            )
        if len(report.dropped_counts) == len(counts):
            raise GatherDegradedError(
                {name: "no surviving benchmark runs" for name in self.app.component_names},
                report,
            )
        reasons = {}
        for name in self.app.component_names:
            n_obs = len(suite[name]) if name in suite else 0
            if n_obs < FIT_MIN_POINTS:
                reasons[name] = (
                    f"{n_obs} surviving observation(s), fitter needs "
                    f">= {FIT_MIN_POINTS}"
                )
        if reasons:
            raise GatherDegradedError(reasons, report)
        if report.dropped_counts:
            report.warnings.append(
                f"campaign thinned to {len(counts) - len(report.dropped_counts)}"
                f"/{len(counts)} node counts"
            )
        self.last_gather_report = report
        return suite

    # -- step 2: fit --------------------------------------------------------

    def fit(
        self,
        suite: BenchmarkSuite,
        rng: np.random.Generator | None = None,
    ) -> dict[str, FitResult]:
        """Fit each component's performance function (Table II).

        Straggler-flagged observations are pruned first (when enough clean
        points remain); with ``fit_skip_degenerate`` unfittable components
        are skipped and recorded as warnings on the gather report instead of
        aborting the suite.
        """
        missing = set(self.app.component_names) - set(suite.components)
        if missing:
            raise ValueError(f"benchmark suite missing components: {sorted(missing)}")
        if self.config.prune_stragglers:
            suite = suite.pruned(min_points=FIT_MIN_POINTS)
        skipped: dict[str, str] = {}
        with span("hslb.fit", components=len(suite.components)):
            fits = fit_suite(
                suite,
                convex=self.config.convex_fit,
                multistart=self.config.fit_multistart,
                rng=rng or default_rng(),
                loss=self.config.fit_loss,
                skip_degenerate=self.config.fit_skip_degenerate,
                skipped=skipped,
            )
        if skipped and self.last_gather_report is not None:
            for name, reason in sorted(skipped.items()):
                self.last_gather_report.warnings.append(
                    f"fit skipped {name!r}: {reason}"
                )
        return fits

    # -- step 3: solve ------------------------------------------------------

    def solve(
        self,
        fits: Mapping[str, FitResult] | Mapping[str, PerformanceModel],
        total_nodes: int,
        rng: np.random.Generator | None = None,
        *,
        x0: Mapping[str, float] | None = None,
        cut_pool=None,
    ) -> tuple[Allocation, Solution]:
        """Solve the allocation MINLP for a machine of ``total_nodes``.

        Walks the degradation chain (OA -> NLP-B&B -> greedy proportional
        fallback) under ``config.solver_wall_budget``; the chosen tier and
        the reason for every fallback are stored in
        :attr:`last_provenance` and threaded onto :class:`HSLBResult` by the
        pipeline entry points.

        ``x0`` is an explicit warm-start point handed to every MINLP tier
        (the allocation service passes neighboring cached solutions here);
        with ``config.warm_start`` set and no explicit point, the greedy
        primal heuristic's allocation is used instead.  ``cut_pool`` shares
        an :class:`repro.minlp.OACutPool` across successive OA solves —
        valid only while the fitted curves are unchanged, which is exactly
        the re-solve-on-survivors and online-rebalance cases.
        """
        models = {
            name: (f.model if isinstance(f, FitResult) else f)
            for name, f in fits.items()
        }
        with span("hslb.solve", total_nodes=int(total_nodes)) as sp:
            problem = self.app.formulate(models, int(total_nodes))
            allocation, solution, provenance = self._solve_chain(
                problem, models, int(total_nodes), rng, x0=x0, cut_pool=cut_pool
            )
            sp.set_tag("tier", provenance.tier)
            sp.set_tag("status", solution.status.value)
        self.last_provenance = provenance
        return allocation, solution

    def _warm_start_point(
        self,
        models: Mapping[str, PerformanceModel],
        total_nodes: int,
    ) -> dict[str, float] | None:
        """The greedy primal heuristic's allocation as a (partial) ``x0``."""
        try:
            allocation = self.app.fallback_allocation(models, total_nodes)
        except (ValueError, RuntimeError):
            return None
        return {f"n_{name}": float(count) for name, count in allocation.items()}

    def _tiers(self) -> list[str]:
        if self.app.requires_nonconvex_solver:
            # OA cuts are invalid on nonconvex models; skip that tier.
            return ["nlpbb"]
        if self.config.algorithm == "nlpbb":
            return ["nlpbb"]
        return ["oa", "nlpbb"]

    def _solve_tier(
        self,
        tier: str,
        problem: Problem,
        opts: BnBOptions,
        rng: np.random.Generator | None,
        x0: dict[str, float] | None = None,
        cut_pool=None,
    ) -> Solution:
        if tier == "oa":
            return solve_minlp_oa(
                problem,
                opts,
                nlp_multistart=self.config.nlp_multistart,
                rng=rng,
                x0=x0,
                cut_pool=cut_pool,
            )
        multistart = self.config.nlp_multistart
        if self.app.requires_nonconvex_solver:
            multistart = max(multistart, 3)
        return solve_minlp_nlpbb(problem, opts, multistart=multistart, rng=rng, x0=x0)

    def _solve_chain(
        self,
        problem: Problem,
        models: Mapping[str, PerformanceModel],
        total_nodes: int,
        rng: np.random.Generator | None,
        x0: Mapping[str, float] | None = None,
        cut_pool=None,
    ) -> tuple[Allocation, Solution, SolverProvenance]:
        plan = getattr(self.app, "fault_plan", None)
        budget = self.config.solver_wall_budget
        warm = dict(x0) if x0 is not None else None
        if warm is None and self.config.warm_start:
            warm = self._warm_start_point(models, total_nodes)
        start = time.perf_counter()
        attempts: list[SolverAttempt] = []
        tiers = self._tiers()
        for i, tier in enumerate(tiers):
            # Degradation provenance: every failed attempt hands off to the
            # next tier (greedy after the last MINLP tier) and emits exactly
            # one telemetry event carrying the triggering reason.
            next_tier = tiers[i + 1] if i + 1 < len(tiers) else "greedy"
            remaining = None if budget is None else budget - (time.perf_counter() - start)
            if remaining is not None and remaining <= 0:
                attempt = SolverAttempt(tier, "skipped", "wall budget exhausted")
                attempts.append(attempt)
                telemetry.record_degradation(
                    tier, next_tier, attempt.status, attempt.reason
                )
                continue
            if plan is not None and plan.solver_fails(tier):
                telemetry.record_fault("solver_stall", "solve")
                attempt = SolverAttempt(tier, "stalled", "injected solver stall")
                attempts.append(attempt)
                telemetry.record_degradation(
                    tier, next_tier, attempt.status, attempt.reason
                )
                continue
            opts = self.config.bnb.with_budget(wall_seconds=remaining)
            tick = time.perf_counter()
            try:
                sol = self._solve_tier(
                    tier, problem, opts, rng, x0=warm, cut_pool=cut_pool
                )
            except (ValueError, RuntimeError, FloatingPointError) as exc:
                attempt = SolverAttempt(
                    tier,
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - tick,
                )
                attempts.append(attempt)
                telemetry.record_degradation(
                    tier, next_tier, attempt.status, attempt.reason
                )
                continue
            wall = time.perf_counter() - tick
            if not sol.status.is_ok:
                attempt = SolverAttempt(
                    tier,
                    sol.status.value,
                    sol.message or f"solver returned {sol.status.value}",
                    wall,
                )
                attempts.append(attempt)
                telemetry.record_degradation(
                    tier, next_tier, attempt.status, attempt.reason
                )
                continue
            attempts.append(SolverAttempt(tier, "ok", "solved", wall))
            reason = (
                "first-choice tier"
                if len(attempts) == 1
                else "earlier tier(s) failed: "
                + ", ".join(f"{a.tier}={a.status}" for a in attempts[:-1])
            )
            return (
                self.app.allocation_from_solution(sol),
                sol,
                SolverProvenance(tier=tier, reason=reason, attempts=tuple(attempts)),
            )
        # Tier 3: the greedy proportional fallback never fails — it needs no
        # solver, only the fitted curves (and the app's feasibility rules).
        allocation = self.app.fallback_allocation(models, total_nodes)
        objective = self.app.predicted_total(models, allocation)
        solution = Solution(
            status=Status.FEASIBLE,
            values={f"n_{name}": float(count) for name, count in allocation.items()},
            objective=float(objective),
            message="greedy proportional fallback (all MINLP tiers failed)",
        )
        reason = "all MINLP tiers failed: " + ", ".join(
            f"{a.tier}={a.status}" for a in attempts
        )
        return (
            allocation,
            solution,
            SolverProvenance(tier="greedy", reason=reason, attempts=tuple(attempts)),
        )

    # -- step 4: execute ------------------------------------------------------

    def execute(
        self,
        allocation: Allocation,
        rng: np.random.Generator | None = None,
    ) -> ExecutionResult:
        """Run the application at the chosen allocation."""
        with span("hslb.execute", nodes=sum(allocation.nodes.values())):
            return self.app.execute(allocation, rng or default_rng())

    # -- the whole pipeline --------------------------------------------------

    def run(
        self,
        benchmark_node_counts: Sequence[int],
        total_nodes: int,
        rng: np.random.Generator | None = None,
        *,
        execute: bool = True,
    ) -> HSLBResult:
        """Gather, fit, solve, and (optionally) execute in one call."""
        rng = rng or default_rng()
        with span("hslb.run", total_nodes=int(total_nodes)):
            suite = self.gather(benchmark_node_counts, rng)
            fits = self.fit(suite, rng)
            return self.run_from_fits(fits, total_nodes, rng, execute=execute)

    def run_from_fits(
        self,
        fits: Mapping[str, FitResult],
        total_nodes: int,
        rng: np.random.Generator | None = None,
        *,
        execute: bool = True,
        x0: Mapping[str, float] | None = None,
        cut_pool=None,
    ) -> HSLBResult:
        """Steps 3–4 when benchmark data/fits already exist.

        ``cut_pool`` is shared between the primary solve and any
        crash-recovery re-solve: the curves are identical across the two
        (only the node budget shrinks), so pooled OA cuts stay valid and
        the recovery solve starts from a warmed master.
        """
        rng = rng or default_rng()
        REGISTRY.counter("hslb_pipeline_runs_total").inc()
        allocation, solution = self.solve(
            fits, total_nodes, rng, x0=x0, cut_pool=cut_pool
        )
        models = {name: f.model for name, f in fits.items()}
        predicted = self.app.predicted_times(models, allocation)
        result = HSLBResult(
            total_nodes=int(total_nodes),
            allocation=allocation,
            predicted_times=predicted,
            predicted_total=float(solution.objective),
            fits=dict(fits),
            solution=solution,
            provenance=self.last_provenance,
            gather_report=self.last_gather_report,
        )
        if execute:
            try:
                result.execution = self.execute(allocation, rng)
            except NodeCrashError as exc:
                self._recover_execution(result, models, exc, rng, cut_pool=cut_pool)
        return result

    def _recover_execution(
        self,
        result: HSLBResult,
        models: Mapping[str, PerformanceModel],
        crash: NodeCrashError,
        rng: np.random.Generator | None,
        cut_pool=None,
    ) -> None:
        """Static re-plan after a mid-run node-group loss.

        The crashed group's nodes are gone; re-solve the allocation MINLP on
        the surviving machine (same fitted models — the curves did not
        change, only the budget did), re-run, and charge the work the crash
        threw away as a restart penalty on the recovered run's total.
        """
        surviving = result.total_nodes - crash.lost_nodes
        wasted = crash.fraction * float(result.predicted_total)
        telemetry.record_fault("node_crash", "execute")
        REGISTRY.counter("hslb_execution_recoveries_total").inc()
        trace_event(
            "execute.recovering",
            component=crash.component,
            lost_nodes=crash.lost_nodes,
            surviving=surviving,
        )
        recovery = ExecutionRecovery(
            component=crash.component,
            lost_nodes=crash.lost_nodes,
            crash_fraction=crash.fraction,
            original_allocation=result.allocation,
            wasted_seconds=wasted,
        )
        problem = self.app.formulate(models, surviving)
        allocation, solution, provenance = self._solve_chain(
            problem, models, surviving, rng, cut_pool=cut_pool
        )
        execution = self.execute(allocation, rng)
        execution.total_time += wasted
        execution.metadata["recovered_from_crash"] = recovery.summary()
        result.allocation = allocation
        result.predicted_times = self.app.predicted_times(models, allocation)
        result.predicted_total = float(solution.objective) + wasted
        result.solution = solution
        result.provenance = provenance
        result.recovery = recovery
        result.execution = execution
