"""The HSLB pipeline: gather -> fit -> solve -> execute (§III-F).

:class:`HSLBOptimizer` orchestrates the four steps against any
:class:`repro.core.spec.Application`.  Each step is also callable on its own
so experiments can reuse benchmark data (the paper: "the data gathering step
can be avoided altogether if reliable benchmarks are already available").
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import Allocation, Application, ExecutionResult
from repro.minlp.bnb import BnBOptions
from repro.minlp.nlpbb import solve_minlp_nlpbb
from repro.minlp.oa import solve_minlp_oa
from repro.minlp.problem import Problem
from repro.minlp.solution import Solution
from repro.perf.data import BenchmarkSuite
from repro.perf.fitting import FitResult, fit_suite
from repro.perf.model import PerformanceModel
from repro.util.rng import default_rng


@dataclass
class HSLBConfig:
    """Pipeline knobs.

    ``convex_fit`` keeps fitted exponents >= 1 so the MINLP is certifiably
    convex and the OA solver returns the global optimum (§III-E).
    ``algorithm`` may be ``"oa"`` (LP/NLP branch-and-bound, the paper's
    solver) or ``"nlpbb"`` (NLP-based B&B fallback for nonconvex models).
    """

    convex_fit: bool = True
    fit_multistart: int = 5
    fit_loss: str = "linear"  # "huber"/"soft_l1" shrug off outlier runs
    algorithm: str = "oa"
    bnb: BnBOptions = field(default_factory=BnBOptions)
    nlp_multistart: int = 1

    def __post_init__(self) -> None:
        if self.algorithm not in ("oa", "nlpbb"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.fit_loss not in ("linear", "huber", "soft_l1"):
            raise ValueError(f"unknown fit loss {self.fit_loss!r}")


@dataclass
class HSLBResult:
    """Everything Table III reports for one HSLB run."""

    total_nodes: int
    allocation: Allocation
    predicted_times: dict[str, float]
    predicted_total: float
    fits: dict[str, FitResult]
    solution: Solution
    execution: ExecutionResult | None = None

    @property
    def actual_times(self) -> dict[str, float] | None:
        return self.execution.component_times if self.execution else None

    @property
    def actual_total(self) -> float | None:
        return self.execution.total_time if self.execution else None

    @property
    def prediction_error(self) -> float | None:
        """Relative |predicted - actual| / actual of the total time."""
        if self.execution is None or self.execution.total_time == 0:
            return None
        return abs(self.predicted_total - self.execution.total_time) / (
            self.execution.total_time
        )


class HSLBOptimizer:
    """Run the HSLB algorithm against an application adapter."""

    def __init__(self, application: Application, config: HSLBConfig | None = None) -> None:
        self.app = application
        self.config = config or HSLBConfig()

    # -- step 1: gather -----------------------------------------------------

    def gather(
        self,
        node_counts: Sequence[int],
        rng: np.random.Generator | None = None,
    ) -> BenchmarkSuite:
        """Benchmark the application at each total node count.

        §III-C guidance is encoded as validation: at least two counts are
        required, and fewer than four earns a warning in the suite metadata
        (the caller can still proceed — small campaigns are legitimate for
        cheap configurations).
        """
        if len(node_counts) < 2:
            raise ValueError("need at least two benchmark node counts")
        rng = rng or default_rng()
        return self.app.benchmark(sorted(set(int(n) for n in node_counts)), rng)

    # -- step 2: fit --------------------------------------------------------

    def fit(
        self,
        suite: BenchmarkSuite,
        rng: np.random.Generator | None = None,
    ) -> dict[str, FitResult]:
        """Fit each component's performance function (Table II)."""
        missing = set(self.app.component_names) - set(suite.components)
        if missing:
            raise ValueError(f"benchmark suite missing components: {sorted(missing)}")
        return fit_suite(
            suite,
            convex=self.config.convex_fit,
            multistart=self.config.fit_multistart,
            rng=rng or default_rng(),
            loss=self.config.fit_loss,
        )

    # -- step 3: solve ------------------------------------------------------

    def solve(
        self,
        fits: Mapping[str, FitResult] | Mapping[str, PerformanceModel],
        total_nodes: int,
        rng: np.random.Generator | None = None,
    ) -> tuple[Allocation, Solution]:
        """Solve the allocation MINLP for a machine of ``total_nodes``."""
        models = {
            name: (f.model if isinstance(f, FitResult) else f)
            for name, f in fits.items()
        }
        problem = self.app.formulate(models, int(total_nodes))
        solution = self._solve_problem(problem, rng)
        solution.require_ok()
        return self.app.allocation_from_solution(solution), solution

    def _solve_problem(
        self, problem: Problem, rng: np.random.Generator | None
    ) -> Solution:
        if self.app.requires_nonconvex_solver:
            # OA cuts are invalid on nonconvex models; override silently-safe.
            return solve_minlp_nlpbb(
                problem,
                self.config.bnb,
                multistart=max(self.config.nlp_multistart, 3),
                rng=rng,
            )
        if self.config.algorithm == "oa":
            return solve_minlp_oa(
                problem,
                self.config.bnb,
                nlp_multistart=self.config.nlp_multistart,
                rng=rng,
            )
        return solve_minlp_nlpbb(
            problem,
            self.config.bnb,
            multistart=self.config.nlp_multistart,
            rng=rng,
        )

    # -- step 4: execute ------------------------------------------------------

    def execute(
        self,
        allocation: Allocation,
        rng: np.random.Generator | None = None,
    ) -> ExecutionResult:
        """Run the application at the chosen allocation."""
        return self.app.execute(allocation, rng or default_rng())

    # -- the whole pipeline --------------------------------------------------

    def run(
        self,
        benchmark_node_counts: Sequence[int],
        total_nodes: int,
        rng: np.random.Generator | None = None,
        *,
        execute: bool = True,
    ) -> HSLBResult:
        """Gather, fit, solve, and (optionally) execute in one call."""
        rng = rng or default_rng()
        suite = self.gather(benchmark_node_counts, rng)
        fits = self.fit(suite, rng)
        return self.run_from_fits(fits, total_nodes, rng, execute=execute)

    def run_from_fits(
        self,
        fits: Mapping[str, FitResult],
        total_nodes: int,
        rng: np.random.Generator | None = None,
        *,
        execute: bool = True,
    ) -> HSLBResult:
        """Steps 3–4 when benchmark data/fits already exist."""
        rng = rng or default_rng()
        allocation, solution = self.solve(fits, total_nodes, rng)
        models = {name: f.model for name, f in fits.items()}
        predicted = self.app.predicted_times(models, allocation)
        result = HSLBResult(
            total_nodes=int(total_nodes),
            allocation=allocation,
            predicted_times=predicted,
            predicted_total=float(solution.objective),
            fits=dict(fits),
            solution=solution,
        )
        if execute:
            result.execution = self.execute(allocation, rng)
        return result
