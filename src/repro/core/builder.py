"""MINLP construction helpers shared by every HSLB formulation.

Two pieces live here:

* :class:`DiscreteNodeSet` — the paper's "possible allocations" sets
  (Table I lines 5–6, e.g. ``O = {2, 4, ..., 480, 768}``).  The set is
  decomposed into maximal runs of consecutive integers; each run gets a
  selection binary, and the binaries form a special-ordered set (Table I
  lines 29–31).  A fully contiguous set degenerates to a plain bounded
  integer variable — no binaries at all.

* :class:`AllocationModelBuilder` — declares one node-count variable per
  component (wiring up its discrete set if any), exposes each component's
  fitted time expression, and installs the §III-D objective.  Layout
  subclasses (CESM) and schedulers (FMO) add their own temporal/node
  constraints on top through the underlying :class:`Model`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.objectives import Objective, apply_objective
from repro.minlp.expr import Expr, Relation, VarRef
from repro.minlp.modeling import Model
from repro.minlp.problem import Problem
from repro.perf.model import PerformanceModel


@dataclass(frozen=True)
class DiscreteNodeSet:
    """An explicit set of admissible node counts ("sweet spots")."""

    values: tuple[int, ...]

    def __post_init__(self) -> None:
        vals = tuple(sorted({int(v) for v in self.values}))
        if not vals:
            raise ValueError("discrete node set must be non-empty")
        if vals[0] < 1:
            raise ValueError(f"node counts must be >= 1, got {vals[0]}")
        object.__setattr__(self, "values", vals)

    @classmethod
    def from_iterable(cls, values: Iterable[int]) -> "DiscreteNodeSet":
        return cls(tuple(values))

    @classmethod
    def even_range(cls, start: int, stop: int, extras: Sequence[int] = ()) -> "DiscreteNodeSet":
        """Even counts ``start..stop`` plus ``extras`` — the shape of the
        paper's ocean set ``{2, 4, ..., 480, 768}``."""
        return cls(tuple(range(start, stop + 1, 2)) + tuple(extras))

    @classmethod
    def contiguous(cls, lo: int, hi: int, extras: Sequence[int] = ()) -> "DiscreteNodeSet":
        """All integers ``lo..hi`` plus ``extras`` — the shape of the paper's
        atmosphere set ``{1, 2, ..., 1638, 1664}``."""
        return cls(tuple(range(lo, hi + 1)) + tuple(extras))

    @property
    def min(self) -> int:
        return self.values[0]

    @property
    def max(self) -> int:
        return self.values[-1]

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, n: int) -> bool:
        return int(n) in set(self.values)

    def runs(self) -> list[tuple[int, int]]:
        """Maximal runs of consecutive integers, as (lo, hi) pairs."""
        out: list[tuple[int, int]] = []
        lo = hi = self.values[0]
        for v in self.values[1:]:
            if v == hi + 1:
                hi = v
            else:
                out.append((lo, hi))
                lo = hi = v
        out.append((lo, hi))
        return out

    def nearest(self, n: float) -> int:
        """The admissible count closest to ``n`` (ties to the smaller)."""
        return min(self.values, key=lambda v: (abs(v - n), v))

    def below(self, n: float) -> int:
        """The largest admissible count <= n (smallest member if none)."""
        candidates = [v for v in self.values if v <= n]
        return candidates[-1] if candidates else self.values[0]


class AllocationModelBuilder:
    """Declarative construction of HSLB node-allocation MINLPs."""

    def __init__(self, name: str, total_nodes: int) -> None:
        if total_nodes < 1:
            raise ValueError(f"total_nodes must be >= 1, got {total_nodes}")
        self.model = Model(name)
        self.total_nodes = int(total_nodes)
        self._node_vars: dict[str, VarRef] = {}
        self._time_exprs: dict[str, Expr] = {}
        self._models: dict[str, PerformanceModel] = {}
        self._objective_installed = False

    # -- components ------------------------------------------------------

    def add_component(
        self,
        name: str,
        perf_model: PerformanceModel,
        *,
        min_nodes: int = 1,
        max_nodes: int | None = None,
        allowed: DiscreteNodeSet | None = None,
        encoding: str = "run",
    ) -> VarRef:
        """Declare component ``name`` and return its node-count variable.

        With ``allowed`` given, the variable ranges over that set via
        selection binaries in an SOS1; otherwise it is a plain integer in
        ``[min_nodes, max_nodes]``.

        ``encoding`` selects the discrete-set formulation:

        * ``"run"`` (default) — one binary per maximal run of consecutive
          integers, so a contiguous set needs no binaries at all.  This is
          the compressed formulation this library contributes.
        * ``"value"`` — one binary per admissible value, the paper-literal
          Table I lines 29–31 (``sum z_k O_k = n_o``).  Exponentially more
          binaries on dense sets; kept for the SOS-branching ablation that
          reproduces the paper's two-orders-of-magnitude claim.
        """
        if name in self._node_vars:
            raise ValueError(f"duplicate component {name!r}")
        if encoding not in ("run", "value"):
            raise ValueError(f"unknown encoding {encoding!r}")
        if allowed is None:
            hi = self.total_nodes if max_nodes is None else int(max_nodes)
            n = self.model.integer_var(f"n_{name}", max(1, int(min_nodes)), hi)
        else:
            n = self._discrete_node_var(name, allowed, max_nodes, encoding)
        self._node_vars[name] = n
        self._models[name] = perf_model
        self._time_exprs[name] = perf_model.expression(n)
        return n

    def _discrete_node_var(
        self, name: str, allowed: DiscreteNodeSet, max_nodes: int | None, encoding: str
    ) -> VarRef:
        cap = self.total_nodes if max_nodes is None else int(max_nodes)
        usable = [v for v in allowed.values if v <= cap]
        if not usable:
            raise ValueError(
                f"component {name!r}: no admissible node count <= {cap} "
                f"(set minimum is {allowed.min})"
            )
        trimmed = DiscreteNodeSet(tuple(usable))
        if encoding == "value":
            return self._value_encoded_var(name, trimmed)
        runs = trimmed.runs()
        if len(runs) == 1:
            lo, hi = runs[0]
            return self.model.integer_var(f"n_{name}", lo, hi)
        n = self.model.integer_var(f"n_{name}", trimmed.min, trimmed.max)
        zs = [
            self.model.binary_var(f"z_{name}[{k}]") for k in range(len(runs))
        ]
        self.model.add_equals(sum(zs), 1, f"{name}_one_run")
        # n must lie inside the selected run.
        self.model.add(
            n >= sum(lo * z for (lo, _), z in zip(runs, zs)),
            f"{name}_run_lo",
        )
        self.model.add(
            n <= sum(hi * z for (_, hi), z in zip(runs, zs)),
            f"{name}_run_hi",
        )
        self.model.sos1(zs, weights=[float(lo) for lo, _ in runs], name=f"sos_{name}")
        return n

    def _value_encoded_var(self, name: str, trimmed: DiscreteNodeSet) -> VarRef:
        """Paper-literal encoding: sum z_k = 1, sum z_k O_k = n (lines 29-31)."""
        values = trimmed.values
        # The node count itself is continuous here — the binaries carry all
        # the integrality, exactly as in the paper's AMPL model.
        n = self.model.var(f"n_{name}", float(trimmed.min), float(trimmed.max))
        zs = [self.model.binary_var(f"z_{name}[{k}]") for k in range(len(values))]
        self.model.add_equals(sum(zs), 1, f"{name}_one_value")
        self.model.add_equals(
            sum(float(v) * z for v, z in zip(values, zs)), n, f"{name}_value_link"
        )
        self.model.sos1(zs, weights=[float(v) for v in values], name=f"sos_{name}")
        return n

    # -- views ------------------------------------------------------------

    @property
    def components(self) -> tuple[str, ...]:
        return tuple(self._node_vars)

    def node_var(self, name: str) -> VarRef:
        return self._node_vars[name]

    def time_expr(self, name: str) -> Expr:
        """The fitted ``T_name(n_name)`` as a symbolic expression."""
        return self._time_exprs[name]

    def perf_model(self, name: str) -> PerformanceModel:
        return self._models[name]

    # -- constraints / objective ------------------------------------------

    def add_constraint(self, relation: Relation, name: str | None = None) -> str:
        """Add an arbitrary extra constraint (layout sequencing rules etc.)."""
        return self.model.add(relation, name)

    def limit_total_nodes(
        self, components: Sequence[str] | None = None, *, exact: bool = False
    ) -> None:
        """Require the named components' node counts to fit in the machine.

        ``exact=True`` forces the full machine to be used (``sum n_j == N``).
        This matters for the max-min objective: with a ``<=`` budget the
        optimizer can "improve" the minimum component time by starving every
        component, which is never the intent; pinning the budget turns
        max-min into genuine raise-the-floor balancing.
        """
        names = list(components) if components is not None else list(self._node_vars)
        if not names:
            raise ValueError("no components to constrain")
        total = sum(self._node_vars[c] for c in names)
        if exact:
            self.model.add_equals(total, self.total_nodes, "machine_capacity")
        else:
            self.model.add(total <= self.total_nodes, "machine_capacity")

    def time_upper_bound(self) -> float:
        """A safe upper bound on any component time: T_j at its minimum nodes."""
        worst = 0.0
        for name, model in self._models.items():
            worst = max(worst, float(model.time(1)))
        return 2.0 * worst + 1.0

    def set_objective(self, objective: Objective = Objective.MIN_MAX) -> VarRef | None:
        """Install a §III-D objective over ALL component times.

        Layout formulations with bespoke makespan structure (e.g. CESM
        layout 1's ``max(max(ice,lnd)+atm, ocn)``) skip this and build their
        own epigraph constraints directly on :attr:`model`.
        """
        if self._objective_installed:
            raise RuntimeError("objective already installed")
        self._objective_installed = True
        return apply_objective(
            self.model,
            objective,
            self._time_exprs,
            time_upper_bound=self.time_upper_bound(),
        )

    def build(self) -> Problem:
        """Compile to a solver-ready problem."""
        return self.model.build()
