"""The HSLB algorithm: the paper's primary contribution.

The four-step pipeline (§III-F):

1. **Gather** — run the application at several node counts
   (:meth:`HSLBOptimizer.gather`);
2. **Fit** — least-squares fit of each component's performance function
   (:meth:`HSLBOptimizer.fit`);
3. **Solve** — MINLP for the optimal node allocation
   (:meth:`HSLBOptimizer.solve`);
4. **Execute** — run with the optimal allocation
   (:meth:`HSLBOptimizer.execute`).

Application adapters (CESM in :mod:`repro.cesm`, FMO in :mod:`repro.fmo`)
supply the benchmarking, model-building, and execution callbacks.
"""

from repro.core.builder import AllocationModelBuilder, DiscreteNodeSet
from repro.core.greedy import greedy_minmax_allocation, minmax_lower_bound
from repro.core.hslb import HSLBConfig, HSLBOptimizer, HSLBResult
from repro.core.objectives import Objective
from repro.core.predictor import (
    compare_layouts,
    component_swap_effect,
    optimal_job_size,
    sweep_machine_sizes,
)
from repro.core.report import allocation_table, comparison_table
from repro.core.spec import Allocation, Application, ExecutionResult

__all__ = [
    "Allocation",
    "AllocationModelBuilder",
    "Application",
    "DiscreteNodeSet",
    "ExecutionResult",
    "HSLBConfig",
    "HSLBOptimizer",
    "HSLBResult",
    "Objective",
    "allocation_table",
    "compare_layouts",
    "comparison_table",
    "component_swap_effect",
    "greedy_minmax_allocation",
    "minmax_lower_bound",
    "optimal_job_size",
    "sweep_machine_sizes",
]
