"""The candidate objective functions of §III-D.

Given per-component time expressions ``T_j(n_j)``, the paper considers:

1. **min-max** (eq. 1) — minimize the slowest component; the objective used
   throughout the paper ("performed slightly better than max-min");
2. **max-min** (eq. 2) — maximize the fastest component (pushes everything
   to be equally loaded from below);
3. **min-sum** (eq. 3) — minimize total time; "obviously out of
   consideration" for CESM because components overlap, and previously shown
   to perform much worse for FMO.

All three are implemented so the ablation benchmark can quantify those
claims; :func:`apply_objective` rewrites each into smooth epigraph form so
any solver in the toolkit can handle them.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping

from repro.minlp.expr import Expr, VarRef, sum_exprs
from repro.minlp.modeling import Model


class Objective(enum.Enum):
    """§III-D objective selection."""

    MIN_MAX = "min-max"
    MAX_MIN = "max-min"
    MIN_SUM = "min-sum"


def apply_objective(
    model: Model,
    objective: Objective,
    time_exprs: Mapping[str, Expr],
    *,
    time_upper_bound: float,
    epigraph_name: str = "T",
) -> VarRef | None:
    """Install ``objective`` over ``time_exprs`` on ``model``.

    * MIN_MAX adds ``T >= T_j`` for every component and minimizes ``T``;
    * MAX_MIN adds ``T <= T_j`` and maximizes ``T``;
    * MIN_SUM minimizes ``sum_j T_j`` directly (no epigraph variable).

    Returns the epigraph variable (None for MIN_SUM).  ``time_upper_bound``
    bounds the epigraph variable so relaxations stay bounded.
    """
    if not time_exprs:
        raise ValueError("no component time expressions supplied")
    if objective is Objective.MIN_SUM:
        # Separable epigraph: one auxiliary per component.  Outer
        # approximation then cuts each T_j surface independently, which is
        # dramatically tighter than linearizing the full sum at once.
        aux = []
        for name, expr in time_exprs.items():
            t_j = model.var(f"t_{name}", lb=0.0, ub=float(time_upper_bound))
            model.add(t_j >= expr, f"minsum_{name}")
            aux.append(t_j)
        model.minimize(sum_exprs(aux))
        return None
    t = model.var(epigraph_name, lb=0.0, ub=float(time_upper_bound))
    if objective is Objective.MIN_MAX:
        for name, expr in time_exprs.items():
            model.add(t >= expr, f"minmax_{name}")
        model.minimize(t)
    else:  # MAX_MIN
        for name, expr in time_exprs.items():
            model.add(t <= expr, f"maxmin_{name}")
        model.maximize(t)
    return t


def evaluate_objective(
    objective: Objective, component_times: Mapping[str, float]
) -> float:
    """Score realized component times under the chosen objective.

    Useful for comparing allocations produced under different objectives on
    an equal footing (the ablation reports all three scores per allocation).
    """
    times = list(component_times.values())
    if not times:
        raise ValueError("no component times supplied")
    if objective is Objective.MIN_MAX:
        return max(times)
    if objective is Objective.MAX_MIN:
        return min(times)
    return sum(times)
