"""Allocation/application abstractions shared by every HSLB deployment.

An :class:`Application` is what HSLB optimizes: something that can be
benchmarked at a node count (gather), modeled as a MINLP given fitted
performance curves (solve), and executed at a chosen allocation (execute).
The CESM and FMO subpackages provide concrete implementations.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.minlp.problem import Problem
from repro.minlp.solution import Solution
from repro.perf.data import BenchmarkSuite
from repro.perf.model import PerformanceModel


@dataclass(frozen=True)
class Allocation:
    """A node assignment: component name -> node count."""

    nodes: Mapping[str, int]

    def __post_init__(self) -> None:
        clean = {}
        for name, count in self.nodes.items():
            count = int(round(count))
            if count < 1:
                raise ValueError(f"component {name!r} allocated {count} nodes")
            clean[name] = count
        object.__setattr__(self, "nodes", dict(clean))

    def __getitem__(self, component: str) -> int:
        return self.nodes[component]

    def __iter__(self):
        return iter(self.nodes)

    def items(self):
        return self.nodes.items()

    @property
    def components(self) -> tuple[str, ...]:
        return tuple(self.nodes)

    def total(self) -> int:
        """Sum of all component allocations (NOT the machine footprint —
        sequential components share nodes; layouts define the footprint)."""
        return sum(self.nodes.values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.nodes.items())
        return f"Allocation({inner})"


@dataclass
class ExecutionResult:
    """Outcome of one (simulated) application run at a fixed allocation."""

    component_times: dict[str, float]
    total_time: float
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_time < 0:
            raise ValueError("total_time must be nonnegative")
        for name, t in self.component_times.items():
            if t < 0:
                raise ValueError(f"negative time for component {name!r}")


class Application(abc.ABC):
    """The contract HSLB needs from an application.

    Implementations own the machine/substrate: for this reproduction both
    CESM and FMO back onto simulators whose observable behaviour (node count
    in, seconds out) is calibrated to the paper's published data.
    """

    #: Optional fault-injection plan (:class:`repro.faults.FaultPlan`).
    #: Applications that support injection set this; the pipeline switches to
    #: its resilient gather/solve/execute paths whenever it is non-None.
    fault_plan = None

    @property
    @abc.abstractmethod
    def component_names(self) -> tuple[str, ...]:
        """Names of the components HSLB balances (e.g. lnd/ice/atm/ocn)."""

    @property
    def requires_nonconvex_solver(self) -> bool:
        """True when :meth:`formulate` emits nonconvex constraints (e.g. the
        Tsync coupling), so OA's linearization cuts would be invalid and the
        pipeline must use NLP-based branch-and-bound instead."""
        return False

    @abc.abstractmethod
    def benchmark(
        self,
        node_counts: Sequence[int],
        rng: np.random.Generator,
    ) -> BenchmarkSuite:
        """Step 1 (gather): run at each of ``node_counts`` total nodes and
        record every component's wall-clock time."""

    @abc.abstractmethod
    def formulate(
        self,
        models: Mapping[str, PerformanceModel],
        total_nodes: int,
    ) -> Problem:
        """Step 3 (solve) model builder: the Table-I MINLP for this app."""

    @abc.abstractmethod
    def allocation_from_solution(self, solution: Solution) -> Allocation:
        """Extract the integer node allocation from a MINLP solution."""

    @abc.abstractmethod
    def execute(
        self,
        allocation: Allocation,
        rng: np.random.Generator,
    ) -> ExecutionResult:
        """Step 4 (execute): run at ``allocation`` and report actual times."""

    def predicted_times(
        self,
        models: Mapping[str, PerformanceModel],
        allocation: Allocation,
    ) -> dict[str, float]:
        """Per-component times the fitted models predict for ``allocation``."""
        return {
            name: float(models[name].time(allocation[name]))
            for name in allocation.components
            if name in models
        }

    # -- resilience hooks (defaults suit min-max applications) ---------------

    def benchmark_run(
        self,
        node_count: int,
        rng: np.random.Generator,
        *,
        attempt: int = 0,
        probe_extremes: bool = False,
    ) -> BenchmarkSuite:
        """One gather run at a single total node count.

        The resilient gather path retries *individual* runs, so it needs a
        per-count entry point; the default delegates to :meth:`benchmark`.
        ``attempt`` numbers retries (fault plans key their draws off it) and
        ``probe_extremes`` marks the campaign's largest count, where
        applications may add extra bracketing probes.  Implementations may
        raise :class:`repro.faults.BenchmarkRunError` for an injected (or
        real) failed run.
        """
        del attempt, probe_extremes  # defaults ignore the resilience hints
        return self.benchmark([int(node_count)], rng)

    def fallback_allocation(
        self,
        models: Mapping[str, PerformanceModel],
        total_nodes: int,
    ) -> Allocation:
        """Last-resort allocation when every MINLP solver tier has failed.

        The default is the exact polynomial-time greedy for single-budget
        min-max problems (:mod:`repro.core.greedy`) — proportional in the
        sense that each component's share follows its fitted curve.
        Applications with layout/admissibility constraints the greedy cannot
        see must override this with a heuristic that is always feasible.
        """
        from repro.core.greedy import greedy_minmax_allocation

        alloc, _ = greedy_minmax_allocation(models, int(total_nodes))
        return Allocation(alloc)

    def predicted_total(
        self,
        models: Mapping[str, PerformanceModel],
        allocation: Allocation,
    ) -> float:
        """Objective value the models predict for ``allocation``.

        Used to price fallback allocations that never went through a MINLP
        solve.  The default is the min-max makespan; applications with
        richer objectives (e.g. CESM's layout makespan) override it.
        """
        times = self.predicted_times(models, allocation)
        if not times:
            raise ValueError("no models available to price the allocation")
        return max(times.values())
