"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Prometheus-flavoured semantics with zero dependencies:

* **Counter** — monotone float, ``inc()``-only, optional labels;
* **Gauge** — last-write-wins float, optional labels;
* **Histogram** — cumulative fixed buckets plus ``_sum``/``_count``, the
  same shape :class:`repro.service.metrics.LatencyHistogram` uses, so the
  service's numbers merge into one scrape.

Labeled children are keyed by a sorted ``(name, value)`` tuple, so label
order never mints a new series.  The module-level :data:`REGISTRY` is the
process-wide default; tests build private :class:`MetricsRegistry`
instances instead of resetting the global one mid-flight.
"""

from __future__ import annotations

import bisect
import threading
from collections.abc import Iterator, Sequence

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Quantiles every histogram exports alongside its buckets.  p999 is the
#: tail the serving tier's latency SLO is stated in.
EXPORTED_QUANTILES = (0.5, 0.99, 0.999)

#: Raw observations retained per label key for exact quantiles; beyond
#: this the quantile falls back to in-bucket linear interpolation.
EXACT_SAMPLE_CAP = 1024

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common shape: name, help text, typed label-keyed children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or not name.replace("_", "a").isalnum() or name[0].isdigit():
            raise ValueError(f"bad metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def reset(self) -> None:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing value, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[tuple[str, _LabelKey, float]]:
        for key, v in sorted(self._values.items()):
            yield self.name, key, v

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(Metric):
    """A value that can go up and down (queue depth, cache size, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[tuple[str, _LabelKey, float]]:
        for key, v in sorted(self._values.items()):
            yield self.name, key, v

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Histogram(Metric):
    """Cumulative fixed-bucket histogram with ``_sum`` and ``_count``."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("buckets must be a sorted non-empty sequence")
        self.buckets = bounds
        self._counts: dict[_LabelKey, list[int]] = {}
        self._sums: dict[_LabelKey, float] = {}
        self._totals: dict[_LabelKey, int] = {}
        self._samples: dict[_LabelKey, list[float]] = {}
        self._exemplars: dict[_LabelKey, dict[int, tuple[str, float]]] = {}

    def observe(self, value: float, exemplar: str | None = None, **labels: str) -> None:
        """Record one observation; ``exemplar`` ties it to a ``trace_id``.

        Exemplars are kept per native bucket, latest-wins, so a scrape can
        point from a slow bucket straight at a request trace to pull up.
        """
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.buckets) + 1)
                self._sums[key] = 0.0
                self._totals[key] = 0
                self._samples[key] = []
            idx = bisect.bisect_left(self.buckets, value)
            counts[idx] += 1
            self._sums[key] += value
            self._totals[key] += 1
            retained = self._samples[key]
            if len(retained) < EXACT_SAMPLE_CAP:
                retained.append(value)
            if exemplar:
                self._exemplars.setdefault(key, {})[idx] = (str(exemplar), value)

    def exemplars(self) -> Iterator[tuple[_LabelKey, str, str, float]]:
        """Yield ``(label_key, le, trace_id, value)`` for every kept exemplar."""
        with self._lock:
            kept = {k: dict(v) for k, v in self._exemplars.items()}
        for key in sorted(kept):
            for idx, (trace_id, value) in sorted(kept[key].items()):
                le = "+Inf" if idx == len(self.buckets) else repr(self.buckets[idx])
                yield key, le, trace_id, value

    def count(self, **labels: str) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: str) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def quantile(self, q: float, **labels: str) -> float:
        """Quantile estimate: exact on small samples, interpolated after.

        While a label key has seen no more than :data:`EXACT_SAMPLE_CAP`
        observations, every one is still retained and the result is the
        interpolated order statistic — exact tail percentiles (p999) on
        small counts.  Past the cap, the estimate interpolates linearly
        inside the cumulative bucket covering the target rank.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        key = _label_key(labels)
        with self._lock:
            total = self._totals.get(key, 0)
            if total == 0:
                return 0.0
            retained = self._samples.get(key, [])
            if total <= len(retained):
                retained = sorted(retained)
                pos = q * (total - 1)
                lo = int(pos)
                hi = min(lo + 1, total - 1)
                return retained[lo] + (retained[hi] - retained[lo]) * (pos - lo)
            target = q * total
            seen = 0
            lower = 0.0
            for bound, c in zip(self.buckets, self._counts[key]):
                if seen + c >= target and c:
                    return lower + (bound - lower) * ((target - seen) / c)
                seen += c
                lower = bound
            return float("inf")  # landed in the overflow bucket

    def samples(self) -> Iterator[tuple[str, _LabelKey, float]]:
        """Prometheus-shaped samples: quantiles, cumulative buckets, sum/count.

        The quantile rows (summary-style ``{quantile="0.999"}`` labels)
        carry the exact-or-interpolated estimates of :meth:`quantile`, so a
        scrape reports tail latency without the consumer re-deriving it
        from buckets.
        """
        for key in sorted(self._counts):
            counts = self._counts[key]
            for q in EXPORTED_QUANTILES:
                yield self.name, key + (("quantile", repr(q)),), self.quantile(
                    q, **dict(key)
                )
            running = 0
            for bound, c in zip(self.buckets, counts):
                running += c
                yield f"{self.name}_bucket", key + (("le", repr(bound)),), float(running)
            running += counts[-1]
            yield f"{self.name}_bucket", key + (("le", "+Inf"),), float(running)
            yield f"{self.name}_sum", key, self._sums[key]
            yield f"{self.name}_count", key, float(self._totals[key])

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._sums.clear()
            self._totals.clear()
            self._samples.clear()
            self._exemplars.clear()


class MetricsRegistry:
    """Name -> metric, with get-or-create accessors and one snapshot view."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def __iter__(self) -> Iterator[Metric]:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def snapshot(self) -> dict:
        """Flat JSON-ready view: ``{metric: {label-string: value}}``."""
        out: dict[str, dict[str, float]] = {}
        for metric in self:
            for name, key, value in metric.samples():
                label = ",".join(f"{k}={v}" for k, v in key)
                out.setdefault(name, {})[label] = value
        return out

    def reset(self) -> None:
        """Zero every registered metric (families stay registered)."""
        for metric in self:
            metric.reset()


#: The process-wide default registry.
REGISTRY = MetricsRegistry()
