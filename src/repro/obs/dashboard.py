"""``hslb top`` — a live terminal dashboard over Prometheus samples.

:func:`render_dashboard` is a pure function from parsed exposition
samples (the :func:`repro.obs.export.parse_prometheus` shape) to one
screenful of text, so the tests never need a terminal or a server; the
:func:`top` loop just refetches, re-renders, and repaints.

Panels, in order:

* **SLO** — ``slo_burn_rate`` per target with a burn bar (full bar = 2x
  budget burn), ``slo_latency_seconds`` quantiles and outcome rates per
  priority;
* **Latency** — quantile rows of every ``*_seconds`` histogram;
* **Traffic** — the serving-tier counters (requests, hits, sheds, ...).

The fetch side is pluggable: a URL (scraping the in-process
:class:`~repro.obs.http.MetricsServer`), a file, or any callable
returning exposition text.
"""

from __future__ import annotations

import time
import urllib.request
from collections.abc import Callable

from repro.obs.export import parse_prometheus
from repro.util.ascii_plot import ascii_bar

Samples = dict[str, dict[tuple[tuple[str, str], ...], float]]


def fetch_url(url: str, timeout: float = 5.0) -> str:
    """Scrape exposition text from an HTTP endpoint (stdlib only)."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:  # noqa: S310
        return resp.read().decode()


def _labels(key: tuple[tuple[str, str], ...]) -> dict[str, str]:
    return dict(key)


def _fmt_seconds(v: float) -> str:
    return f"{v * 1e3:9.2f}ms" if v < 10 else f"{v:8.2f}s "


def _slo_panel(samples: Samples, width: int) -> list[str]:
    lines: list[str] = []
    burn = samples.get("slo_burn_rate", {})
    for key, value in sorted(burn.items()):
        target = _labels(key).get("target", "?")
        # Full bar at 2x budget burn: 1.0 sits mid-scale, visibly "half red".
        bar = ascii_bar(min(value / 2.0, 1.0), width=max(10, width - 46))
        mark = "ok" if value <= 1.0 else "BURN"
        lines.append(f"  {target:<22} {value:6.2f}x [{mark:>4}] {bar}")
    lat = samples.get("slo_latency_seconds", {})
    rate = samples.get("slo_outcome_rate", {})
    count = samples.get("slo_window_requests", {})
    priorities = sorted(
        {_labels(k).get("priority", "?") for k in (*lat, *count)}
    )
    for priority in priorities:
        qs = {
            _labels(k)["quantile"]: v
            for k, v in lat.items()
            if _labels(k).get("priority") == priority
        }
        rates = {
            _labels(k)["kind"]: v
            for k, v in rate.items()
            if _labels(k).get("priority") == priority
        }
        n = next(
            (v for k, v in count.items() if _labels(k).get("priority") == priority),
            0.0,
        )
        lines.append(
            f"  {priority:<12} n={int(n):<6d}"
            f" p50={_fmt_seconds(qs.get('p50', 0.0))}"
            f" p99={_fmt_seconds(qs.get('p99', 0.0))}"
            f" shed={rates.get('shed', 0.0):6.1%}"
            f" err={rates.get('error', 0.0):6.1%}"
        )
    return lines


def _latency_panel(samples: Samples) -> list[str]:
    lines: list[str] = []
    for name in sorted(samples):
        if not name.endswith("_seconds") or name.startswith("slo_"):
            continue
        rows = samples[name]
        quantiles = {
            (tuple(kv for kv in k if kv[0] != "quantile"),
             _labels(k).get("quantile")): v
            for k, v in rows.items()
            if "quantile" in _labels(k)
        }
        bases = sorted({base for base, _ in quantiles})
        for base in bases:
            label = ",".join(f"{k}={v}" for k, v in base) or "(all)"
            p50 = quantiles.get((base, "0.5"), 0.0)
            p99 = quantiles.get((base, "0.99"), 0.0)
            p999 = quantiles.get((base, "0.999"), 0.0)
            lines.append(
                f"  {name:<32} {label:<18}"
                f" p50={_fmt_seconds(p50)} p99={_fmt_seconds(p99)}"
                f" p999={_fmt_seconds(p999)}"
            )
    return lines


def _traffic_panel(samples: Samples) -> list[str]:
    lines: list[str] = []
    for name in sorted(samples):
        if name.endswith(("_seconds", "_bucket", "_sum", "_count")):
            continue
        if name.startswith("slo_") and name != "slo_window_requests":
            continue
        if name == "slo_window_requests":
            continue
        rows = samples[name]
        total = sum(rows.values())
        if total == 0:
            continue
        lines.append(f"  {name:<40} {total:12g}")
    return lines


def render_dashboard(samples: Samples, *, width: int = 78) -> str:
    """One screenful of tier health from parsed exposition samples."""
    title = "hslb top"
    out = [title, "=" * min(width, 78)]
    slo = _slo_panel(samples, width)
    if slo:
        out.append("SLO burn & rolling-window latency")
        out.extend(slo)
    latency = _latency_panel(samples)
    if latency:
        out.append("Latency histograms")
        out.extend(latency)
    traffic = _traffic_panel(samples)
    if traffic:
        out.append("Counters & gauges")
        out.extend(traffic)
    if len(out) == 2:
        out.append("(no samples)")
    return "\n".join(out)


def top(
    fetch: Callable[[], str],
    *,
    interval: float = 2.0,
    iterations: int | None = None,
    write: Callable[[str], object] = print,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """The refresh loop behind ``hslb top``: fetch, render, repaint.

    ``iterations=None`` runs until interrupted; tests pass a count and a
    no-op ``sleep``.  Returns the number of successful paints.
    """
    painted = 0
    while iterations is None or painted < iterations:
        try:
            text = fetch()
        except OSError as exc:
            write(f"hslb top: fetch failed: {exc}")
            return painted
        # Clear + home, like watch(1); harmless when redirected to a file.
        write("\x1b[2J\x1b[H" + render_dashboard(parse_prometheus(text)))
        painted += 1
        if iterations is None or painted < iterations:
            sleep(interval)
    return painted
