"""Unified observability: tracing, metrics, logging, and exporters.

Zero-dependency instrumentation for the HSLB pipeline and the allocation
service, built from four small pieces:

* :mod:`repro.obs.trace` — a span-based tracer.  ``with span("solve"):``
  produces a nested span tree with wall-times, tags, and point events;
  disabled (the default) it costs one attribute check and returns a shared
  no-op span, so instrumented hot paths stay hot.
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges,
  and fixed-bucket histograms.  :class:`repro.service.metrics.ServiceMetrics`
  mirrors into it, so one scrape covers the whole process.
* :mod:`repro.obs.logging` — a structured logging facade replacing raw
  ``print`` chatter: leveled, always on stderr, machine-clean stdout.
* :mod:`repro.obs.export` — exporters: JSONL trace dumps, Prometheus text
  exposition (with a round-trip parser), and ASCII timeline/flamegraph
  renders of a finished trace.

Determinism contract: observability *records* wall-clock but never feeds it
back — span/metric state must not influence solver decisions, RNG streams,
or the service's request fingerprints (see DESIGN.md "Observability").
"""

from repro.obs.logging import configure_logging, get_logger, set_verbosity
from repro.obs.metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer, get_tracer, span, trace_event

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "configure_logging",
    "get_logger",
    "get_tracer",
    "set_verbosity",
    "span",
    "trace_event",
]
