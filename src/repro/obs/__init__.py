"""Unified observability: tracing, metrics, SLOs, logging, and exporters.

Zero-dependency instrumentation for the HSLB pipeline and the allocation
service, built from small pieces:

* :mod:`repro.obs.trace` — a span-based tracer.  ``with span("solve"):``
  produces a nested span tree with wall-times, tags, and point events;
  span stacks live in :mod:`contextvars`, so concurrent asyncio tasks and
  threads each nest correctly, and every span carries
  ``trace_id``/``span_id``/``parent_id`` — request trees are real trees,
  stitched across process boundaries via :class:`TraceContext`.  Disabled
  (the default) it costs one attribute check and returns a shared no-op
  span, so instrumented hot paths stay hot.
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges,
  and fixed-bucket histograms (with trace exemplars on buckets).
  :class:`repro.service.metrics.ServiceMetrics` mirrors into it, so one
  scrape covers the whole process.
* :mod:`repro.obs.slo` — rolling-time-window SLO tracking: per-priority
  latency quantiles, shed/error rates, and burn rates against
  configurable targets.
* :mod:`repro.obs.http` — an in-loop asyncio ``/metrics`` + ``/healthz``
  endpoint for live scrapes of a running tier.
* :mod:`repro.obs.dashboard` — ``hslb top``: a terminal dashboard
  rendered from parsed exposition samples.
* :mod:`repro.obs.logging` — a structured logging facade replacing raw
  ``print`` chatter: leveled, always on stderr, machine-clean stdout.
* :mod:`repro.obs.export` — exporters: JSONL trace dumps (with
  ``assemble_trace`` to rebuild one request's tree), Prometheus text
  exposition with exemplars (and a round-trip parser), and ASCII
  timeline/flamegraph renders.

Determinism contract: observability *records* wall-clock but never feeds it
back — span/metric state must not influence solver decisions, RNG streams,
or the service's request fingerprints (see DESIGN.md "Observability").
"""

from repro.obs.logging import configure_logging, get_logger, set_verbosity
from repro.obs.metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slo import DEFAULT_TARGETS, SLOTarget, SLOTracker
from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    get_tracer,
    run_traced_child,
    span,
    trace_event,
)

__all__ = [
    "DEFAULT_TARGETS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SLOTarget",
    "SLOTracker",
    "Span",
    "TraceContext",
    "Tracer",
    "configure_logging",
    "get_logger",
    "get_tracer",
    "run_traced_child",
    "set_verbosity",
    "span",
    "trace_event",
]
