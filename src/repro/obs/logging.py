"""Structured logging facade: leveled stderr chatter, machine-clean stdout.

The library and CLI used to ``print()`` progress chatter; this facade
replaces that with named, leveled loggers that always write to **stderr**
(configurable for tests), so stdout stays parseable under ``--json`` and in
shell pipelines.  Zero dependencies and deliberately tiny — a level gate, a
``key=value`` structured tail, one line per record::

    [info] repro.cli: planned gather campaign counts=[32, 64, 128]

Levels map onto CLI verbosity: ``--quiet`` -> error, default -> info,
``-v`` -> debug.  The default level is **info** so existing progress
chatter stays visible (now on stderr).
"""

from __future__ import annotations

import sys
from typing import Any, TextIO

DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}
_NAME_LEVELS = {v: k for k, v in _LEVEL_NAMES.items()}


class _State:
    level: int = INFO
    stream: TextIO | None = None  # None: resolve sys.stderr at emit time


_STATE = _State()


def configure_logging(
    *, level: int | str | None = None, stream: TextIO | None = None
) -> None:
    """Set the global level and/or output stream (tests pass a StringIO)."""
    if level is not None:
        if isinstance(level, str):
            try:
                level = _NAME_LEVELS[level.lower()]
            except KeyError:
                raise ValueError(f"unknown log level {level!r}") from None
        _STATE.level = int(level)
    if stream is not None:
        _STATE.stream = stream


def set_verbosity(verbose: int = 0, quiet: bool = False) -> None:
    """Map CLI flags to a level: quiet -> error, default -> info, -v -> debug."""
    if quiet:
        configure_logging(level=ERROR)
    elif verbose > 0:
        configure_logging(level=DEBUG)
    else:
        configure_logging(level=INFO)


class Logger:
    """A named emitter; cheap enough to create per module."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def log(self, level: int, msg: str, **fields: Any) -> None:
        if level < _STATE.level:
            return
        stream = _STATE.stream if _STATE.stream is not None else sys.stderr
        tail = "".join(f" {k}={v}" for k, v in fields.items())
        stream.write(f"[{_LEVEL_NAMES.get(level, level)}] {self.name}: {msg}{tail}\n")

    def debug(self, msg: str, **fields: Any) -> None:
        self.log(DEBUG, msg, **fields)

    def info(self, msg: str, **fields: Any) -> None:
        self.log(INFO, msg, **fields)

    def warning(self, msg: str, **fields: Any) -> None:
        self.log(WARNING, msg, **fields)

    def error(self, msg: str, **fields: Any) -> None:
        self.log(ERROR, msg, **fields)

    def isEnabledFor(self, level: int) -> bool:
        return level >= _STATE.level


_LOGGERS: dict[str, Logger] = {}


def get_logger(name: str) -> Logger:
    """Get-or-create the named logger."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = Logger(name)
    return logger
