"""A zero-dependency asyncio HTTP endpoint: ``/metrics`` and ``/healthz``.

Runs *inside* the serving tier's event loop (alongside ``serve_stream``),
so a scrape reads the same registry the request path writes — no second
process, no sockets handed across threads.  The server speaks just enough
HTTP/1.0 for Prometheus and ``curl``: one request per connection, GET
only, ``Connection: close``.

Routes:

* ``GET /metrics``  — Prometheus text exposition of the registry (the SLO
  tracker, when attached, refreshes its ``slo_*`` gauges first);
* ``GET /healthz``  — JSON liveness: ``{"status": "ok"}`` plus whatever
  the health callback reports (tier snapshot highlights);
* anything else — 404.

Binding port 0 (the default) lets the OS pick — tests read the bound
``port`` attribute after :meth:`MetricsServer.start`.
"""

from __future__ import annotations

import asyncio
import json
from collections.abc import Callable

from repro.obs.metrics import REGISTRY, MetricsRegistry

_MAX_REQUEST_BYTES = 16384


class MetricsServer:
    """Serve ``/metrics`` + ``/healthz`` for one registry on one port."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        slo=None,
        health: Callable[[], dict] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else REGISTRY
        self.slo = slo
        self.health = health
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> "MetricsServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "MetricsServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- request handling --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            writer.close()
            return
        if len(request) > _MAX_REQUEST_BYTES:
            await self._respond(writer, 413, "text/plain", "request too large\n")
            return
        parts = request.split(b"\r\n", 1)[0].decode("latin-1").split()
        method, path = (parts + ["", ""])[:2]
        path = path.split("?", 1)[0]
        if method != "GET":
            await self._respond(writer, 405, "text/plain", "GET only\n")
        elif path == "/metrics":
            if self.slo is not None:
                self.slo.export(self.registry)
            from repro.obs.export import prometheus_exposition

            await self._respond(
                writer,
                200,
                "text/plain; version=0.0.4",
                prometheus_exposition(self.registry),
            )
        elif path == "/healthz":
            body = {"status": "ok"}
            if self.health is not None:
                body.update(self.health())
            await self._respond(
                writer, 200, "application/json", json.dumps(body) + "\n"
            )
        else:
            await self._respond(writer, 404, "text/plain", "not found\n")

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, ctype: str, body: str
    ) -> None:
        reasons = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
                   413: "Payload Too Large"}
        payload = body.encode()
        head = (
            f"HTTP/1.0 {status} {reasons.get(status, 'Error')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        try:
            await writer.drain()
        finally:
            writer.close()
