"""Span-based tracing: nested wall-time spans with tags, events, and ids.

Usage::

    from repro.obs import get_tracer, span

    tracer = get_tracer()
    tracer.enable()
    with span("solve", tier="oa"):
        ...
        trace_event("incumbent", objective=123.4)
    tracer.disable()
    print(tracer.render_flamegraph())

The tracer is a process-wide singleton, **disabled by default**.  Disabled,
``span()`` returns a shared no-op object and ``trace_event()`` is a single
attribute check — instrumentation in solver inner loops must stay no-op
cheap (``benchmarks/bench_obs.py`` pins the bound).

**Context propagation.**  Span stacks live in :mod:`contextvars`, not
thread-locals: every asyncio task gets its own stack (copied at task
creation, so a span opened inside a task nests under whatever span was
open when the task was spawned), every thread still starts fresh, and a
:class:`contextvars.Context` captured with ``copy_context()`` carries the
stack across ``run_in_executor`` hops.  Each span carries a ``trace_id``
(shared by the whole request tree), its own ``span_id``, and its parent's
``parent_id`` — so a request's spans form a real tree even when parts of
it were recorded in another task, thread, or process.

**Cross-process spans.**  A :class:`TraceContext` serializes the current
position in the tree; a worker process passes it to
:func:`run_traced_child`, which records the worker-side spans under that
parent and ships them back as dicts for the parent to graft with
:meth:`Tracer.attach_remote`.

Determinism contract: spans record wall-clock for *reporting only*.  No
caller may branch on span state or timings, and nothing here touches RNG
streams or request fingerprints.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections.abc import Callable
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any

_ID_COUNTER = itertools.count(1)
_ID_LOCK = threading.Lock()


def _next_id() -> str:
    """A process-unique id: ``<pid hex>-<counter hex>``.

    The pid is read at mint time (not cached) so forked pool workers mint
    ids in their own namespace even though they inherit the counter.
    """
    with _ID_LOCK:
        n = next(_ID_COUNTER)
    return f"{os.getpid():x}-{n:x}"


@dataclass(frozen=True)
class TraceContext:
    """A serializable position in a trace: enough to parent remote spans.

    ``pid`` records the minting process so :func:`run_traced_child` can
    tell a real process hop from an inline executor running in-process
    (where the live tracer already records spans and must not be reset).
    """

    trace_id: str
    span_id: str
    pid: int

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id, "pid": self.pid}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            pid=int(payload.get("pid", -1)),
        )


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set_tag(self, key: str, value: Any) -> "_NullSpan":
        return self

    def event(self, name: str, **fields: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One timed region of the pipeline: name, tags, events, children."""

    __slots__ = (
        "name", "tags", "events", "children", "start", "end",
        "trace_id", "span_id", "parent_id", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, tags: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.events: list[dict[str, Any]] = []
        self.children: list[Span] = []
        self.start = 0.0
        self.end: float | None = None
        self.span_id = _next_id()
        self.trace_id = ""  # assigned at push: inherited or freshly minted
        self.parent_id: str | None = None

    @property
    def duration(self) -> float:
        """Seconds from enter to exit (in-flight spans read as 0)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def event(self, name: str, **fields: Any) -> "Span":
        """Attach a point-in-time event (solver iteration, fault, ...)."""
        self.events.append(
            {"name": name, "at": self._tracer._clock() - self.start, **fields}
        )
        return self

    def context(self) -> TraceContext:
        """This span as a propagatable parent (serialize for workers)."""
        return TraceContext(
            trace_id=self.trace_id, span_id=self.span_id, pid=os.getpid()
        )

    def __enter__(self) -> "Span":
        self.start = self._tracer._clock()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type: type | None, exc: BaseException | None, tb: object) -> bool:
        self.end = self._tracer._clock()
        if exc is not None:
            self.tags["error"] = f"{type(exc).__name__}: {exc}"
        self._tracer._pop(self)
        return False

    def to_dict(self) -> dict[str, Any]:
        """Nested JSON-ready form (children inline)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "tags": dict(self.tags),
            "events": [dict(e) for e in self.events],
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self, depth: int = 0):
        """Yield ``(span, depth)`` over the subtree, depth-first, in order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for s, _ in self.walk():
            if s.name == name:
                return s
        return None


class Tracer:
    """Process-wide span collector with context-local span stacks.

    The stack is a :class:`~contextvars.ContextVar` holding an immutable
    tuple, so pushes/pops in one asyncio task (or one ``Context.run``)
    never disturb a sibling task's stack — while the recorded span *tree*
    is shared, concurrent tasks appending children to a common parent.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.roots: list[Span] = []
        self._stack_var: ContextVar[tuple[Span, ...]] = ContextVar(
            "hslb_span_stack", default=()
        )
        self._remote_var: ContextVar[TraceContext | None] = ContextVar(
            "hslb_remote_parent", default=None
        )
        self._lock = threading.Lock()
        self._epoch = 0.0  # perf_counter at enable(); spans are relative

    def _clock(self) -> float:
        return time.perf_counter() - self._epoch

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> "Tracer":
        self._epoch = time.perf_counter()
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def reset(self) -> "Tracer":
        """Drop all recorded spans (does not change enabled state).

        Re-minting the context variables is the only way to clear stacks
        captured in *other* contexts (tasks, threads) — stale values held
        there die with the old variable.
        """
        with self._lock:
            self.roots = []
        self._stack_var = ContextVar("hslb_span_stack", default=())
        self._remote_var = ContextVar("hslb_remote_parent", default=None)
        self._epoch = time.perf_counter()
        return self

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **tags: Any) -> Span | _NullSpan:
        """A context manager timing one region; no-op while disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, tags)

    def event(self, name: str, **fields: Any) -> None:
        """Attach a point event to the innermost open span (or a root blip)."""
        if not self.enabled:
            return
        stack = self._stack_var.get()
        if stack:
            stack[-1].event(name, **fields)
            return
        blip = Span(self, name, {})
        blip.start = blip.end = self._clock()
        blip.trace_id = _next_id()
        blip.events.append({"name": name, "at": 0.0, **fields})
        with self._lock:
            self.roots.append(blip)

    def current(self) -> Span | None:
        stack = self._stack_var.get()
        return stack[-1] if stack else None

    def current_context(self) -> TraceContext | None:
        """The position new child spans would attach to, if any.

        The innermost open span wins; with no open span, an adopted remote
        parent (see :meth:`adopt`) is returned so nested propagation hops
        keep pointing at the original request.
        """
        current = self.current()
        if current is not None:
            return current.context()
        return self._remote_var.get()

    def adopt(self, context: TraceContext | None) -> None:
        """Parent subsequent root spans *in this context* under ``context``.

        Used by worker processes (via :func:`run_traced_child`) and by any
        execution hop that cannot carry the live stack: spans recorded
        afterwards keep the caller's ``trace_id`` and point their
        ``parent_id`` at the serialized span.
        """
        self._remote_var.set(context)

    def _push(self, span: Span) -> None:
        stack = self._stack_var.get()
        if stack:
            parent = stack[-1]
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
            parent.children.append(span)
        else:
            remote = self._remote_var.get()
            if remote is not None:
                span.trace_id = remote.trace_id
                span.parent_id = remote.span_id
            else:
                span.trace_id = _next_id()
            with self._lock:
                self.roots.append(span)
        self._stack_var.set(stack + (span,))

    def _pop(self, span: Span) -> None:
        stack = self._stack_var.get()
        if stack and stack[-1] is span:
            self._stack_var.set(stack[:-1])
        elif span in stack:  # unbalanced exit: recover rather than corrupt
            self._stack_var.set(tuple(s for s in stack if s is not span))

    # -- remote span grafting ----------------------------------------------

    def attach_remote(
        self, records: list[dict], anchor: Span | None = None
    ) -> list[Span]:
        """Graft worker-shipped span dicts into the local tree.

        ``records`` is the nested ``to_dict`` form produced by
        :func:`run_traced_child` in another process.  Remote clocks differ
        from ours, so the subtree is rebased: the earliest remote start
        maps onto ``anchor.start`` (the dispatch span the work happened
        inside).  Remote ids are preserved — the grafted spans keep their
        worker-minted ``span_id``s and their ``parent_id`` links.
        """
        if not records:
            return []
        grafted = [self._revive(r) for r in records]
        base = min(s.start for s in grafted)
        offset = (anchor.start if anchor is not None else 0.0) - base
        for root in grafted:
            for s, _ in root.walk():
                s.start += offset
                if s.end is not None:
                    s.end += offset
            if anchor is not None:
                if root.parent_id is None:
                    root.parent_id = anchor.span_id
                anchor.children.append(root)
            else:
                with self._lock:
                    self.roots.append(root)
        return grafted

    def _revive(self, record: dict) -> Span:
        span = Span(self, str(record["name"]), dict(record.get("tags", {})))
        span.span_id = str(record.get("span_id") or span.span_id)
        span.trace_id = str(record.get("trace_id", ""))
        parent_id = record.get("parent_id")
        span.parent_id = str(parent_id) if parent_id is not None else None
        span.start = float(record.get("start", 0.0))
        span.end = span.start + float(record.get("duration", 0.0))
        span.events = [dict(e) for e in record.get("events", [])]
        span.children = [self._revive(c) for c in record.get("children", [])]
        return span

    # -- views ---------------------------------------------------------------

    def walk(self):
        """Yield ``(span, depth)`` over every recorded root, in order."""
        for root in list(self.roots):
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        for s, _ in self.walk():
            if s.name == name:
                return s
        return None

    def trace_roots(self, trace_id: str) -> list[Span]:
        """Every recorded root belonging to one request tree."""
        return [r for r in list(self.roots) if r.trace_id == trace_id]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [root.to_dict() for root in list(self.roots)]

    def write_jsonl(self, path: str) -> int:
        """Dump the trace as JSONL; returns the number of lines written."""
        from repro.obs.export import trace_to_jsonl

        text = trace_to_jsonl(self)
        with open(path, "w") as fh:
            fh.write(text)
        return text.count("\n")

    def render_flamegraph(self, width: int = 72) -> str:
        from repro.obs.export import render_flamegraph

        return render_flamegraph(self, width=width)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer singleton."""
    return _TRACER


def span(name: str, **tags: Any) -> Span | _NullSpan:
    """Shortcut for ``get_tracer().span(...)``."""
    return _TRACER.span(name, **tags)


def trace_event(name: str, **fields: Any) -> None:
    """Shortcut for ``get_tracer().event(...)``; no-op while disabled."""
    if _TRACER.enabled:
        _TRACER.event(name, **fields)


def run_traced_child(
    context: dict | None, fn: Callable[[], Any]
) -> tuple[Any, list[dict] | None]:
    """Run ``fn`` in a worker process under a shipped :class:`TraceContext`.

    Returns ``(value, spans)`` where ``spans`` is the worker-side span
    forest (nested dicts, parented under the context) for the dispatching
    process to graft via :meth:`Tracer.attach_remote` — or ``None`` when no
    context was shipped *or* we are still in the minting process (inline
    executors): there the live tracer records spans directly and resetting
    it would destroy the caller's trace mid-flight.
    """
    if context is None:
        return fn(), None
    ctx = TraceContext.from_dict(context)
    if ctx.pid == os.getpid():
        return fn(), None
    tracer = get_tracer()
    tracer.reset()
    tracer.enable()
    tracer.adopt(ctx)
    try:
        value = fn()
    finally:
        spans = tracer.to_dicts()
        tracer.disable()
        tracer.reset()
    return value, spans
