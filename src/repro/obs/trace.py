"""Span-based tracing: nested wall-time spans with tags and point events.

Usage::

    from repro.obs import get_tracer, span

    tracer = get_tracer()
    tracer.enable()
    with span("solve", tier="oa"):
        ...
        trace_event("incumbent", objective=123.4)
    tracer.disable()
    print(tracer.render_flamegraph())

The tracer is a process-wide singleton, **disabled by default**.  Disabled,
``span()`` returns a shared no-op object and ``trace_event()`` is a single
attribute check — instrumentation in solver inner loops must stay no-op
cheap (``benchmarks/bench_obs.py`` pins the bound).

Determinism contract: spans record wall-clock for *reporting only*.  No
caller may branch on span state or timings, and nothing here touches RNG
streams or request fingerprints.
"""

from __future__ import annotations

import threading
import time
from typing import Any


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set_tag(self, key: str, value: Any) -> "_NullSpan":
        return self

    def event(self, name: str, **fields: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One timed region of the pipeline: name, tags, events, children."""

    __slots__ = ("name", "tags", "events", "children", "start", "end", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, tags: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.events: list[dict[str, Any]] = []
        self.children: list[Span] = []
        self.start = 0.0
        self.end: float | None = None

    @property
    def duration(self) -> float:
        """Seconds from enter to exit (in-flight spans read as 0)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def event(self, name: str, **fields: Any) -> "Span":
        """Attach a point-in-time event (solver iteration, fault, ...)."""
        self.events.append(
            {"name": name, "at": self._tracer._clock() - self.start, **fields}
        )
        return self

    def __enter__(self) -> "Span":
        self.start = self._tracer._clock()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type: type | None, exc: BaseException | None, tb: object) -> bool:
        self.end = self._tracer._clock()
        if exc is not None:
            self.tags["error"] = f"{type(exc).__name__}: {exc}"
        self._tracer._pop(self)
        return False

    def to_dict(self) -> dict[str, Any]:
        """Nested JSON-ready form (children inline)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "tags": dict(self.tags),
            "events": [dict(e) for e in self.events],
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self, depth: int = 0):
        """Yield ``(span, depth)`` over the subtree, depth-first, in order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for s, _ in self.walk():
            if s.name == name:
                return s
        return None


class Tracer:
    """Process-wide span collector.  Thread-safe: one span stack per thread."""

    def __init__(self) -> None:
        self.enabled = False
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._epoch = 0.0  # perf_counter at enable(); spans are relative

    def _clock(self) -> float:
        return time.perf_counter() - self._epoch

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> "Tracer":
        self._epoch = time.perf_counter()
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def reset(self) -> "Tracer":
        """Drop all recorded spans (does not change enabled state)."""
        with self._lock:
            self.roots = []
        self._local = threading.local()
        self._epoch = time.perf_counter()
        return self

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **tags: Any) -> Span | _NullSpan:
        """A context manager timing one region; no-op while disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, tags)

    def event(self, name: str, **fields: Any) -> None:
        """Attach a point event to the innermost open span (or a root blip)."""
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            stack[-1].event(name, **fields)
            return
        blip = Span(self, name, {})
        blip.start = blip.end = self._clock()
        blip.events.append({"name": name, "at": 0.0, **fields})
        with self._lock:
            self.roots.append(blip)

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit: recover rather than corrupt
            stack.remove(span)

    # -- views ---------------------------------------------------------------

    def walk(self):
        """Yield ``(span, depth)`` over every recorded root, in order."""
        for root in list(self.roots):
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        for s, _ in self.walk():
            if s.name == name:
                return s
        return None

    def to_dicts(self) -> list[dict[str, Any]]:
        return [root.to_dict() for root in list(self.roots)]

    def write_jsonl(self, path: str) -> int:
        """Dump the trace as JSONL; returns the number of lines written."""
        from repro.obs.export import trace_to_jsonl

        text = trace_to_jsonl(self)
        with open(path, "w") as fh:
            fh.write(text)
        return text.count("\n")

    def render_flamegraph(self, width: int = 72) -> str:
        from repro.obs.export import render_flamegraph

        return render_flamegraph(self, width=width)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer singleton."""
    return _TRACER


def span(name: str, **tags: Any) -> Span | _NullSpan:
    """Shortcut for ``get_tracer().span(...)``."""
    return _TRACER.span(name, **tags)


def trace_event(name: str, **fields: Any) -> None:
    """Shortcut for ``get_tracer().event(...)``; no-op while disabled."""
    if _TRACER.enabled:
        _TRACER.event(name, **fields)
