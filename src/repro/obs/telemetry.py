"""Solver and pipeline telemetry: the metric families the toolkit emits.

One module owns every metric name so the naming scheme stays coherent
(``hslb_*`` for the pipeline, ``solver_*`` for the MINLP stack,
``service_*`` for the allocation service, ``faults_*`` for injection —
see DESIGN.md "Observability").  Recording functions are cheap (a couple
of dict operations) and *unconditional*; per-iteration trace events are
additionally gated on the tracer so solver inner loops pay one attribute
check while tracing is off.
"""

from __future__ import annotations

from repro.obs.metrics import REGISTRY
from repro.obs.trace import get_tracer

_TR = get_tracer()


def ensure_registered() -> None:
    """Pre-register the standard families so an empty scrape names them."""
    REGISTRY.counter("solver_nodes_explored_total", "B&B nodes explored")
    REGISTRY.counter("solver_nodes_pruned_total", "B&B nodes pruned")
    REGISTRY.counter("solver_nlp_solves_total", "NLP subproblem solves")
    REGISTRY.counter("solver_lp_solves_total", "LP relaxation solves")
    REGISTRY.counter("solver_cuts_added_total", "OA linearization cuts added")
    REGISTRY.counter("solver_incumbent_updates_total", "incumbent improvements")
    REGISTRY.counter("solver_warm_starts_total", "x0 warm-start attempts")
    REGISTRY.counter("solver_basis_reuse_total", "B&B parent-basis reuse hits/misses")
    REGISTRY.counter("solver_simplex_pivots_total", "simplex pivots by phase")
    REGISTRY.counter("solver_cut_pool_total", "OA cut-pool events")
    REGISTRY.histogram("solver_wall_seconds", "per-solve wall time")
    REGISTRY.counter("hslb_degradations_total", "solver tier fallbacks")
    REGISTRY.counter("hslb_pipeline_runs_total", "HSLB pipeline entries")
    REGISTRY.counter("hslb_gather_retries_total", "gather benchmark retries")
    REGISTRY.counter("hslb_gather_dropped_total", "gather points dropped")
    REGISTRY.counter("hslb_execution_recoveries_total", "mid-run crash recoveries")
    REGISTRY.counter("faults_injected_total", "injected faults by kind")
    REGISTRY.counter("service_retries_total", "service solve re-dispatches")
    REGISTRY.counter("service_hedges_total", "hedged duplicate dispatches")
    REGISTRY.counter("service_worker_failures_total", "worker crashes/hangs by kind")
    REGISTRY.counter("service_worker_restarts_total", "supervised worker replacements")
    REGISTRY.counter("service_corruptions_total", "corrupt results caught by validation")
    REGISTRY.counter("service_degraded_total", "degraded answers by ladder rung")
    REGISTRY.counter("service_rejections_total", "typed request rejections")
    REGISTRY.counter("service_breaker_transitions_total", "breaker state changes")
    REGISTRY.counter("service_breaker_blocks_total", "requests blocked by an open breaker")
    REGISTRY.counter("service_cache_hits_total", "solution-cache hits")
    REGISTRY.counter("service_cache_misses_total", "solution-cache misses")
    REGISTRY.counter("service_cache_evictions_total", "capacity evictions of live entries")
    REGISTRY.counter("service_cache_expirations_total", "TTL expirations booked")
    REGISTRY.counter("service_cache_inserts_total", "solution-cache inserts")
    REGISTRY.counter("dynlb_steps_total", "dynamic-run steps simulated")
    REGISTRY.counter("dynlb_decisions_total", "rebalance decisions by trigger")
    REGISTRY.counter("dynlb_migrations_total", "migration outcomes (applied/gated/aborted/crash)")
    REGISTRY.counter("dynlb_refits_total", "incremental model refits by kind")
    REGISTRY.counter("dynlb_stale_total", "perf-model staleness flags raised")
    REGISTRY.counter("dynlb_crash_recoveries_total", "mid-run crash recoveries")
    REGISTRY.histogram("dynlb_step_seconds", "per-step makespan")
    REGISTRY.histogram("dynlb_migration_cost_seconds", "charged migration stalls")


def record_solve(algorithm: str, stats, status: str) -> None:
    """Fold one finished MINLP solve's :class:`SolveStats` into the registry."""
    REGISTRY.counter("solver_nodes_explored_total").inc(
        stats.nodes_explored, algorithm=algorithm
    )
    REGISTRY.counter("solver_nodes_pruned_total").inc(
        stats.nodes_pruned, algorithm=algorithm
    )
    REGISTRY.counter("solver_nlp_solves_total").inc(stats.nlp_solves, algorithm=algorithm)
    REGISTRY.counter("solver_lp_solves_total").inc(stats.lp_solves, algorithm=algorithm)
    REGISTRY.counter("solver_cuts_added_total").inc(stats.cuts_added, algorithm=algorithm)
    REGISTRY.counter("solver_incumbent_updates_total").inc(
        stats.incumbent_updates, algorithm=algorithm
    )
    REGISTRY.histogram("solver_wall_seconds").observe(
        stats.wall_time, algorithm=algorithm, status=status
    )
    if _TR.enabled:
        _TR.event(
            "solver.finished",
            algorithm=algorithm,
            status=status,
            nodes=stats.nodes_explored,
            nlp_solves=stats.nlp_solves,
            cuts=stats.cuts_added,
            incumbents=stats.incumbent_updates,
        )


def record_warm_start(used: bool) -> None:
    REGISTRY.counter("solver_warm_starts_total").inc(used=str(bool(used)).lower())


def record_basis_reuse(outcome: str) -> None:
    """A node LP was offered a parent basis; ``outcome`` is "hit" or "miss"."""
    REGISTRY.counter("solver_basis_reuse_total").inc(outcome=outcome)
    if _TR.enabled:
        _TR.event("simplex.basis_reuse", outcome=outcome)


def record_simplex(
    phase1: int, phase2: int, dual: int, warm: bool, attempted: bool
) -> None:
    """Fold one simplex solve's pivot counts into the registry.

    ``dual`` counts dual-simplex restoration pivots during a warm start;
    ``attempted``/``warm`` distinguish "no basis offered" from a reuse miss.
    """
    c = REGISTRY.counter("solver_simplex_pivots_total")
    if phase1:
        c.inc(phase1, phase="phase1")
    if phase2:
        c.inc(phase2, phase="phase2")
    if dual:
        c.inc(dual, phase="dual")
    if _TR.enabled:
        _TR.event(
            "simplex.solve",
            phase1=phase1,
            phase2=phase2,
            dual=dual,
            warm=warm,
            attempted=attempted,
        )


def record_cut_pool(event: str, count: int = 1) -> None:
    """A cut-pool lifecycle event: hit, miss, reactivated, or evicted."""
    if count:
        REGISTRY.counter("solver_cut_pool_total").inc(count, event=event)
    if _TR.enabled:
        _TR.event("oa.cut_pool", event=event, count=count)


def record_degradation(from_tier: str, to_tier: str, status: str, reason: str) -> None:
    """Exactly one event + counter bump per degradation-chain transition.

    ``reason`` carries the triggering exception/status message as
    provenance, so a trace shows *why* the chain moved tiers.
    """
    REGISTRY.counter("hslb_degradations_total").inc(
        from_tier=from_tier, to_tier=to_tier
    )
    if _TR.enabled:
        _TR.event(
            "solver.degraded",
            from_tier=from_tier,
            to_tier=to_tier,
            status=status,
            reason=reason,
        )


def record_fault(kind: str, stage: str) -> None:
    """An injected fault fired (gather crash, solver stall, node loss)."""
    REGISTRY.counter("faults_injected_total").inc(kind=kind, stage=stage)
    if _TR.enabled:
        _TR.event("fault.injected", kind=kind, stage=stage)


def record_dynlb_step(strategy: str, seconds: float) -> None:
    """One synchronous dynamic-run step finished; ``seconds`` is its makespan."""
    REGISTRY.counter("dynlb_steps_total").inc(strategy=strategy)
    REGISTRY.histogram("dynlb_step_seconds").observe(seconds, strategy=strategy)


def record_dynlb_decision(strategy: str, trigger: str) -> None:
    """The controller consulted its strategy (``trigger``: interval/stale)."""
    REGISTRY.counter("dynlb_decisions_total").inc(strategy=strategy, trigger=trigger)
    if _TR.enabled:
        _TR.event("dynlb.decision", strategy=strategy, trigger=trigger)


def record_dynlb_migration(strategy: str, outcome: str, cost: float) -> None:
    """A proposed rebalance was applied, gated, aborted, or crash-forced."""
    REGISTRY.counter("dynlb_migrations_total").inc(strategy=strategy, outcome=outcome)
    if cost:
        REGISTRY.histogram("dynlb_migration_cost_seconds").observe(
            cost, strategy=strategy
        )
    if _TR.enabled:
        _TR.event("dynlb.migration", strategy=strategy, outcome=outcome, cost=cost)


def record_dynlb_refit(kind: str) -> None:
    """A perf-model update landed (``kind``: scale or full)."""
    REGISTRY.counter("dynlb_refits_total").inc(kind=kind)


def record_dynlb_stale(component: str) -> None:
    """The refitter flagged one component's model as stale."""
    REGISTRY.counter("dynlb_stale_total").inc(component=component)
    if _TR.enabled:
        _TR.event("dynlb.stale", component=component)


def record_dynlb_crash(strategy: str) -> None:
    """A mid-run node crash was recovered by the rebalance controller."""
    REGISTRY.counter("dynlb_crash_recoveries_total").inc(strategy=strategy)
    if _TR.enabled:
        _TR.event("dynlb.crash_recovery", strategy=strategy)
